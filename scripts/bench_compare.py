#!/usr/bin/env python
"""Compare two ``BENCH_observability.json`` files and gate on regressions.

Usage::

    python scripts/bench_compare.py BASELINE CURRENT [--threshold 0.2]

Each file maps benchmark name -> run totals as written by the harness's
``--report`` flag (``benchmarks/support.py``).  Deterministic fields
(simulated seconds, bytes read/written, transaction counts, warehouse
count) are compared with a relative-change threshold: any field moving by
more than ``--threshold`` (default 20%) in either direction fails the
comparison with exit status 1.  ``wall_s`` is reported for context only —
CI wall time is far too noisy to gate on.

A benchmark present in the baseline but missing from the current run (or
vice versa) is also a failure: silently dropping a benchmark is how
regressions hide.  The same goes for a gated metric key present on only
one side — it fails with an actionable message instead of comparing
against a silent default — and a missing or unreadable report file exits
with status 2 and a regeneration hint instead of a traceback.

``--update-baseline`` rewrites BASELINE from CURRENT after printing the
same per-field diff, so an intentional behavior change lands with its
baseline refresh in one reviewable step (the printed diff is the review
evidence).  It exits 0 even when fields moved beyond the threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

#: Fields gated by the relative-change threshold.  All are produced by a
#: seeded simulation, so any drift is a real behavior change.
GATED_FIELDS = (
    "simulated_s",
    "bytes_read",
    "bytes_written",
    "txns_committed",
    "txns_aborted",
    "txns_active",
    "warehouses",
    # Service-gateway load measures (benchmarks/bench_fig12_wp3_concurrency):
    # absent from benchmarks that don't drive the gateway, and skipped for
    # those by the not-in-either-row rule below.
    "submitted",
    "admitted",
    "completed",
    "shed",
    "timed_out",
    "elapsed_s",
    "goodput",
    "p99_s",
    "base_completed",
    "base_goodput",
    "base_p99_s",
    "over_completed",
    "over_shed",
    "over_timed_out",
    "over_goodput",
    "over_p99_s",
    # Wait-statistics measures (benchmarks/bench_waits_overhead): the
    # overhead fraction is 0.0 at baseline, so the exact-match-at-zero
    # rule pins it there — recording a wait must never cost simulated
    # time.
    "overhead_fraction",
    "commit_lock_waits",
    "commit_lock_wait_s",
    "commit_lock_acquisitions",
    "commit_lock_hold_s",
    # Cost-based-optimizer measures (benchmarks/bench_optimizer): the
    # per-query simulated times off/on and the best relative win are all
    # seeded-simulation outputs, so drift means the planner or the index
    # pruning changed behavior.
    "best_win_fraction",
    "Q03_off_s",
    "Q03_on_s",
    "Q10_off_s",
    "Q10_on_s",
    "point_join_off_s",
    "point_join_on_s",
)

#: Fields printed for context but never gated.
INFO_FIELDS = ("wall_s",)


def relative_change(baseline: float, current: float) -> float:
    """|current - baseline| / |baseline|; exact match required at zero."""
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return abs(current - baseline) / abs(baseline)


def compare(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    threshold: float,
) -> int:
    """Print a per-field comparison; return the number of failures."""
    failures = 0
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"FAIL {name}: missing from current run")
            failures += 1
            continue
        if name not in baseline:
            print(f"FAIL {name}: not in baseline (add it or regenerate)")
            failures += 1
            continue
        base_row, cur_row = baseline[name], current[name]
        print(f"{name}:")
        for field in GATED_FIELDS:
            if field not in base_row and field not in cur_row:
                continue
            # Present on one side only: the benchmark changed what it
            # reports — fail loudly instead of comparing against a
            # silent default.
            if field not in base_row:
                print(
                    f"  FAIL {field}: missing from baseline (regenerate "
                    "the baseline to pick up the new field)"
                )
                failures += 1
                continue
            if field not in cur_row:
                print(
                    f"  FAIL {field}: missing from current run (the "
                    "benchmark stopped reporting it)"
                )
                failures += 1
                continue
            base_value = base_row.get(field, 0)
            cur_value = cur_row.get(field, 0)
            change = relative_change(base_value, cur_value)
            ok = change <= threshold
            marker = "ok  " if ok else "FAIL"
            percent = "inf" if change == float("inf") else f"{change:.1%}"
            print(
                f"  {marker} {field}: {base_value} -> {cur_value} "
                f"({percent})"
            )
            if not ok:
                failures += 1
        for field in INFO_FIELDS:
            if field in base_row or field in cur_row:
                print(
                    f"  info {field}: {base_row.get(field)} -> "
                    f"{cur_row.get(field)} (not gated)"
                )
    return failures


def _load_report(path: str, role: str):
    """Load one report JSON, or print an actionable error and return None."""
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except FileNotFoundError:
        print(
            f"error: {role} file {path!r} does not exist.\n"
            "Regenerate it with, e.g.:\n"
            "  python benchmarks/bench_fig09_tpch_queries.py --report\n"
            "then pass the written BENCH_*.json path."
        )
        return None
    except json.JSONDecodeError as error:
        print(
            f"error: {role} file {path!r} is not valid JSON ({error}).\n"
            "Re-run the benchmark with --report to rewrite it."
        )
        return None
    if not isinstance(report, dict):
        print(
            f"error: {role} file {path!r} must map benchmark name -> "
            "totals (as written by the harness's --report flag)."
        )
        return None
    return report


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="maximum relative change per gated field (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite BASELINE from CURRENT after printing the diff "
        "(always exits 0; commit the rewritten file)",
    )
    args = parser.parse_args(argv)
    baseline = _load_report(args.baseline, role="baseline")
    if baseline is None and not args.update_baseline:
        return 2
    current = _load_report(args.current, role="current")
    if current is None:
        return 2
    failures = compare(baseline or {}, current, args.threshold)
    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"\nbaseline {args.baseline} rewritten from {args.current} "
            f"({failures} field(s) moved beyond {args.threshold:.0%}; "
            "diff above is the review evidence)"
        )
        return 0
    if failures:
        print(f"\n{failures} field(s) regressed beyond {args.threshold:.0%}")
        return 1
    print(f"\nall gated fields within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
