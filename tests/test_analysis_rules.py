"""Fixture tests for the repro.analysis lint rules.

Every shipped rule gets a true-positive snippet (must be flagged) and a
true-negative snippet (must stay clean), plus coverage of the suppression
machinery: honored suppressions, unknown rule names, and strict-mode
useless-suppression reporting.
"""

import textwrap

import pytest

from repro.analysis import all_rules, get_rule, lint_source
from repro.analysis.rules import SHIPPED_RULES


def run(source, rule_name, relpath="src/repro/fe/sample.py", strict=False):
    """Lint ``source`` with a single rule; returns the findings."""
    return lint_source(
        textwrap.dedent(source),
        relpath=relpath,
        rules=[get_rule(rule_name)],
        strict=strict,
    )


def test_shipped_rules_all_registered():
    names = {rule.name for rule in all_rules()}
    assert set(SHIPPED_RULES) <= names
    assert len(SHIPPED_RULES) >= 6


def test_every_rule_has_name_and_description():
    for rule in all_rules():
        assert rule.name and rule.description


# -- wallclock-purity ----------------------------------------------------------


class TestWallclockPurity:
    def test_flags_time_time(self):
        findings = run(
            """\
            import time

            def stamp():
                return time.time()
            """,
            "wallclock-purity",
        )
        assert [f.rule for f in findings] == ["wallclock-purity"]
        assert "time.time" in findings[0].message

    def test_flags_datetime_now_and_from_import(self):
        findings = run(
            """\
            import datetime
            from time import sleep

            def stamp():
                return datetime.datetime.now()
            """,
            "wallclock-purity",
        )
        assert len(findings) == 2  # the import and the call

    def test_clean_simulated_clock_use(self):
        findings = run(
            """\
            def stamp(clock):
                return clock.now()
            """,
            "wallclock-purity",
        )
        assert findings == []

    def test_exempt_in_clock_module_and_telemetry(self):
        source = """\
            import time

            def bridge():
                return time.time()
            """
        assert run(source, "wallclock-purity",
                   relpath="src/repro/common/clock.py") == []
        assert run(source, "wallclock-purity",
                   relpath="src/repro/telemetry/exporters.py") == []


# -- seeded-randomness ---------------------------------------------------------


class TestSeededRandomness:
    def test_flags_module_level_random_calls(self):
        findings = run(
            """\
            import random

            def pick():
                return random.randint(0, 10)
            """,
            "seeded-randomness",
        )
        assert [f.rule for f in findings] == ["seeded-randomness"]

    def test_flags_unseeded_random_instance(self):
        findings = run(
            """\
            import random

            rng = random.Random()
            """,
            "seeded-randomness",
        )
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_flags_from_random_import_function(self):
        findings = run(
            """\
            from random import randint
            """,
            "seeded-randomness",
        )
        assert len(findings) == 1

    def test_flags_unseeded_numpy_default_rng(self):
        findings = run(
            """\
            import numpy as np

            rng = np.random.default_rng()
            """,
            "seeded-randomness",
        )
        assert len(findings) == 1

    def test_clean_seeded_instances(self):
        findings = run(
            """\
            import random
            import numpy as np
            from random import Random

            a = random.Random(42)
            b = Random(7)
            c = np.random.default_rng(0)
            """,
            "seeded-randomness",
        )
        assert findings == []


# -- frozen-mutation -----------------------------------------------------------


class TestFrozenMutation:
    def test_flags_attribute_assignment_on_inferred_instance(self):
        findings = run(
            """\
            snap = TableSnapshot(table_id=1)
            snap.sequence_id = 99
            """,
            "frozen-mutation",
        )
        assert len(findings) == 1
        assert "TableSnapshot.sequence_id" in findings[0].message

    def test_flags_annotated_parameter_mutation(self):
        findings = run(
            """\
            def poke(info: DataFileInfo):
                info.rows += 1
            """,
            "frozen-mutation",
        )
        assert len(findings) == 1

    def test_flags_object_setattr_bypass(self):
        findings = run(
            """\
            def poke(tomb: Tombstone):
                object.__setattr__(tomb, "path", "x")
            """,
            "frozen-mutation",
        )
        assert len(findings) == 1

    def test_allows_self_setattr_in_init(self):
        findings = run(
            """\
            class PageFile:
                def __init__(self, rows):
                    object.__setattr__(self, "rows", rows)
            """,
            "frozen-mutation",
        )
        assert findings == []

    def test_flags_self_setattr_outside_init(self):
        findings = run(
            """\
            class PageFile:
                def grow(self, rows):
                    object.__setattr__(self, "rows", rows)
            """,
            "frozen-mutation",
        )
        assert len(findings) == 1

    def test_clean_replace_style_copy(self):
        findings = run(
            """\
            import dataclasses

            def bump(snap: TableSnapshot):
                return dataclasses.replace(snap, sequence_id=snap.sequence_id + 1)
            """,
            "frozen-mutation",
        )
        assert findings == []


# -- commit-lock-discipline ----------------------------------------------------


class TestCommitLockDiscipline:
    def test_flags_insert_manifest_outside_lock(self):
        findings = run(
            """\
            def commit(catalog, row):
                catalog.insert_manifest(row)
            """,
            "commit-lock-discipline",
        )
        assert len(findings) == 1
        assert "commit-lock" in findings[0].message

    def test_clean_inside_held_block(self):
        findings = run(
            """\
            def commit(lock, catalog, txid, row):
                with lock.held(txid):
                    catalog.insert_manifest(row)
            """,
            "commit-lock-discipline",
        )
        assert findings == []

    def test_clean_inside_pre_install_hook(self):
        findings = run(
            """\
            def commit(txn, catalog, row):
                def install(seq):
                    catalog.insert_manifest(row)

                txn.set_pre_install_hook(install)
            """,
            "commit-lock-discipline",
        )
        assert findings == []

    def test_scope_limited_to_fe_and_sto(self):
        source = """\
            def commit(catalog, row):
                catalog.insert_manifest(row)
            """
        assert run(source, "commit-lock-discipline",
                   relpath="src/repro/sto/worker.py")
        assert run(source, "commit-lock-discipline",
                   relpath="src/repro/lst/actions.py") == []


# -- span-discipline -----------------------------------------------------------


class TestSpanDiscipline:
    def test_flags_bare_span_call(self):
        findings = run(
            """\
            def work(tel):
                tel.span("query")
            """,
            "span-discipline",
        )
        assert len(findings) == 1

    def test_clean_with_statement_and_explicit_pair(self):
        findings = run(
            """\
            def work(tel):
                with tel.span("query"):
                    pass
                s = tel.start_span("long")
                tel.end_span(s)
            """,
            "span-discipline",
        )
        assert findings == []

    def test_exempt_in_telemetry(self):
        findings = run(
            """\
            def span(self, name):
                return self.tracer.span(name)
            """,
            "span-discipline",
            relpath="src/repro/telemetry/facade.py",
        )
        assert findings == []


# -- no-swallowed-errors -------------------------------------------------------


class TestNoSwallowedErrors:
    def test_flags_bare_except(self):
        findings = run(
            """\
            def f():
                try:
                    g()
                except:
                    pass
            """,
            "no-swallowed-errors",
        )
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_flags_broad_except_without_reraise(self):
        findings = run(
            """\
            def f(log):
                try:
                    g()
                except Exception as exc:
                    log.warning(exc)
            """,
            "no-swallowed-errors",
        )
        assert len(findings) == 1

    def test_clean_broad_except_with_reraise(self):
        findings = run(
            """\
            def f(log):
                try:
                    g()
                except Exception as exc:
                    log.warning(exc)
                    raise
            """,
            "no-swallowed-errors",
        )
        assert findings == []

    def test_clean_specific_exception(self):
        findings = run(
            """\
            def f():
                try:
                    g()
                except KeyError:
                    return None
            """,
            "no-swallowed-errors",
        )
        assert findings == []


# -- docstring-coverage --------------------------------------------------------


class TestDocstringCoverage:
    def test_flags_undocumented_public_items(self):
        findings = run(
            """\
            class Widget:
                def run(self):
                    pass

            def helper():
                pass
            """,
            "docstring-coverage",
        )
        assert len(findings) == 4  # module, class, method, function

    def test_clean_documented_and_private(self):
        findings = run(
            '''\
            """Module docstring."""

            class Widget:
                """A widget."""

                def run(self):
                    """Run it."""

                def _internal(self):
                    pass

            def _private_helper():
                pass
            ''',
            "docstring-coverage",
        )
        assert findings == []

    def test_property_setter_exempt(self):
        findings = run(
            '''\
            """Module docstring."""

            class Widget:
                """A widget."""

                @property
                def size(self):
                    """The size."""
                    return self._size

                @size.setter
                def size(self, value):
                    self._size = value
            ''',
            "docstring-coverage",
        )
        assert findings == []


# -- suppressions --------------------------------------------------------------


class TestSuppressions:
    def test_named_suppression_drops_finding(self):
        findings = run(
            """\
            import time

            def stamp():
                return time.time()  # repro: ignore[wallclock-purity]
            """,
            "wallclock-purity",
        )
        assert findings == []

    def test_bare_suppression_drops_all_rules(self):
        findings = run(
            """\
            import time

            def stamp():
                return time.time()  # repro: ignore
            """,
            "wallclock-purity",
        )
        assert findings == []

    def test_suppression_for_other_rule_does_not_apply(self):
        findings = run(
            """\
            import time

            def stamp():
                return time.time()  # repro: ignore[span-discipline]
            """,
            "wallclock-purity",
        )
        assert [f.rule for f in findings] == ["wallclock-purity"]

    def test_unknown_rule_name_is_reported(self):
        findings = run(
            """\
            x = 1  # repro: ignore[no-such-rule]
            """,
            "wallclock-purity",
        )
        assert [f.rule for f in findings] == ["bad-suppression"]
        assert "no-such-rule" in findings[0].message

    def test_suppression_in_docstring_is_inert(self):
        findings = run(
            '''\
            """Mentions # repro: ignore[wallclock-purity] in prose."""

            import time

            def stamp():
                return time.time()
            '''
            ,
            "wallclock-purity",
        )
        assert [f.rule for f in findings] == ["wallclock-purity"]

    def test_strict_reports_useless_suppression(self):
        findings = run(
            """\
            x = 1  # repro: ignore[wallclock-purity]
            """,
            "wallclock-purity",
            strict=True,
        )
        assert [f.rule for f in findings] == ["useless-suppression"]

    def test_non_strict_tolerates_useless_suppression(self):
        findings = run(
            """\
            x = 1  # repro: ignore[wallclock-purity]
            """,
            "wallclock-purity",
        )
        assert findings == []


def test_get_rule_unknown_name_raises_with_hint():
    with pytest.raises(KeyError, match="known rules"):
        get_rule("definitely-not-a-rule")


def test_finding_render_format():
    findings = run(
        """\
        import time

        time.time()
        """,
        "wallclock-purity",
        relpath="src/repro/fe/x.py",
    )
    assert findings[0].render().startswith(
        "src/repro/fe/x.py:3: wallclock-purity: "
    )


# -- crashpoint-discipline -----------------------------------------------------


class TestCrashpointDiscipline:
    def test_clean_registered_literal_site(self):
        findings = run(
            """\
            from repro.chaos.crashpoints import crashpoint

            def commit():
                crashpoint("fe.commit.before_validation")
            """,
            "crashpoint-discipline",
        )
        assert findings == []

    def test_flags_unregistered_name(self):
        findings = run(
            """\
            from repro.chaos.crashpoints import crashpoint

            def commit():
                crashpoint("fe.commit.nope")
            """,
            "crashpoint-discipline",
        )
        assert [f.rule for f in findings] == ["crashpoint-discipline"]
        assert "not registered" in findings[0].message

    def test_flags_non_literal_name(self):
        findings = run(
            """\
            from repro.chaos.crashpoints import crashpoint

            def commit(site):
                crashpoint(site)
            """,
            "crashpoint-discipline",
        )
        assert "string-literal" in findings[0].message

    def test_flags_site_outside_instrumented_layers(self):
        findings = run(
            """\
            from repro.chaos.crashpoints import crashpoint

            def helper():
                crashpoint("fe.commit.before_validation")
            """,
            "crashpoint-discipline",
            relpath="src/repro/telemetry/helper.py",
        )
        assert "outside the instrumented layers" in findings[0].message

    def test_flags_duplicate_site_in_module(self):
        findings = run(
            """\
            from repro.chaos.crashpoints import crashpoint

            def one():
                crashpoint("sto.gc.mid_delete")

            def two():
                crashpoint("sto.gc.mid_delete")
            """,
            "crashpoint-discipline",
            relpath="src/repro/sto/gc2.py",
        )
        assert "more than once" in findings[0].message

    def test_shipped_tree_is_clean(self):
        # The real instrumentation must satisfy its own rule; covered by
        # test_analysis_clean.py for the full tree, asserted here for the
        # rule in isolation on one instrumented module.
        import repro.sto.gc as gc_mod
        from pathlib import Path

        source = Path(gc_mod.__file__).read_text(encoding="utf-8")
        findings = run(source, "crashpoint-discipline", relpath="src/repro/sto/gc.py")
        assert findings == []


# -- metric-naming -------------------------------------------------------------


class TestMetricNaming:
    def test_clean_registered_metric_literal(self):
        findings = run(
            """\
            def account(tel):
                tel.metrics.counter("txn.commits").inc()
                tel.metrics.gauge("sto.unhealthy_tables").set(2)
                tel.metrics.histogram("storage.request_latency_s").observe(0.1)
            """,
            "metric-naming",
        )
        assert findings == []

    def test_flags_unregistered_metric(self):
        findings = run(
            """\
            def account(tel):
                tel.metrics.counter("txn.comits").inc()
            """,
            "metric-naming",
        )
        assert [f.rule for f in findings] == ["metric-naming"]
        assert "not registered" in findings[0].message

    def test_flags_non_literal_metric_name(self):
        findings = run(
            """\
            def account(tel, name):
                tel.metrics.counter(name).inc()
            """,
            "metric-naming",
        )
        assert "string literal" in findings[0].message

    def test_flags_malformed_metric_name(self):
        findings = run(
            """\
            def account(tel):
                tel.metrics.counter("Txn-Commits").inc()
            """,
            "metric-naming",
        )
        messages = " ".join(f.message for f in findings)
        assert "dotted lowercase" in messages

    def test_metric_half_applies_inside_telemetry(self):
        findings = run(
            """\
            def account(metrics):
                metrics.counter("made.up").inc()
            """,
            "metric-naming",
            relpath="src/repro/telemetry/extra.py",
        )
        assert [f.rule for f in findings] == ["metric-naming"]

    def test_clean_registered_span_and_prefix(self):
        findings = run(
            """\
            def trace(tel, kind):
                with tel.span("txn.commit", "txn"):
                    pass
                with tel.span("sql." + kind, "sql"):
                    pass
                tel.add_event("retry", attempt=1)
            """,
            "metric-naming",
        )
        assert findings == []

    def test_flags_unregistered_span_name(self):
        findings = run(
            """\
            def trace(tel):
                with tel.span("txn.comit", "txn"):
                    pass
            """,
            "metric-naming",
        )
        assert "SPAN_NAMES" in findings[0].message

    def test_flags_unregistered_span_prefix(self):
        findings = run(
            """\
            def trace(tel, kind):
                with tel.span("mystery." + kind, "sql"):
                    pass
            """,
            "metric-naming",
        )
        assert "SPAN_PREFIXES" in findings[0].message

    def test_flags_dynamic_span_name(self):
        findings = run(
            """\
            def trace(tel, label):
                span = tel.start_span(label, "dcp.task")
                return span
            """,
            "metric-naming",
        )
        assert "dynamic" in findings[0].message

    def test_span_half_exempt_inside_telemetry(self):
        findings = run(
            """\
            def forward(tracer, name):
                return tracer.start_span(name, "x")
            """,
            "metric-naming",
            relpath="src/repro/telemetry/facade2.py",
        )
        assert findings == []

    def test_registry_names_are_well_formed(self):
        from repro.telemetry.names import (
            METRIC_NAMES,
            SPAN_NAMES,
            is_well_formed,
        )

        for name in list(METRIC_NAMES) + list(SPAN_NAMES):
            assert is_well_formed(name), name


# -- dmv-schema-discipline -----------------------------------------------------


class TestDmvSchemaDiscipline:
    CLEAN = """\
        from repro.pagefile.schema import Schema

        class Views:
            VIEWS = {
                "sys.dm_things": (
                    Schema.of(("thing_id", "int64"), ("name", "string")),
                    "_dm_things",
                ),
            }

            def _dm_things(self):
                return []
        """

    def test_clean_literal_table(self):
        assert run(self.CLEAN, "dmv-schema-discipline") == []

    def test_flags_non_literal_view_name(self):
        findings = run(
            """\
            from repro.pagefile.schema import Schema

            NAME = "sys.dm_things"

            class Views:
                VIEWS = {
                    NAME: (Schema.of(("x", "int64")), "_dm_things"),
                }

                def _dm_things(self):
                    return []
            """,
            "dmv-schema-discipline",
        )
        assert [f.rule for f in findings] == ["dmv-schema-discipline"]
        assert "literal 'sys.dm_*'" in findings[0].message

    def test_flags_bad_column_type(self):
        findings = run(
            """\
            from repro.pagefile.schema import Schema

            class Views:
                VIEWS = {
                    "sys.dm_things": (
                        Schema.of(("x", "int32")),
                        "_dm_things",
                    ),
                }

                def _dm_things(self):
                    return []
            """,
            "dmv-schema-discipline",
        )
        assert "int32" in findings[0].message

    def test_flags_unknown_provider(self):
        findings = run(
            """\
            from repro.pagefile.schema import Schema

            class Views:
                VIEWS = {
                    "sys.dm_things": (
                        Schema.of(("x", "int64")),
                        "_dm_nope",
                    ),
                }
            """,
            "dmv-schema-discipline",
        )
        assert "not a method" in findings[0].message

    def test_flags_non_schema_of_value(self):
        findings = run(
            """\
            class Views:
                VIEWS = {
                    "sys.dm_things": (build_schema(), "_dm_things"),
                }

                def _dm_things(self):
                    return []
            """,
            "dmv-schema-discipline",
        )
        assert "Schema.of" in findings[0].message

    def test_flags_dynamic_registration(self):
        findings = run(
            """\
            from repro.telemetry.introspection import Introspector

            def sneak(schema):
                Introspector.VIEWS["sys.dm_sneaky"] = (schema, "_dm_sneaky")
                Introspector.VIEWS.update({})
            """,
            "dmv-schema-discipline",
        )
        assert len(findings) == 2
        assert all("dynamic" in f.message for f in findings)

    def test_introspector_module_is_clean(self):
        import inspect

        from repro.telemetry import introspection

        source = inspect.getsource(introspection)
        findings = lint_source(
            source,
            relpath="src/repro/telemetry/introspection.py",
            rules=[get_rule("dmv-schema-discipline")],
        )
        assert findings == []
