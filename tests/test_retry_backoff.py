"""Tests for retry backoff, clock charging, and extended fault injection."""

import pytest

from repro.common.clock import SimulatedClock
from repro.common.config import PolarisConfig, StorageConfig
from repro.common.errors import TransientStorageError
from repro.storage import ObjectStore
from repro.storage.retry import backoff_schedule, with_retries


class TestBackoffSchedule:
    def test_deterministic_per_seed_and_label(self):
        one = backoff_schedule(5, seed=1, label="manifest_flush")
        assert one == backoff_schedule(5, seed=1, label="manifest_flush")
        assert one != backoff_schedule(5, seed=2, label="manifest_flush")
        assert one != backoff_schedule(5, seed=1, label="checkpoint_load")

    def test_exponential_growth_within_jitter_bounds(self):
        config = StorageConfig(
            retry_base_backoff_s=1.0, retry_max_backoff_s=100.0, retry_jitter=0.5
        )
        delays = backoff_schedule(5, config=config, seed=0)
        for index, delay in enumerate(delays[:-1]):
            raw = 1.0 * 2**index
            assert raw * 0.5 <= delay <= raw * 1.5

    def test_capped_at_max_backoff(self):
        config = StorageConfig(
            retry_base_backoff_s=1.0, retry_max_backoff_s=2.0, retry_jitter=0.0
        )
        assert backoff_schedule(6, config=config, seed=0) == [
            1.0,
            2.0,
            2.0,
            2.0,
            2.0,
            0.0,
        ]

    def test_final_attempt_has_no_delay(self):
        assert backoff_schedule(3, seed=0)[-1] == 0.0

    def test_zero_jitter_is_pure_exponential(self):
        config = StorageConfig(retry_jitter=0.0, retry_base_backoff_s=0.1)
        assert backoff_schedule(4, config=config, seed=0)[:3] == [
            0.1,
            0.2,
            0.4,
        ]


class TestWithRetriesClockCharging:
    def test_backoff_charged_to_simulated_clock(self):
        clock = SimulatedClock()
        config = StorageConfig(
            retry_base_backoff_s=1.0, retry_max_backoff_s=10.0, retry_jitter=0.0
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError("boom")
            return "ok"

        start = clock.now
        result = with_retries(flaky, clock=clock, config=config, seed=0)
        assert result == "ok"
        assert clock.now - start == pytest.approx(1.0 + 2.0)

    def test_exhausted_retries_charge_all_but_final(self):
        clock = SimulatedClock()
        config = StorageConfig(
            retry_base_backoff_s=1.0, retry_max_backoff_s=10.0, retry_jitter=0.0
        )

        def always_fails():
            raise TransientStorageError("boom")

        start = clock.now
        with pytest.raises(TransientStorageError):
            with_retries(
                always_fails, attempts=3, clock=clock, config=config, seed=0
            )
        # Two backoffs (1s, 2s); the final failed attempt waits for nothing.
        assert clock.now - start == pytest.approx(3.0)

    def test_no_clock_means_no_charge(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise TransientStorageError("boom")
            return calls["n"]

        assert with_retries(flaky) == 2

    def test_backoff_visible_in_retry_span_events(self):
        from repro import Warehouse

        config = PolarisConfig()
        config.storage.retry_jitter = 0.0
        config.telemetry.enabled = True
        dw = Warehouse(config=config, auto_optimize=False)
        with dw.telemetry.span("test.root", "test"):
            dw.store.faults.arm("blob", operation="get")
            dw.store.put("a/blob", b"x")
            with_retries(
                lambda: dw.store.get("a/blob"),
                telemetry=dw.telemetry,
                label="unit_test",
                clock=dw.clock,
                config=config.storage,
                seed=config.seed,
            )
        events = [
            e for s in dw.telemetry.spans for e in s.events if e.name == "retry"
        ]
        assert events
        assert events[0].attributes["label"] == "unit_test"
        assert events[0].attributes["backoff_s"] == pytest.approx(
            config.storage.retry_base_backoff_s
        )
        histogram = dw.telemetry.metrics.histogram(
            "storage.retry_backoff_s", label="unit_test"
        )
        assert histogram.count >= 1


class TestCountedFaults:
    def test_counted_fault_fails_next_n(self):
        store = ObjectStore()
        store.faults.arm("target", operation="put", count=3)
        for __ in range(3):
            with pytest.raises(TransientStorageError):
                store.put("a/target", b"x")
        store.put("a/target", b"x")
        assert store.exists("a/target")

    def test_count_must_be_positive(self):
        store = ObjectStore()
        with pytest.raises(ValueError):
            store.faults.arm("x", count=0)

    def test_armed_remaining_tracks_budget(self):
        store = ObjectStore()
        store.faults.arm("a", count=2)
        store.faults.arm("b", count=1)
        assert store.faults.armed_remaining == 3
        with pytest.raises(TransientStorageError):
            store.put("a", b"x")
        assert store.faults.armed_remaining == 2

    def test_injected_counter_counts_all_faults(self):
        store = ObjectStore()
        store.faults.arm("a", count=2)
        for __ in range(2):
            with pytest.raises(TransientStorageError):
                store.put("a", b"x")
        assert store.faults.injected == 2


class TestPerOperationRates:
    def test_operation_rate_overrides_global(self):
        config = StorageConfig(
            transient_failure_rate=0.0,
            operation_failure_rates={"delete": 1.0},
        )
        store = ObjectStore(config=config)
        store.put("a", b"x")  # puts never fail
        with pytest.raises(TransientStorageError):
            store.delete("a")

    def test_rate_for_falls_back_to_global(self):
        config = StorageConfig(
            transient_failure_rate=0.25,
            operation_failure_rates={"get": 0.75},
        )
        store = ObjectStore(config=config)
        assert store.faults.rate_for("get") == 0.75
        assert store.faults.rate_for("put") == 0.25

    def test_quiesce_stops_random_injection(self):
        config = StorageConfig(transient_failure_rate=1.0)
        store = ObjectStore(config=config)
        with pytest.raises(TransientStorageError):
            store.put("a", b"x")
        store.faults.quiesce()
        store.put("a", b"x")
        assert store.exists("a")

    def test_operation_rates_validated(self):
        config = PolarisConfig()
        config.storage.operation_failure_rates = {"put": 1.5}
        with pytest.raises(ValueError):
            config.validate()

    def test_faults_injected_metric(self):
        from repro import Warehouse

        dw = Warehouse(auto_optimize=False)
        dw.store.faults.arm("blob", operation="put")
        with pytest.raises(TransientStorageError):
            dw.store.put("a/blob", b"x")
        assert (
            dw.telemetry.metrics.value("storage.faults_injected", op="put") == 1
        )
