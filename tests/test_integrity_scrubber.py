"""Tests for the STO integrity scrubber: quarantine, repair, surfacing.

The corruption *sweep* (:mod:`repro.chaos.corruption`, exercised in
``test_chaos_corruption``) checks the end-to-end story; these tests pin
the scrubber's individual contracts — per-kind repair rules, health and
DMV surfacing, orchestrator metrics, periodic scheduling, and the
watchdog rule on unrepairable loss.
"""

import pytest

from repro.chaos.corruption import _build
from repro.common.clock import SimulatedClock
from repro.sqldb import system_tables as catalog
from repro.sto.delta_reader import read_published_table
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import MetricsSampler, Watchdog, default_rules


@pytest.fixture
def deployment():
    """A warehouse with every blob kind present (see corruption._build)."""
    return _build(seed=0)


def _rows(warehouse, table_id):
    txn = warehouse.context.sqldb.begin()
    try:
        return (
            catalog.manifests_for_table(txn, table_id),
            catalog.checkpoints_for_table(txn, table_id),
        )
    finally:
        txn.abort()


def _data_path(warehouse, table_id):
    manifests, __ = _rows(warehouse, table_id)
    snapshot = warehouse.context.cache.get(
        table_id, manifests[-1]["sequence_id"]
    )
    return sorted(info.path for info in snapshot.files.values())[0]


class TestScrubClean:
    def test_healthy_deployment_scrubs_clean(self, deployment):
        warehouse, __ = deployment
        report = warehouse.sto.run_scrub()
        assert report.clean
        assert report.tables_scanned == 2
        assert report.blobs_verified > 0
        assert report.repaired == 0
        assert report.unrepairable == 0
        assert report.quarantined == 0


class TestScrubRepairs:
    def test_checkpoint_rematerialized_in_place(self, deployment):
        warehouse, ids = deployment
        __, checkpoints = _rows(warehouse, ids["orders"])
        path = checkpoints[-1]["path"]
        warehouse.store.damage(path, "bit_flip")
        report = warehouse.sto.run_scrub()
        (record,) = report.records
        assert record.kind == "checkpoint"
        assert record.action == "repaired"
        assert record.quarantine_path
        assert warehouse.store.exists(record.quarantine_path)
        assert warehouse.store.verify(path) is None

    def test_covered_manifest_rebuilt_from_checkpoint(self, deployment):
        warehouse, ids = deployment
        manifests, __ = _rows(warehouse, ids["orders"])
        path = manifests[-1]["manifest_path"]
        warehouse.store.damage(path, "torn_write")
        report = warehouse.sto.run_scrub()
        (record,) = report.records
        assert record.action == "repaired"
        warehouse.context.cache.invalidate()
        live = warehouse.session().table_snapshot("orders").live_rows
        assert live == 500
        assert not warehouse.sto.health.integrity_compromised(ids["orders"])

    def test_uncovered_manifest_is_permanent_loss(self, deployment):
        warehouse, ids = deployment
        manifests, __ = _rows(warehouse, ids["orders"])
        # The first manifest has a later manifest between it and the
        # checkpoint, so no checkpoint captures exactly its post-state.
        warehouse.store.damage(manifests[0]["manifest_path"], "bit_flip")
        report = warehouse.sto.run_scrub()
        assert any(
            r.kind == "manifest" and r.action == "unrepairable"
            for r in report.records
        )
        assert warehouse.sto.health.integrity_compromised(ids["orders"])
        view = warehouse.session().sql("SELECT * FROM sys.dm_storage_health")
        states = dict(
            zip(view["table_name"].tolist(), view["state"].tolist())
        )
        assert states["orders"] == "RED"
        assert states["control"] == "GREEN"

    def test_data_loss_quarantined_never_deleted(self, deployment):
        warehouse, ids = deployment
        path = _data_path(warehouse, ids["orders"])
        original = warehouse.store.get(path).data
        warehouse.store.damage(path, "bit_flip")
        report = warehouse.sto.run_scrub()
        (record,) = report.records
        assert record.kind == "data"
        assert record.action == "unrepairable"
        assert not warehouse.store.exists(path)
        forensic = warehouse.store.get(record.quarantine_path)
        assert forensic.metadata["quarantined_from"] == path
        assert len(forensic.data) == len(original)
        assert warehouse.sto.health.integrity_compromised(ids["orders"])

    def test_delta_log_republished_from_manifest(self, deployment):
        warehouse, ids = deployment
        from repro.storage import paths

        prefix = (
            paths.published_root(warehouse.context.database, "orders")
            + "/_delta_log/"
        )
        path = sorted(b.path for b in warehouse.store.list(prefix))[-1]
        warehouse.store.damage(path, "torn_write")
        report = warehouse.sto.run_scrub()
        (record,) = report.records
        assert record.kind == "delta_log"
        assert record.action == "repaired"
        assert read_published_table(warehouse.context, "orders") is not None


class TestOrchestratorScrub:
    def test_scrub_metrics_and_report_history(self, deployment):
        warehouse, ids = deployment
        warehouse.store.damage(_data_path(warehouse, ids["orders"]), "bit_flip")
        report = warehouse.sto.run_scrub()
        assert warehouse.sto.scrub_reports[-1] is report
        metrics = warehouse.telemetry.metrics
        assert (
            metrics.value("storage.integrity_blobs_verified")
            == report.blobs_verified
        )
        assert metrics.value("storage.integrity_quarantined") == 1
        assert metrics.value("storage.integrity_unrepairable") == 1
        assert metrics.value("storage.integrity_repaired") == 0

    def test_periodic_scrub_fires_and_rearms(self, deployment):
        warehouse, __ = deployment
        warehouse.sto.enabled = True
        warehouse.sto.schedule_periodic_scrub(interval_s=100.0)
        warehouse.clock.advance(101.0)
        assert len(warehouse.sto.scrub_reports) == 1
        warehouse.clock.advance(100.0)
        assert len(warehouse.sto.scrub_reports) == 2

    def test_periodic_scrub_respects_enabled_flag(self, deployment):
        warehouse, __ = deployment
        warehouse.sto.enabled = False
        warehouse.sto.schedule_periodic_scrub(interval_s=10.0)
        warehouse.clock.advance(11.0)
        assert warehouse.sto.scrub_reports == []


class TestIntegrityDmv:
    def test_dm_storage_integrity_surfaces_findings(self, deployment):
        warehouse, ids = deployment
        path = _data_path(warehouse, ids["orders"])
        warehouse.store.damage(path, "bit_flip")
        warehouse.sto.run_scrub()
        view = warehouse.session().sql(
            "SELECT * FROM sys.dm_storage_integrity"
        )
        assert view["path"].tolist() == [path]
        assert view["kind"].tolist() == ["data"]
        assert view["action"].tolist() == ["unrepairable"]
        assert view["table_name"].tolist() == ["orders"]
        (quarantine_path,) = view["quarantine_path"].tolist()
        assert warehouse.store.exists(quarantine_path)

    def test_dm_storage_integrity_empty_when_clean(self, deployment):
        warehouse, __ = deployment
        warehouse.sto.run_scrub()
        view = warehouse.session().sql(
            "SELECT * FROM sys.dm_storage_integrity"
        )
        assert view["path"].tolist() == []


class TestWatchdogRule:
    def test_unrepairable_loss_fires_watchdog(self):
        clock = SimulatedClock()
        metrics = MetricsRegistry()
        dog = Watchdog(metrics, None, default_rules())
        sampler = MetricsSampler(clock, metrics, interval_s=1.0)
        sampler.subscribe(dog.observe)
        sampler.sample_now()
        assert dog.alerts == []
        metrics.counter("storage.integrity_unrepairable").inc()
        clock.advance(1.0)
        sampler.sample_now()
        assert any(
            alert["rule"] == "integrity_unrepairable" for alert in dog.alerts
        )
