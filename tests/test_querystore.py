"""End-to-end query store: TPC-H profiles, DMVs, attribution, regressions,
and crash hygiene.

The store is exercised the way a user would reach it — SQL statements in,
``sys.dm_exec_*`` rows out — plus the two paths that justify its design:
the watchdog's ``plan_latency_regression`` rule firing off the regression
counter, and recovery discarding half-measured profiles after a simulated
crash (never double-counting, never leaking them into the aggregates).
"""

import numpy as np
import pytest

from repro import PolarisConfig, Schema, Warehouse
from repro.chaos import ChaosController, RecoveryManager, SimulatedCrash
from repro.common.clock import SimulatedClock
from repro.common.errors import PolarisError
from repro.service import Gateway
from repro.sql.runner import SqlSession
from repro.telemetry import MetricSample, Watchdog, default_rules, fingerprint
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.querystore import QueryStore
from repro.workloads.tpch import TPCH_SQL_QUERIES, TpchGenerator
from repro.workloads.tpch.schema import TPCH_DISTRIBUTION, TPCH_SCHEMAS

POWER_RUNS = 2

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def store_config(**overrides):
    config = PolarisConfig()
    config.telemetry.query_store_enabled = True
    for key, value in overrides.items():
        setattr(config.telemetry, key, value)
    return config


def rows_of(batch):
    """Column batch -> list of per-row dicts, for readable assertions."""
    names = list(batch)
    count = len(batch[names[0]]) if names else 0
    return [{n: batch[n][i] for n in names} for i in range(count)]


@pytest.fixture(scope="module")
def tpch():
    """A TPC-H warehouse after POWER_RUNS SQL power runs, store enabled."""
    dw = Warehouse(config=store_config(), auto_optimize=False)
    session = dw.session()
    generator = TpchGenerator(scale_factor=0.05, seed=42)
    for name, table in generator.all_tables().items():
        session.create_table(name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name])
        session.insert(name, table)
    sql = SqlSession(dw.session())
    # A SQL-created side table so DDL/DML kinds enter the store too (the
    # TPC-H load above goes through the Python API, which is unprofiled).
    sql.execute("CREATE TABLE side (id BIGINT, v DOUBLE)")
    sql.execute("INSERT INTO side (id, v) VALUES (1, 1.5), (2, 2.5)")
    for _ in range(POWER_RUNS):
        for __, text in sorted(TPCH_SQL_QUERIES.items()):
            sql.execute(text)
    return dw, sql


class TestTpchPowerRun:
    def test_one_stats_row_per_fingerprint(self, tpch):
        __, sql = tpch
        expected = {fingerprint(t) for t in TPCH_SQL_QUERIES.values()}
        batch = sql.execute("SELECT * FROM sys.dm_exec_query_stats")
        rows = [r for r in rows_of(batch) if r["query_hash"] in expected]
        assert {r["query_hash"] for r in rows} == expected
        for row in rows:
            assert row["statement_kind"] == "select"
            assert row["executions"] == POWER_RUNS
            assert row["errors"] == 0
            assert row["total_sim_s"] > 0.0
            assert row["p95_s"] > 0.0
            assert row["p50_s"] <= row["p95_s"] <= row["p99_s"]
            assert row["plan_count"] == 1
            assert row["last_seen"] > row["first_seen"]

    def test_query_text_is_normalized_not_raw(self, tpch):
        __, sql = tpch
        batch = sql.execute(
            "SELECT query_text FROM sys.dm_exec_query_stats "
            "WHERE statement_kind = 'select'"
        )
        q6 = [t for t in batch["query_text"] if "lineitem" in t and "?" in t]
        assert q6, "normalized texts should parameterize literals"
        assert not any("1994-01-01" in t for t in batch["query_text"])

    def test_plans_view_joins_back_to_stats(self, tpch):
        __, sql = tpch
        expected = {fingerprint(t) for t in TPCH_SQL_QUERIES.values()}
        batch = sql.execute("SELECT * FROM sys.dm_exec_query_plans")
        rows = [r for r in rows_of(batch) if r["query_hash"] in expected]
        assert {r["query_hash"] for r in rows} == expected
        for row in rows:
            assert row["executions"] == POWER_RUNS
            assert "Scan" in row["plan_text"]
            assert len(row["plan_hash"]) == len(row["query_hash"])

    def test_operator_stats_carry_cardinality_feedback(self, tpch):
        __, sql = tpch
        q6 = fingerprint(TPCH_SQL_QUERIES[6])
        batch = sql.execute("SELECT * FROM sys.dm_exec_operator_stats")
        rows = [r for r in rows_of(batch) if r["query_hash"] == q6]
        assert rows, "Q6 must have operator rows"
        by_op = {r["operator"]: r for r in rows}
        scan = by_op["Scan lineitem"]
        assert scan["executions"] == POWER_RUNS
        assert scan["actual_rows"] > 0
        assert scan["est_rows"] > 0
        assert scan["misestimate"] >= 1.0
        assert scan["files"] > 0
        # The whole point of the feedback loop: estimates and actuals are
        # both present, so an optimizer can learn the gap per operator.
        assert any(r["sim_time_s"] > 0 for r in rows)
        assert [r["operator_id"] for r in rows] == sorted(
            r["operator_id"] for r in rows
        )

    def test_ddl_and_dml_fingerprints_recorded(self, tpch):
        dw, __ = tpch
        kinds = {
            p.statement_kind for p in dw.telemetry.querystore.profiles()
        }
        assert {"createtable", "insert", "select"} <= kinds
        insert_profiles = [
            p
            for p in dw.telemetry.querystore.profiles()
            if p.statement_kind == "insert"
        ]
        assert insert_profiles
        assert all(p.total_rows > 0 for p in insert_profiles)

    def test_bytes_read_accumulates_for_scans(self, tpch):
        dw, __ = tpch
        q1 = dw.telemetry.querystore.profile(fingerprint(TPCH_SQL_QUERIES[1]))
        assert q1 is not None
        assert q1.total_bytes_read > 0

    def test_views_are_explainable(self, tpch):
        __, sql = tpch
        text = sql.execute("EXPLAIN SELECT * FROM sys.dm_exec_query_stats")
        assert "sys.dm_exec_query_stats" in text

    def test_explain_never_enters_the_store(self, tpch):
        dw, sql = tpch
        store = dw.telemetry.querystore
        count = len(store.profiles())
        sql.execute("EXPLAIN SELECT l_orderkey FROM lineitem WHERE l_tax > 0.01")
        assert len(store.profiles()) == count

    def test_export_jsonl_has_all_fingerprints(self, tpch, tmp_path):
        dw, __ = tpch
        store = dw.telemetry.querystore
        path = tmp_path / "querystore.jsonl"
        store.export_jsonl(str(path))
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == len(store.profiles())


class TestDisabledFlag:
    def test_store_absent_and_statements_unaffected(self):
        dw = Warehouse(config=PolarisConfig(), auto_optimize=False)
        assert dw.telemetry.querystore is None
        sql = SqlSession(dw.session())
        sql.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        sql.execute("INSERT INTO t (id, v) VALUES (1, 1.5), (2, 2.5)")
        batch = sql.execute("SELECT id FROM t WHERE v > 2.0")
        assert list(batch["id"]) == [2]
        stats = sql.execute("SELECT * FROM sys.dm_exec_query_stats")
        assert len(stats["query_hash"]) == 0


class TestGatewayAttribution:
    def test_tenant_and_workload_class_flow_into_stats(self):
        config = store_config()
        config.distributions = 4
        config.rows_per_cell = 1_000
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        ids = np.arange(0, 20, dtype=np.int64)
        session.insert("t", {"id": ids, "v": ids.astype(np.float64)})
        gateway = Gateway(dw.context)
        gateway.submit("tenant_a", "analytical", "SELECT id FROM t WHERE id < 5")
        gateway.submit("tenant_b", "transactional", "SELECT id FROM t WHERE id < 9")
        gateway.run()

        profile = dw.telemetry.querystore.profile(
            fingerprint("SELECT id FROM t WHERE id < 5")
        )
        assert profile is not None
        assert profile.executions == 2  # both submits share one fingerprint
        row = next(
            r
            for r in dw.telemetry.querystore.query_stats_rows()
            if r["query_hash"] == profile.query_hash
        )
        assert row["tenants"] == "tenant_a,tenant_b"
        assert row["workload_classes"] == "analytical,transactional"

    def test_direct_sessions_carry_no_attribution(self):
        dw = Warehouse(config=store_config(), auto_optimize=False)
        sql = SqlSession(dw.session())
        sql.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        sql.execute("INSERT INTO t (id, v) VALUES (1, 1.0)")
        sql.execute("SELECT id FROM t")
        row = next(
            r
            for r in dw.telemetry.querystore.query_stats_rows()
            if r["statement_kind"] == "select"
        )
        assert row["tenants"] == ""
        assert row["workload_classes"] == ""


class TestRegressionDetection:
    def run_at(self, store, clock, latency_s):
        pending = store.start("SELECT a FROM t WHERE b > 1", "select")
        clock.advance(latency_s)
        store.finish(pending, rows=1)

    def test_baseline_freeze_then_regression_fires_once(self):
        clock = SimulatedClock()
        metrics = MetricsRegistry()
        config = store_config().telemetry
        store = QueryStore(clock, config, metrics=metrics, seed=0)

        for _ in range(config.query_store_min_history):
            self.run_at(store, clock, 1.0)
        profile = store.profiles()[0]
        assert profile.baseline_p95_s == pytest.approx(1.0)
        assert profile.regressions == 0

        # Recent p95 must cross factor x baseline across the window.
        for _ in range(config.query_store_recent_window):
            self.run_at(store, clock, 3.0)
        assert profile.regressions == 1
        assert (
            metrics.value(
                "querystore.plan_regressions", query_hash=profile.query_hash
            )
            == 1.0
        )

        # Still regressed: no re-fire until the profile recovers.
        self.run_at(store, clock, 3.0)
        assert profile.regressions == 1
        for _ in range(config.query_store_recent_window):
            self.run_at(store, clock, 1.0)
        for _ in range(config.query_store_recent_window):
            self.run_at(store, clock, 3.0)
        assert profile.regressions == 2

    def test_watchdog_rule_fires_on_regression_counter(self):
        metrics = MetricsRegistry()
        dog = Watchdog(metrics, None, rules=default_rules())
        dog.observe(
            MetricSample(
                sample_id=0,
                at=1.0,
                values={"querystore.plan_regressions{query_hash=abc}": 0.0},
            )
        )
        dog.observe(
            MetricSample(
                sample_id=1,
                at=2.0,
                values={"querystore.plan_regressions{query_hash=abc}": 1.0},
            )
        )
        assert [a["rule"] for a in dog.alerts] == ["plan_latency_regression"]

    def test_stable_latency_never_alarms(self):
        clock = SimulatedClock()
        store = QueryStore(clock, store_config().telemetry, seed=0)
        for _ in range(64):
            self.run_at(store, clock, 1.0)
        assert store.profiles()[0].regressions == 0


class TestCrashHygiene:
    def test_crashed_statement_is_scavenged_not_counted(self):
        dw = Warehouse(config=store_config(), auto_optimize=False)
        dw.sto.auto_publish = True
        sql = SqlSession(dw.session())
        sql.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        store = dw.telemetry.querystore
        insert_text = "INSERT INTO t (id, v) VALUES (1, 1.0)"
        insert_hash = fingerprint(insert_text)

        controller = ChaosController(seed=0).arm("fe.write.before_manifest_flush")
        with controller:
            with pytest.raises(SimulatedCrash):
                sql.execute(insert_text)

        # The dead process never reported: the execution is in flight.
        assert store.inflight_count == 1
        assert store.profile(insert_hash) is None

        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.querystore_profiles_discarded == 1
        assert store.inflight_count == 0
        # Discarded for good: no profile row, no partial aggregates.
        assert store.profile(insert_hash) is None
        assert dw.telemetry.metrics.value("recovery.querystore_discarded") == 1.0

        # The same statement after recovery profiles normally.
        sql2 = SqlSession(dw.session())
        sql2.execute(insert_text)
        assert store.profile(insert_hash).executions == 1

    def test_failed_statement_folds_as_error(self):
        dw = Warehouse(config=store_config(), auto_optimize=False)
        sql = SqlSession(dw.session())
        sql.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        bad = "SELECT nope FROM t"
        with pytest.raises(PolarisError):
            sql.execute(bad)
        profile = dw.telemetry.querystore.profile(fingerprint(bad))
        assert profile is not None
        assert profile.errors == 1
        assert profile.executions == 0
