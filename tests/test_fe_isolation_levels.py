"""Tests for RCSI and Serializable user transactions (Section 4.4.2)."""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from repro.common.errors import SerializationError
from tests.conftest import small_config

COUNT = Aggregate(TableScan("t", ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


@pytest.fixture
def dw(si_sanitizer):
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    # Every isolation-level scenario doubles as an SI-axiom check: the
    # recorded history is sanitized (repro.analysis.si) at teardown.
    si_sanitizer(warehouse)
    s = warehouse.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    s.insert("t", ids(10))
    return warehouse


class TestSnapshotDefault:
    def test_si_reader_pinned_to_begin(self, dw):
        reader = dw.session()
        reader.begin()
        assert reader.query(COUNT)["n"][0] == 10
        dw.session().insert("t", ids(5, start=100))
        assert reader.query(COUNT)["n"][0] == 10
        reader.commit()


class TestRcsi:
    def test_rcsi_reader_sees_new_commits(self, dw):
        reader = dw.session()
        reader.begin(isolation="rcsi")
        assert reader.query(COUNT)["n"][0] == 10
        dw.session().insert("t", ids(5, start=100))
        # RCSI: each statement sees the latest committed state.
        assert reader.query(COUNT)["n"][0] == 15
        reader.commit()

    def test_rcsi_sees_own_writes(self, dw):
        session = dw.session()
        session.begin(isolation="rcsi")
        session.insert("t", ids(3, start=50))
        assert session.query(COUNT)["n"][0] == 13
        session.commit()


class TestSerializable:
    def test_serializable_read_table_conflict(self, dw):
        """A serializable txn whose read tables changed must not commit."""
        a = dw.session()
        a.begin(isolation="serializable")
        assert a.query(COUNT)["n"][0] == 10  # registers the read
        dw.session().insert("t", ids(1, start=500))
        a.insert("t", ids(1, start=600))  # writes something, must validate
        with pytest.raises(SerializationError):
            a.commit()

    def test_serializable_commits_without_interference(self, dw):
        a = dw.session()
        a.begin(isolation="serializable")
        a.query(COUNT)
        a.insert("t", ids(1, start=700))
        a.commit()

    def test_serializable_insert_insert_still_conflicts_on_read(self, dw):
        """Two serializable insert txns that both read the table: the
        second to commit sees the first's manifest insert and aborts —
        the cost of serializability the paper warns about."""
        a, b = dw.session(), dw.session()
        a.begin(isolation="serializable")
        b.begin(isolation="serializable")
        a.query(COUNT)
        b.query(COUNT)
        a.insert("t", ids(1, start=800))
        b.insert("t", ids(1, start=900))
        a.commit()
        with pytest.raises(SerializationError):
            b.commit()


class TestDefaultFromConfig:
    def test_warehouse_default_isolation_applied(self):
        config = small_config()
        config.txn.isolation = "rcsi"
        dw = Warehouse(config=config, auto_optimize=False)
        s = dw.session()
        s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        s.insert("t", ids(1))
        reader = dw.session()
        reader.begin()  # no explicit isolation: uses config default (rcsi)
        assert reader.query(COUNT)["n"][0] == 1
        dw.session().insert("t", ids(1, start=10))
        assert reader.query(COUNT)["n"][0] == 2
        reader.commit()
