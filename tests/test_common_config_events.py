"""Tests for configuration validation and the event bus."""

import pytest

from repro.common.config import PolarisConfig
from repro.common.events import EventBus
from repro.common.units import human_bytes, human_seconds, mib


class TestConfig:
    def test_defaults_validate(self):
        PolarisConfig().validate()

    def test_rejects_bad_granularity(self):
        config = PolarisConfig()
        config.txn.conflict_granularity = "row"
        with pytest.raises(ValueError, match="granularity"):
            config.validate()

    def test_rejects_bad_isolation(self):
        config = PolarisConfig()
        config.txn.isolation = "read-uncommitted"
        with pytest.raises(ValueError, match="isolation"):
            config.validate()

    def test_rejects_zero_distributions(self):
        config = PolarisConfig()
        config.distributions = 0
        with pytest.raises(ValueError, match="distributions"):
            config.validate()

    def test_rejects_zero_rows_per_cell(self):
        config = PolarisConfig()
        config.rows_per_cell = 0
        with pytest.raises(ValueError, match="rows_per_cell"):
            config.validate()

    def test_file_granularity_accepted(self):
        config = PolarisConfig()
        config.txn.conflict_granularity = "file"
        config.validate()


class TestEventBus:
    def test_publish_reaches_subscriber(self):
        bus = EventBus()
        seen = []
        bus.subscribe("topic", seen.append)
        bus.publish("topic", x=1)
        assert len(seen) == 1
        assert seen[0].payload == {"x": 1}

    def test_publish_without_subscribers(self):
        event = EventBus().publish("quiet", y=2)
        assert event.topic == "quiet"

    def test_multiple_subscribers_all_fire(self):
        bus = EventBus()
        counts = [0, 0]

        bus.subscribe("t", lambda e: counts.__setitem__(0, counts[0] + 1))
        bus.subscribe("t", lambda e: counts.__setitem__(1, counts[1] + 1))
        bus.publish("t")
        assert counts == [1, 1]

    def test_topics_are_isolated(self):
        bus = EventBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b")
        assert seen == []

    def test_synchronous_delivery(self):
        bus = EventBus()
        order = []
        bus.subscribe("t", lambda e: order.append("handler"))
        bus.publish("t")
        order.append("after")
        assert order == ["handler", "after"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append)
        assert bus.unsubscribe("t", seen.append) is True
        bus.publish("t")
        assert seen == []

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        seen = []
        bus.subscribe("t", seen.append)
        assert bus.unsubscribe("t", seen.append) is True
        assert bus.unsubscribe("t", seen.append) is False
        assert bus.unsubscribe("never-subscribed", seen.append) is False

    def test_unsubscribe_leaves_other_handlers(self):
        bus = EventBus()
        kept, removed = [], []
        bus.subscribe("t", kept.append)
        bus.subscribe("t", removed.append)
        bus.unsubscribe("t", removed.append)
        bus.publish("t")
        assert len(kept) == 1 and removed == []

    def test_wildcard_sees_every_topic(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("a", x=1)
        bus.publish("b", y=2)
        assert [e.topic for e in seen] == ["a", "b"]

    def test_wildcard_fires_after_topic_handlers(self):
        bus = EventBus()
        order = []
        bus.subscribe("*", lambda e: order.append("wildcard"))
        bus.subscribe("t", lambda e: order.append("topic"))
        bus.publish("t")
        assert order == ["topic", "wildcard"]

    def test_wildcard_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        assert bus.unsubscribe("*", seen.append) is True
        bus.publish("t")
        assert seen == []


class TestUnits:
    def test_mib(self):
        assert mib(1024 * 1024) == 1.0

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert "MiB" in human_bytes(5 * 1024 * 1024)

    def test_human_seconds(self):
        assert human_seconds(0.5) == "500 ms"
        assert human_seconds(30) == "30.0 s"
        assert "min" in human_seconds(600)
        assert "h" in human_seconds(10000)
