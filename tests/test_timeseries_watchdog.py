"""The metrics sampler, the watchdog, and the zero-cost disabled path."""

import json

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, Warehouse
from repro.common.clock import SimulatedClock
from repro.common.errors import WriteConflictError
from repro.telemetry import (
    MetricSample,
    MetricsSampler,
    Watchdog,
    WatchdogRule,
    default_rules,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import flatten_sample, series_value

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def batch(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


def sample(sample_id, at, values):
    return MetricSample(sample_id=sample_id, at=at, values=values)


class TestSampler:
    def test_ticks_on_the_simulated_clock(self):
        clock = SimulatedClock()
        metrics = MetricsRegistry()
        sampler = MetricsSampler(clock, metrics, interval_s=1.0)
        sampler.start()
        metrics.counter("txn.commits").inc()
        for _ in range(3):
            clock.advance(1.0)
        ids = [s.sample_id for s in sampler.samples]
        assert ids == [0, 1, 2]
        assert [s.at for s in sampler.samples] == [1.0, 2.0, 3.0]
        assert all(
            s.values["txn.commits"] == 1.0 for s in sampler.samples
        )

    def test_ring_buffer_evicts_oldest(self):
        clock = SimulatedClock()
        sampler = MetricsSampler(
            clock, MetricsRegistry(), interval_s=1.0, capacity=2
        )
        sampler.start()
        for _ in range(5):
            clock.advance(1.0)
        assert [s.sample_id for s in sampler.samples] == [3, 4]

    def test_stop_declines_to_rearm(self):
        clock = SimulatedClock()
        sampler = MetricsSampler(clock, MetricsRegistry(), interval_s=1.0)
        sampler.start()
        clock.advance(1.0)
        sampler.stop()
        clock.advance(5.0)
        assert len(sampler.samples) == 1
        # The stopped tick does not re-arm: the watcher list drains.
        clock.advance(5.0)
        assert not clock._watchers

    def test_export_jsonl_round_trips(self, tmp_path):
        clock = SimulatedClock()
        metrics = MetricsRegistry()
        sampler = MetricsSampler(clock, metrics, interval_s=1.0)
        sampler.start()
        metrics.counter("txn.commits").inc(3)
        clock.advance(1.0)
        path = sampler.export_jsonl(str(tmp_path / "metrics.jsonl"))
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert len(lines) == 1
        assert lines[0]["sample_id"] == 0
        assert lines[0]["values"]["txn.commits"] == 3.0

    def test_validation(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            MetricsSampler(clock, MetricsRegistry(), interval_s=0.0)
        with pytest.raises(ValueError):
            MetricsSampler(clock, MetricsRegistry(), capacity=0)


class TestSeriesMath:
    def test_flatten_expands_histograms(self):
        flat = flatten_sample(
            {
                "txn.commits": 2.0,
                "storage.request_latency_s{op=get}": {
                    "count": 4,
                    "sum": 2.0,
                    "min": 0.1,
                    "mean": 0.5,
                    "max": 1.0,
                    "p50": 0.4,
                    "p95": 0.9,
                    "p99": 1.0,
                },
            }
        )
        assert flat["txn.commits"] == 2.0
        assert flat["storage.request_latency_s{op=get}.count"] == 4.0
        assert flat["storage.request_latency_s{op=get}.p95"] == 0.9

    def test_series_value_sums_label_sets(self):
        values = {
            "txn.commit_failures{error=A}": 2.0,
            "txn.commit_failures{error=B}": 3.0,
            "txn.commit_failures_other": 99.0,
            "txn.commits": 1.0,
        }
        assert series_value(values, "txn.commit_failures") == 5.0

    def test_series_value_uses_histogram_sum(self):
        values = {"storage.retry_backoff_s{label=x}": {"sum": 7.5, "count": 3}}
        assert series_value(values, "storage.retry_backoff_s") == 7.5


class TestWatchdogUnit:
    def test_rate_rule_fires_on_delta(self):
        metrics = MetricsRegistry()
        dog = Watchdog(
            metrics,
            None,
            rules=[
                WatchdogRule(
                    name="spike",
                    metric="txn.commit_failures",
                    threshold=0.5,
                    mode="rate",
                )
            ],
        )
        dog.observe(sample(0, 1.0, {"txn.commit_failures{error=X}": 0.0}))
        assert dog.alerts == []  # rate undefined on the first sample
        dog.observe(sample(1, 2.0, {"txn.commit_failures{error=X}": 1.0}))
        assert [a["rule"] for a in dog.alerts] == ["spike"]
        assert dog.alerts[0]["value"] == 1.0
        assert metrics.value("watchdog.alerts", rule="spike") == 1.0

    def test_hold_requires_persistent_breach(self):
        dog = Watchdog(
            MetricsRegistry(),
            None,
            rules=[
                WatchdogRule(
                    name="linger",
                    metric="sto.unhealthy_tables",
                    threshold=1.0,
                    mode="value",
                    hold_s=2.0,
                )
            ],
        )
        dog.observe(sample(0, 0.0, {"sto.unhealthy_tables": 1.0}))
        dog.observe(sample(1, 1.0, {"sto.unhealthy_tables": 1.0}))
        assert dog.alerts == []  # breached, but not held long enough
        dog.observe(sample(2, 2.0, {"sto.unhealthy_tables": 1.0}))
        assert [a["rule"] for a in dog.alerts] == ["linger"]

    def test_recovery_resets_hold(self):
        dog = Watchdog(
            MetricsRegistry(),
            None,
            rules=[
                WatchdogRule(
                    name="linger",
                    metric="sto.unhealthy_tables",
                    threshold=1.0,
                    mode="value",
                    hold_s=2.0,
                )
            ],
        )
        dog.observe(sample(0, 0.0, {"sto.unhealthy_tables": 1.0}))
        dog.observe(sample(1, 1.0, {"sto.unhealthy_tables": 0.0}))
        dog.observe(sample(2, 2.0, {"sto.unhealthy_tables": 1.0}))
        assert dog.alerts == []  # the breach clock restarted at t=2

    def test_cooldown_rate_limits_alerts(self):
        dog = Watchdog(
            MetricsRegistry(),
            None,
            rules=[
                WatchdogRule(
                    name="noisy",
                    metric="sto.unhealthy_tables",
                    threshold=1.0,
                    mode="value",
                    cooldown_s=5.0,
                )
            ],
        )
        for i in range(4):
            dog.observe(sample(i, float(i), {"sto.unhealthy_tables": 2.0}))
        assert len(dog.alerts) == 1
        dog.observe(sample(9, 9.0, {"sto.unhealthy_tables": 2.0}))
        assert len(dog.alerts) == 2

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            WatchdogRule(name="x", metric="m", threshold=1.0, comparison="eq")
        with pytest.raises(ValueError):
            WatchdogRule(name="x", metric="m", threshold=1.0, mode="slope")
        with pytest.raises(ValueError):
            WatchdogRule(name="", metric="m", threshold=1.0)

    def test_default_rules_cover_the_seven_failure_modes(self):
        rules = {rule.name: rule for rule in default_rules()}
        assert set(rules) == {
            "abort_rate_spike",
            "red_table_lingering",
            "retry_backoff_saturation",
            "admission_queue_saturation",
            "plan_latency_regression",
            "integrity_unrepairable",
            "commit_lock_contention",
        }
        assert rules["abort_rate_spike"].mode == "rate"
        assert rules["red_table_lingering"].hold_s > 0
        assert rules["admission_queue_saturation"].metric == "service.queue_depth"
        assert rules["admission_queue_saturation"].hold_s > 0
        assert rules["plan_latency_regression"].mode == "rate"
        assert (
            rules["plan_latency_regression"].metric
            == "querystore.plan_regressions"
        )
        assert rules["integrity_unrepairable"].mode == "value"
        assert (
            rules["integrity_unrepairable"].metric
            == "storage.integrity_unrepairable"
        )
        assert rules["commit_lock_contention"].mode == "rate"
        assert (
            rules["commit_lock_contention"].metric == "sqldb.commit_lock_wait_s"
        )


class TestWatchdogEndToEnd:
    @pytest.fixture
    def watched_dw(self, config):
        config.telemetry.metrics = True
        config.telemetry.sample_interval_s = 1.0
        config.telemetry.watchdog_enabled = True
        return Warehouse(config=config, auto_optimize=False)

    def test_conflict_workload_fires_abort_rate_alert(self, watched_dw):
        dw = watched_dw
        alerts = []
        dw.context.bus.subscribe(
            "watchdog.alert", lambda event: alerts.append(event.payload)
        )
        writer, loser = dw.session(), dw.session()
        writer.create_table("t", SCHEMA)
        writer.insert("t", batch(0, 20))
        dw.clock.advance(1.0)  # baseline sample: zero failures

        # Table-granularity conflict: both transactions delete from t;
        # the first committer wins, the loser's commit raises and bumps
        # txn.commit_failures — one failure over the next one-second
        # sample window is a 1.0/s rate, over the 0.5/s threshold.
        writer.begin()
        writer.delete("t", BinOp("==", Col("id"), Lit(1)))
        loser.begin()
        loser.delete("t", BinOp("==", Col("id"), Lit(2)))
        writer.commit()
        with pytest.raises(WriteConflictError):
            loser.commit()
        dw.clock.advance(1.0)

        assert [a["rule"] for a in alerts] == ["abort_rate_spike"]
        assert alerts[0]["metric"] == "txn.commit_failures"
        assert alerts[0]["value"] >= 0.5
        assert (
            dw.telemetry.metrics.value(
                "watchdog.alerts", rule="abort_rate_spike"
            )
            == 1.0
        )
        # The alert is queryable through the DMV surface too.
        row = dw.session().sql(
            "SELECT value FROM sys.dm_metrics WHERE name = 'watchdog.alerts'"
        )
        assert float(row["value"][0]) == 1.0

    def test_clean_path_stays_silent(self, watched_dw):
        dw = watched_dw
        alerts = []
        dw.context.bus.subscribe(
            "watchdog.alert", lambda event: alerts.append(event.payload)
        )
        session = dw.session()
        session.create_table("t", SCHEMA)
        for i in range(5):
            session.insert("t", batch(i * 10, 10))
            dw.clock.advance(1.0)
        assert alerts == []
        assert dw.telemetry.watchdog.alerts == []


class TestZeroCostDisabled:
    def test_disabled_sampler_allocates_nothing(self, config):
        assert config.telemetry.sample_interval_s == 0.0  # the default
        dw = Warehouse(config=config, auto_optimize=False)
        telemetry = dw.telemetry
        assert telemetry.sampler is None
        assert telemetry.watchdog is None
        assert dw.clock._watchers == []
        attributes_before = sorted(vars(telemetry))

        session = dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 50))
        dw.clock.advance(60.0)

        # No per-tick work happened and nothing was lazily attached: the
        # facade grew no attributes, armed no clock watcher, and the
        # history view stays empty.
        assert sorted(vars(telemetry)) == attributes_before
        assert telemetry.sampler is None
        assert telemetry.watchdog is None
        assert dw.clock._watchers == []
        history = session.sql("SELECT * FROM sys.dm_metrics_history")
        assert len(history["sample_id"]) == 0

    def test_watchdog_requires_sampler(self, config):
        config.telemetry.watchdog_enabled = True
        config.telemetry.sample_interval_s = 0.0
        with pytest.raises(ValueError):
            config.validate()
