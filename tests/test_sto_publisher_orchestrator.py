"""Tests for Delta publishing (5.4) and the STO trigger engine."""

import json

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, Warehouse
from repro.sqldb import system_tables as st
from tests.conftest import small_config


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


def table_id(dw, name="t"):
    txn = dw.context.sqldb.begin()
    try:
        return st.find_table_by_name(txn, name)["table_id"]
    finally:
        txn.abort()


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=True)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    return s


class TestDeltaPublisher:
    def test_commit_published_as_delta_log(self, dw, session):
        dw.sto.auto_publish = True
        session.insert("t", ids(10))
        published = dw.sto.publisher.published
        assert len(published) == 1
        assert published[0].version == 0
        blob = dw.store.get(published[0].path)
        lines = [json.loads(l) for l in blob.data.decode().splitlines()]
        assert "commitInfo" in lines[0]
        adds = [l for l in lines if "add" in l]
        assert adds
        assert all("path" in l["add"] for l in adds)

    def test_versions_increment(self, dw, session):
        dw.sto.auto_publish = True
        session.insert("t", ids(5))
        session.insert("t", ids(5, start=10))
        versions = [p.version for p in dw.sto.publisher.published]
        assert versions == [0, 1]

    def test_shortcut_written_once(self, dw, session):
        dw.sto.auto_publish = True
        session.insert("t", ids(5))
        session.insert("t", ids(5, start=10))
        shortcut_path = "published/dw/t/_shortcut.json"
        assert dw.store.exists(shortcut_path)
        shortcut = json.loads(dw.store.get(shortcut_path).data)
        assert shortcut["target"].endswith(str(table_id(dw)))

    def test_delete_published_with_deletion_vector(self, dw, session):
        session.insert("t", ids(10))
        dw.sto.auto_publish = True
        session.delete("t", BinOp("==", Col("id"), Lit(3)))
        blob = dw.store.get(dw.sto.publisher.published[-1].path)
        lines = [json.loads(l) for l in blob.data.decode().splitlines()]
        dv_adds = [l for l in lines if "add" in l and "deletionVector" in l["add"]]
        assert dv_adds
        assert dv_adds[0]["add"]["deletionVector"]["cardinality"] == 1

    def test_no_publish_when_disabled(self, dw, session):
        session.insert("t", ids(5))
        assert dw.sto.publisher.published == []


class TestOrchestratorTriggers:
    def test_unhealthy_scan_schedules_compaction(self, dw, session):
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(60)))
        # A scan observes the degraded state and schedules compaction.
        from repro import Aggregate, TableScan
        dw.session().query(
            Aggregate(TableScan("t", ("id",)), (), {"n": ("count", None)})
        )
        assert table_id(dw) in dw.sto.pending_compactions

    def test_pending_compaction_runs_after_delay(self, dw, session):
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(60)))
        from repro import Aggregate, TableScan
        plan = Aggregate(TableScan("t", ("id",)), (), {"n": ("count", None)})
        dw.session().query(plan)
        assert not dw.sto.compactions
        dw.clock.advance(dw.config.sto.poll_interval_s + 1.0)
        dw.sto.tick()
        committed = [c for c in dw.sto.compactions if c.committed]
        assert committed
        assert dw.sto.health.is_healthy(table_id(dw))

    def test_health_timeline_records_transitions(self, dw, session):
        session.insert("t", ids(100))
        from repro import Aggregate, TableScan
        plan = Aggregate(TableScan("t", ("id",)), (), {"n": ("count", None)})
        dw.session().query(plan)  # healthy observation
        session.delete("t", BinOp("<", Col("id"), Lit(60)))
        dw.session().query(plan)  # degraded observation
        dw.clock.advance(dw.config.sto.poll_interval_s + 1.0)
        dw.sto.tick()  # compaction restores health
        tid = table_id(dw)
        states = [t.healthy for t in dw.sto.health.transitions_for(tid)]
        assert states == [True, False, True]

    def test_disabled_sto_does_not_react(self):
        dw = Warehouse(config=small_config(), auto_optimize=False)
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(60)))
        from repro import Aggregate, TableScan
        dw.session().query(
            Aggregate(TableScan("t", ("id",)), (), {"n": ("count", None)})
        )
        assert dw.sto.pending_compactions == {}
        # Health is still *observed* (monitoring stays on), just not acted on.
        assert dw.sto.health.is_healthy(table_id(dw)) is False

    def test_checkpoint_trigger_threshold(self, dw, session):
        threshold = dw.config.sto.checkpoint_manifest_threshold
        for i in range(threshold):
            session.insert("t", ids(2, start=i * 10))
        assert len(dw.sto.checkpoints) == 1
        assert dw.sto.checkpoints[0].manifests_collapsed == threshold
