"""The service gateway: tasklets, admission, sessions, DMVs, determinism."""

import numpy as np
import pytest

from repro import PolarisConfig, Schema, Warehouse
from repro.common.clock import SimulatedClock
from repro.common.errors import (
    PolarisError,
    RequestSheddedError,
    RequestTimeoutError,
    ServiceError,
    SessionQuotaError,
)
from repro.service import AdmissionController, Gateway, TokenBucket
from repro.service.sessions import SessionPool
from repro.service.tasklets import TaskletScheduler

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def batch(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


def gateway_config(**service_overrides):
    config = PolarisConfig()
    config.distributions = 4
    config.rows_per_cell = 1_000
    config.dcp.fixed_nodes = 2
    for key, value in service_overrides.items():
        setattr(config.service, key, value)
    return config


def gateway_warehouse(**service_overrides):
    dw = Warehouse(config=gateway_config(**service_overrides), auto_optimize=False)
    session = dw.session()
    session.create_table("t", SCHEMA, distribution_column="id")
    return dw, Gateway(dw.context), session


class TestTasklets:
    def test_same_seed_same_interleaving(self):
        def run(seed):
            clock = SimulatedClock()
            scheduler = TaskletScheduler(clock, seed=seed)
            log = []

            def worker(name, sleeps):
                for sleep_s in sleeps:
                    log.append((name, round(clock.now, 9)))
                    yield sleep_s

            # Identical wake instants force the seeded tie-break to decide.
            scheduler.spawn(worker("a", [1.0, 1.0, 1.0]), name="a")
            scheduler.spawn(worker("b", [1.0, 1.0, 1.0]), name="b")
            scheduler.spawn(worker("c", [1.0, 1.0, 1.0]), name="c")
            scheduler.run()
            return log

        assert run(7) == run(7)

    def test_run_until_leaves_future_tasklets_queued(self):
        clock = SimulatedClock()
        scheduler = TaskletScheduler(clock)
        seen = []

        def worker():
            seen.append(clock.now)
            yield 10.0
            seen.append(clock.now)

        scheduler.spawn(worker())
        scheduler.run(until=5.0)
        assert seen == [0.0]
        assert scheduler.pending == 1
        scheduler.run()
        assert seen == [0.0, 10.0]

    def test_clear_abandons_pending(self):
        clock = SimulatedClock()
        scheduler = TaskletScheduler(clock)
        scheduler.spawn(iter([1.0]))
        scheduler.spawn(iter([2.0]))
        assert scheduler.clear() == 2
        assert scheduler.pending == 0
        assert scheduler.run() == 0


class TestTokenBucket:
    def test_refill_is_clock_driven_and_capped(self):
        clock = SimulatedClock()
        bucket = TokenBucket(clock, rate=2.0, burst=4.0)
        assert bucket.try_take(4.0)
        assert not bucket.try_take(1.0)
        clock.advance(1.0)
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(4.0)  # capped at burst


class FakeRequest:
    """Stand-in carrying only what the admission controller reads."""

    def __init__(self, name, submitted_at=0.0):
        self.name = name
        self.submitted_at = submitted_at


class TestAdmission:
    def controller(self, clock=None, **overrides):
        config = gateway_config(**overrides).service
        return AdmissionController(clock or SimulatedClock(), config, seed=0)

    def test_priority_order_with_fifo_ties(self):
        admission = self.controller()
        for name, priority in (("low", 0), ("high", 5), ("mid", 1), ("high2", 5)):
            verdict = admission.admit(
                "a", "transactional", priority, FakeRequest(name)
            )
            assert verdict is None
        order = []
        while True:
            request, expired = admission.next_request()
            assert expired == []
            if request is None:
                break
            order.append(request.name)
        assert order == ["high", "high2", "mid", "low"]

    def test_weighted_round_robin_between_classes(self):
        admission = self.controller(transactional_share=2, token_burst=100.0)
        for i in range(6):
            admission.admit("a", "transactional", 0, FakeRequest(f"t{i}"))
        for i in range(3):
            admission.admit("b", "analytical", 0, FakeRequest(f"q{i}"))
        order = []
        while True:
            request, __ = admission.next_request()
            if request is None:
                break
            order.append(request.name)
        assert order == ["t0", "t1", "q0", "t2", "t3", "q1", "t4", "t5", "q2"]

    def test_rate_limit_sheds_with_seeded_hint(self):
        admission = self.controller(tokens_per_s=1.0, token_burst=1.0)
        assert admission.admit("a", "transactional", 0, FakeRequest("ok")) is None
        verdict = admission.admit("a", "transactional", 0, FakeRequest("no"))
        assert verdict is not None
        reason, hint = verdict
        assert reason == "rate_limited"
        assert hint > 0
        # A different tenant has its own bucket.
        assert admission.admit("b", "transactional", 0, FakeRequest("ok2")) is None

    def test_full_queue_sheds(self):
        admission = self.controller(queue_capacity=2, token_burst=100.0)
        assert admission.admit("a", "transactional", 0, FakeRequest("r1")) is None
        assert admission.admit("a", "transactional", 0, FakeRequest("r2")) is None
        reason, hint = admission.admit("a", "transactional", 0, FakeRequest("r3"))
        assert reason == "queue_full"
        assert hint > 0

    def test_deadline_expires_stale_requests_at_dispatch(self):
        clock = SimulatedClock()
        admission = self.controller(clock, queue_deadline_s=5.0)
        admission.admit("a", "transactional", 0, FakeRequest("old", clock.now))
        clock.advance(6.0)
        admission.admit("a", "transactional", 0, FakeRequest("new", clock.now))
        request, expired = admission.next_request()
        assert request.name == "new"
        assert [r.name for r in expired] == ["old"]

    def test_decision_log_is_canonical_and_seeded(self):
        logs = []
        for __ in range(2):
            admission = self.controller(tokens_per_s=1.0, token_burst=1.0)
            admission.admit("a", "transactional", 1, FakeRequest("r1"))
            admission.admit("a", "transactional", 0, FakeRequest("r2"))
            logs.append(list(admission.decision_log))
        assert logs[0] == logs[1]
        assert "admit tenant=a" in logs[0][0]
        assert "shed rate_limited tenant=a" in logs[0][1]


class TestSessionPool:
    def pool(self, dw, **overrides):
        return SessionPool(dw.context, gateway_config(**overrides).service)

    def test_quota_then_reuse(self, warehouse):
        pool = self.pool(warehouse, max_sessions_per_tenant=2)
        first = pool.acquire("a")
        second = pool.acquire("a")
        with pytest.raises(SessionQuotaError):
            pool.acquire("a")
        # Another tenant has its own quota.
        assert pool.acquire("b").tenant == "b"
        pool.release(first)
        reused = pool.acquire("a")
        assert reused.session_id == first.session_id
        assert reused.requests == 1
        assert second.state == "active"

    def test_reap_closes_only_idle_expired(self, warehouse):
        pool = self.pool(warehouse, session_idle_timeout_s=10.0)
        idle = pool.acquire("a")
        busy = pool.acquire("a")
        pool.release(idle)
        warehouse.clock.advance(11.0)
        assert pool.reap_idle() == 1
        assert idle.state == "closed"
        assert busy.state == "active"
        assert pool.open_count == 1


class TestGateway:
    def test_sql_text_work_runs_and_returns_batch(self):
        dw, gateway, session = gateway_warehouse()
        session.insert("t", batch(0, 20))
        request = gateway.submit(
            "tenant_a", "analytical", "SELECT id FROM t WHERE id < 5"
        )
        gateway.run()
        assert request.status == "completed"
        assert len(request.result["id"]) == 5
        assert request.queue_wait_s >= 0
        assert request.session_id > 0

    def test_unknown_workload_class_rejected(self):
        __, gateway, __ = gateway_warehouse()
        with pytest.raises(Exception, match="workload class"):
            gateway.submit("tenant_a", "batch", "SELECT id FROM t")

    def test_shed_raises_with_retry_after(self):
        __, gateway, __ = gateway_warehouse(tokens_per_s=0.1, token_burst=1.0)
        gateway.submit("tenant_a", "transactional", lambda s: None)
        with pytest.raises(RequestSheddedError) as exc:
            gateway.submit("tenant_a", "transactional", lambda s: None)
        assert exc.value.reason == "rate_limited"
        assert exc.value.retry_after_s > 0
        shed = gateway.requests_with_status("shed")
        assert len(shed) == 1
        assert shed[0].retry_after_s == exc.value.retry_after_s

    def test_failed_work_marks_request_failed_not_gateway(self):
        __, gateway, __ = gateway_warehouse()
        bad = gateway.submit(
            "tenant_a", "analytical", "SELECT id FROM does_not_exist"
        )
        good = gateway.submit("tenant_a", "analytical", "SELECT id FROM t")
        gateway.run()
        assert bad.status == "failed"
        assert bad.error
        assert good.status == "completed"

    def test_queue_deadline_times_requests_out(self):
        dw, gateway, __ = gateway_warehouse(queue_deadline_s=5.0)
        stale = gateway.submit("tenant_a", "transactional", lambda s: None)
        dw.clock.advance(6.0)
        fresh = gateway.submit("tenant_a", "transactional", lambda s: 7)
        gateway.run()
        assert stale.status == "timed_out"
        assert stale.error == "RequestTimeoutError"
        with pytest.raises(RequestTimeoutError, match="queue deadline"):
            stale.outcome()
        assert fresh.status == "completed"
        assert fresh.outcome() == 7

    def test_outcome_surfaces_terminal_errors(self):
        __, gateway, __ = gateway_warehouse()
        bad = gateway.submit(
            "tenant_a", "analytical", "SELECT id FROM does_not_exist"
        )
        # Still queued: outcome() refuses rather than returning None.
        with pytest.raises(ServiceError, match="still 'queued'"):
            bad.outcome()
        gateway.run()
        assert bad.status == "failed"
        with pytest.raises(PolarisError) as exc:
            bad.outcome()
        assert type(exc.value).__name__ == bad.error

    def test_shed_request_outcome_reraises_the_shed_error(self):
        __, gateway, __ = gateway_warehouse(tokens_per_s=0.1, token_burst=1.0)
        gateway.submit("tenant_a", "transactional", lambda s: None)
        with pytest.raises(RequestSheddedError):
            gateway.submit("tenant_a", "transactional", lambda s: None)
        shed = gateway.requests_with_status("shed")[0]
        with pytest.raises(RequestSheddedError) as exc:
            shed.outcome()
        assert exc.value.retry_after_s == shed.retry_after_s

    def test_session_acquire_failure_fails_request_not_dispatcher(self):
        __, gateway, __ = gateway_warehouse(max_sessions_per_tenant=1)
        # Hold tenant_a's only session busy outside the dispatcher, so the
        # dispatcher's acquire raises SessionQuotaError mid-dispatch.
        held = gateway.pool.acquire("tenant_a")
        starved = gateway.submit("tenant_a", "transactional", lambda s: None)
        other = gateway.submit("tenant_b", "transactional", lambda s: 1)
        gateway.run()
        assert starved.status == "failed"
        assert starved.error == "SessionQuotaError"
        with pytest.raises(SessionQuotaError):
            starved.outcome()
        assert other.status == "completed"  # the dispatcher survived
        gateway.pool.release(held)

    def test_finished_totals_survive_ledger_eviction(self):
        __, gateway, __ = gateway_warehouse(finished_history_cap=2)
        requests = [
            gateway.submit("tenant_a", "transactional", lambda s: None)
            for __ in range(5)
        ]
        gateway.run()
        assert all(r.status == "completed" for r in requests)
        assert len(gateway.request_rows()) == 2  # ledger keeps only the cap
        assert gateway.finished_count("completed") == 5  # totals never evict
        assert (
            gateway.finished_count(
                "completed", workload_class="transactional"
            )
            == 5
        )
        assert (
            gateway.finished_count("completed", workload_class="analytical")
            == 0
        )

    def test_scavenge_with_finished_ledger_at_cap(self):
        """Regression: scavenging must survive its own ledger evictions."""
        __, gateway, __ = gateway_warehouse(finished_history_cap=2)
        for __ in range(3):
            gateway.submit("tenant_a", "transactional", lambda s: None)
        gateway.run()  # the finished ledger is now at its cap
        queued = [
            gateway.submit("tenant_a", "transactional", lambda s: None)
            for __ in range(3)
        ]
        assert gateway.scavenge() == 3
        assert [r.status for r in queued] == ["scavenged"] * 3
        assert not gateway.requests_with_status("queued", "running")
        assert gateway.finished_count("scavenged") == 3

    def test_sessions_reused_and_reaped(self):
        dw, gateway, __ = gateway_warehouse(session_idle_timeout_s=50.0)
        for __ in range(3):
            gateway.submit("tenant_a", "transactional", lambda s: None)
        gateway.run()
        rows = gateway.session_rows()
        assert len(rows) == 1  # serial dispatch reuses one pooled session
        assert rows[0]["requests"] == 3
        assert rows[0]["state"] == "idle"
        dw.clock.advance(60.0)
        assert gateway.reap_sessions() == 1
        assert gateway.session_rows()[0]["state"] == "closed"


class TestDmvViews:
    def test_empty_views_keep_schema_dtypes_without_gateway(self, warehouse):
        session = warehouse.session()
        sessions = session.sql("SELECT * FROM sys.dm_sessions")
        assert sessions["session_id"].dtype == np.int64
        assert sessions["opened_at"].dtype == np.float64
        assert len(sessions["session_id"]) == 0
        requests = session.sql("SELECT * FROM sys.dm_requests")
        assert requests["request_id"].dtype == np.int64
        assert requests["queue_wait_s"].dtype == np.float64
        assert len(requests["request_id"]) == 0

    def test_views_reflect_the_ledger(self):
        dw, gateway, session = gateway_warehouse()
        session.insert("t", batch(0, 10))
        gateway.submit("tenant_a", "analytical", "SELECT id FROM t")
        gateway.submit("tenant_b", "transactional", lambda s: None)
        gateway.run()
        rows = session.sql(
            "SELECT request_id, tenant, workload_class, status "
            "FROM sys.dm_requests ORDER BY request_id"
        )
        assert list(rows["tenant"]) == ["tenant_a", "tenant_b"]
        assert list(rows["status"]) == ["completed", "completed"]
        sessions = session.sql(
            "SELECT session_id, tenant, requests FROM sys.dm_sessions "
            "ORDER BY session_id"
        )
        assert sorted(sessions["tenant"]) == ["tenant_a", "tenant_b"]
        assert sum(sessions["requests"]) == 2

    def test_views_support_explain_and_aggregation(self):
        __, gateway, session = gateway_warehouse()
        gateway.submit("tenant_a", "transactional", lambda s: None)
        gateway.run()
        plan = session.sql(
            "EXPLAIN SELECT request_id FROM sys.dm_requests "
            "WHERE status = 'completed'"
        )
        assert "sys.dm_requests" in plan
        agg = session.sql(
            "SELECT status, COUNT(*) AS n FROM sys.dm_requests GROUP BY status"
        )
        assert list(agg["status"]) == ["completed"]
        assert int(agg["n"][0]) == 1


class TestDeterminism:
    """Same seed + config => byte-identical admission decisions, queue
    orders, and service.* metric values across two runs."""

    @staticmethod
    def _scripted_run():
        from random import Random

        dw, gateway, session = gateway_warehouse(
            tokens_per_s=0.5, token_burst=2.0, queue_capacity=3
        )

        def client(index):
            rng = Random(f"det:{index}")
            for turn in range(3):
                yield rng.uniform(0.1, 2.0)
                work = (
                    lambda s, start=1000 * index + 10 * turn: s.insert(
                        "t", batch(start, 10)
                    )
                )
                try:
                    gateway.submit("shared", "transactional", work)
                except RequestSheddedError as shed:
                    yield shed.retry_after_s

        for index in range(4):
            gateway.scheduler.spawn(client(index), name=f"client-{index}")
        gateway.run()
        metrics = {
            key: value
            for key, value in dw.context.telemetry.metrics.snapshot().items()
            if key.startswith("service.")
        }
        return (
            list(gateway.admission.decision_log),
            gateway.request_rows(),
            metrics,
        )

    def test_two_runs_are_byte_identical(self):
        first = self._scripted_run()
        second = self._scripted_run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]
        # The scenario must actually exercise shedding for the witness to
        # mean anything.
        assert any("shed" in line for line in first[0])
        assert any("admit" in line for line in first[0])
