"""Tests for the typed system-table accessors."""

import pytest

from repro.common.errors import WriteConflictError
from repro.sqldb import SqlDbEngine
from repro.sqldb import system_tables as st


@pytest.fixture
def engine():
    return SqlDbEngine()


def add_manifest(txn, table_id, seq, name=None):
    st.insert_manifest(
        txn, table_id, name or f"m{seq}", seq, txn.txid, float(seq),
        f"path/{table_id}/{name or f'm{seq}'}",
    )


class TestTables:
    def test_create_and_find(self, engine):
        txn = engine.begin()
        st.insert_table(txn, 1001, "t", [{"name": "c", "type": "int64"}], 0.0)
        txn.commit()
        reader = engine.begin()
        assert st.get_table(reader, 1001)["name"] == "t"
        assert st.find_table_by_name(reader, "t")["table_id"] == 1001
        assert st.find_table_by_name(reader, "ghost") is None

    def test_list_tables(self, engine):
        txn = engine.begin()
        st.insert_table(txn, 1, "a", [], 0.0)
        st.insert_table(txn, 2, "b", [], 0.0)
        txn.commit()
        assert len(st.list_tables(engine.begin())) == 2

    def test_drop_table(self, engine):
        txn = engine.begin()
        st.insert_table(txn, 1, "a", [], 0.0)
        txn.commit()
        txn2 = engine.begin()
        st.drop_table(txn2, 1)
        txn2.commit()
        assert st.get_table(engine.begin(), 1) is None


class TestManifests:
    def test_ordered_by_sequence(self, engine):
        txn = engine.begin()
        add_manifest(txn, 1, 3)
        add_manifest(txn, 1, 1)
        add_manifest(txn, 1, 2)
        txn.commit()
        rows = st.manifests_for_table(engine.begin(), 1)
        assert [r["sequence_id"] for r in rows] == [1, 2, 3]

    def test_range_filtering(self, engine):
        txn = engine.begin()
        for seq in range(1, 6):
            add_manifest(txn, 1, seq)
        txn.commit()
        rows = st.manifests_for_table(engine.begin(), 1, 1, 4)
        assert [r["sequence_id"] for r in rows] == [2, 3, 4]

    def test_tables_isolated(self, engine):
        txn = engine.begin()
        add_manifest(txn, 1, 1)
        add_manifest(txn, 2, 2)
        txn.commit()
        assert len(st.manifests_for_table(engine.begin(), 1)) == 1

    def test_manifest_path_stored(self, engine):
        txn = engine.begin()
        add_manifest(txn, 7, 1, name="abc")
        txn.commit()
        row = st.manifests_for_table(engine.begin(), 7)[0]
        assert row["manifest_path"] == "path/7/abc"


class TestWriteSets:
    def test_table_granularity_conflict(self, engine):
        a = engine.begin()
        b = engine.begin()
        st.upsert_writeset(a, 10)
        st.upsert_writeset(b, 10)
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()

    def test_different_tables_no_conflict(self, engine):
        a = engine.begin()
        b = engine.begin()
        st.upsert_writeset(a, 10)
        st.upsert_writeset(b, 11)
        a.commit()
        b.commit()

    def test_file_granularity_same_file_conflicts(self, engine):
        a = engine.begin()
        b = engine.begin()
        st.upsert_writeset(a, 10, "f1.rpf")
        st.upsert_writeset(b, 10, "f1.rpf")
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()

    def test_file_granularity_different_files_commit(self, engine):
        a = engine.begin()
        b = engine.begin()
        st.upsert_writeset(a, 10, "f1.rpf")
        st.upsert_writeset(b, 10, "f2.rpf")
        a.commit()
        b.commit()

    def test_updated_counter_increments(self, engine):
        a = engine.begin()
        st.upsert_writeset(a, 10)
        a.commit()
        b = engine.begin()
        st.upsert_writeset(b, 10)
        b.commit()
        row = engine.begin().get(st.WRITESETS, (10,))
        assert row["updated"] == 2


class TestCheckpoints:
    def test_latest_checkpoint_selection(self, engine):
        txn = engine.begin()
        st.insert_checkpoint(txn, 1, 5, "p5", 0.0)
        st.insert_checkpoint(txn, 1, 10, "p10", 1.0)
        txn.commit()
        reader = engine.begin()
        assert st.latest_checkpoint(reader, 1, 20)["sequence_id"] == 10
        assert st.latest_checkpoint(reader, 1, 7)["sequence_id"] == 5
        assert st.latest_checkpoint(reader, 1, 3) is None

    def test_checkpoints_for_table_ordered(self, engine):
        txn = engine.begin()
        st.insert_checkpoint(txn, 1, 10, "p10", 1.0)
        st.insert_checkpoint(txn, 1, 5, "p5", 0.0)
        txn.commit()
        rows = st.checkpoints_for_table(engine.begin(), 1)
        assert [r["sequence_id"] for r in rows] == [5, 10]
