"""Telemetry: span nesting, metrics, retries in traces, trace export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Schema, Warehouse, WriteConflictError
from repro.telemetry import (
    MetricsRegistry,
    chrome_trace,
    combined_chrome_trace,
    snapshot_delta,
    spans_to_jsonl,
)
from tests.conftest import small_config


def traced_warehouse() -> Warehouse:
    config = small_config()
    config.telemetry.enabled = True
    return Warehouse(config=config, auto_optimize=False)


def ids(n, start=0):
    return {
        "id": np.arange(start, start + n, dtype=np.int64),
        "v": np.arange(start, start + n) * 1.0,
    }


@pytest.fixture
def dw() -> Warehouse:
    return traced_warehouse()


@pytest.fixture
def tsession(dw):
    session = dw.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")), distribution_column="id"
    )
    return session


def spans_by_name(dw, name):
    return [s for s in dw.telemetry.spans if s.name == name]


def span_index(dw):
    return {s.span_id: s for s in dw.telemetry.spans}


class TestSpanNesting:
    def test_statement_nests_under_transaction(self, dw, tsession):
        tsession.insert("t", ids(50))
        txn_spans = [s for s in dw.telemetry.spans if s.name == "txn"]
        assert txn_spans, "no transaction spans recorded"
        by_id = span_index(dw)
        stmts = [s for s in dw.telemetry.spans if s.name == "stmt.insert"]
        assert stmts
        for stmt in stmts:
            assert by_id[stmt.parent_id].name == "txn"

    def test_dcp_tasks_nest_under_statement_chain(self, dw, tsession):
        tsession.insert("t", ids(50))
        by_id = span_index(dw)
        tasks = [s for s in dw.telemetry.spans if s.category == "dcp.task"]
        assert tasks, "no DCP task spans"
        for task in tasks:
            # task -> dcp.dag -> stmt.* -> txn
            chain = []
            node = task
            while node.parent_id is not None:
                node = by_id[node.parent_id]
                chain.append(node.name)
            assert "dcp.dag" in chain
            assert "txn" in chain
            assert task.track.startswith("node:")
            assert task.tid >= 1

    def test_storage_spans_nest_inside_tasks(self, dw, tsession):
        tsession.insert("t", ids(50))
        by_id = span_index(dw)
        stores = [s for s in dw.telemetry.spans if s.category == "storage"]
        assert stores
        in_task = [
            s
            for s in stores
            if s.parent_id is not None
            and by_id[s.parent_id].category == "dcp.task"
        ]
        assert in_task, "no storage spans attributed to DCP tasks"
        for span in in_task:
            parent = by_id[span.parent_id]
            assert span.start >= parent.start - 1e-9
            assert span.track == parent.track

    def test_commit_span_attributes(self, dw, tsession):
        tsession.insert("t", ids(10))
        txn_spans = [
            s for s in spans_by_name(dw, "txn") if s.attributes.get("commit_seq")
        ]
        assert txn_spans
        assert all(s.status == "ok" for s in txn_spans)

    def test_rollback_marks_span(self, dw, tsession):
        tsession.begin()
        tsession.insert("t", ids(10))
        tsession.rollback()
        assert any(s.status == "rollback" for s in spans_by_name(dw, "txn"))
        assert dw.telemetry.metrics.value("txn.rollbacks") == 1

    def test_conflict_loser_span_failed_not_dropped(self, dw, tsession):
        tsession.insert("t", ids(100))
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        from repro import BinOp, Col, Lit

        a.delete("t", BinOp("==", Col("id"), Lit(1)))
        b.delete("t", BinOp("==", Col("id"), Lit(90)))
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        statuses = sorted(s.status for s in spans_by_name(dw, "txn"))
        assert "error" in statuses, "loser's span was dropped"
        losers = [s for s in spans_by_name(dw, "txn") if s.status == "error"]
        assert losers[0].attributes["error.type"] == "WriteConflictError"
        assert (
            dw.telemetry.metrics.value(
                "txn.commit_failures", error="WriteConflictError"
            )
            == 1
        )


class TestRetriesInTrace:
    def test_injected_fault_appears_as_retry_event(self, dw, tsession):
        # Arm a one-shot fault on the manifest flush the insert will do.
        dw.store.faults.arm("manifest", operation="commit_block_list")
        tsession.insert("t", ids(20))
        metrics = dw.telemetry.metrics
        assert metrics.value("storage.retry_attempts", label="manifest_flush") >= 1
        assert (
            metrics.value(
                "storage.retry_outcomes", label="manifest_flush", outcome="ok"
            )
            >= 1
        )
        assert metrics.value("storage.faults_injected", op="commit_block_list") >= 1
        retry_events = [
            e for s in dw.telemetry.spans for e in s.events if e.name == "retry"
        ]
        assert retry_events, "retry not visible in the trace"
        assert retry_events[0].attributes["error"] == "TransientStorageError"
        fault_events = [
            e
            for s in dw.telemetry.spans
            for e in s.events
            if e.name == "storage.fault"
        ]
        assert fault_events


class TestMetrics:
    def test_counters_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits", kind="a").inc()
        registry.counter("hits", kind="a").inc(2)
        registry.counter("hits", kind="b").inc()
        assert registry.value("hits", kind="a") == 3
        assert registry.value("hits", kind="b") == 1
        assert registry.values("hits") == {"hits{kind=a}": 3, "hits{kind=b}": 1}

    def test_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        registry.gauge("depth").add(-1)
        assert registry.value("depth") == 3

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        summary = h.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert abs(summary["p50"] - 50.5) < 1.5
        assert abs(summary["p95"] - 95.0) < 1.5
        assert abs(summary["p99"] - 99.0) < 1.5

    def test_snapshot_delta(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        before = registry.snapshot()
        registry.counter("c").inc(2)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["c"] == 2

    def test_storage_metrics_match_io_meter(self, dw, tsession):
        tsession.insert("t", ids(50))
        meter = dw.store.meter.snapshot()
        metrics = dw.telemetry.metrics
        assert metrics.value("storage.bytes_written") == meter.bytes_written
        assert metrics.value("storage.bytes_read") == meter.bytes_read
        total_requests = sum(
            metrics.values("storage.requests").values()
        )
        assert total_requests == meter.total_requests
        for op, count in meter.requests.items():
            assert metrics.value("storage.requests", op=op) == count

    def test_latency_never_double_booked(self, dw, tsession):
        tsession.insert("t", ids(50))
        metrics = dw.telemetry.metrics
        clock_booked = sum(
            v
            for k, v in metrics.values("storage.sim_latency_s").items()
            if "mode=clock" in k
        )
        timeline_booked = sum(
            v
            for k, v in metrics.values("storage.sim_latency_s").items()
            if "mode=node_timeline" in k
        )
        assert clock_booked > 0
        assert timeline_booked > 0
        # The clock only ever advanced by the clock-mode charges (plus task
        # makespans); the timeline-mode charges were modeled, not applied.
        assert clock_booked <= dw.clock.now + 1e-9


class TestExport:
    def test_chrome_trace_shape(self, dw, tsession):
        tsession.insert("t", ids(50))
        doc = dw.telemetry.export_chrome()
        events = doc["traceEvents"]
        x = [e for e in events if e["ph"] == "X"]
        assert x
        for event in x:
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "FE / coordinator" in names
        assert any(n.startswith("DCP node") for n in names)
        json.dumps(doc)  # must be serializable

    def test_jsonl_round_trip(self, dw, tsession):
        tsession.insert("t", ids(10))
        lines = spans_to_jsonl(dw.telemetry.spans).splitlines()
        assert len(lines) == len(dw.telemetry.spans)
        parsed = [json.loads(line) for line in lines]
        assert all("span_id" in p and "name" in p for p in parsed)

    def test_combined_trace_disjoint_pids(self, dw, tsession):
        tsession.insert("t", ids(10))
        other = traced_warehouse()
        s2 = other.session()
        s2.create_table(
            "u", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        s2.insert("u", ids(10))
        doc = combined_chrome_trace(
            [("a:", dw.telemetry.spans), ("b:", other.telemetry.spans)]
        )
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        a_pids = {e["pid"] for e in meta if e["args"]["name"].startswith("a:")}
        b_pids = {e["pid"] for e in meta if e["args"]["name"].startswith("b:")}
        assert a_pids and b_pids and not (a_pids & b_pids)


class TestDisabled:
    def test_no_spans_when_disabled(self, session, simple_table, warehouse):
        assert warehouse.telemetry.tracing is False
        assert warehouse.telemetry.spans == []
        assert warehouse.telemetry.current_span is None

    def test_fully_disabled_records_nothing(self):
        config = small_config()
        config.telemetry.metrics = False
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", ids(20))
        assert dw.telemetry.spans == []
        assert dw.telemetry.metrics.snapshot() == {}

    def test_span_cap_drops_not_grows(self):
        config = small_config()
        config.telemetry.enabled = True
        config.telemetry.max_spans = 5
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", ids(50))
        assert len(dw.telemetry.spans) == 5
        assert dw.telemetry.tracer.dropped > 0


class TestStoSpans:
    def test_background_jobs_traced(self, dw, tsession):
        for start in range(0, 60, 20):
            tsession.insert("t", ids(20, start=start))
        txn = dw.context.sqldb.begin()
        try:
            from repro.sqldb import system_tables as st

            tid = st.find_table_by_name(txn, "t")["table_id"]
        finally:
            txn.abort()
        dw.sto.run_compaction(tid, trigger="manual")
        dw.sto.run_checkpoint(tid)
        dw.clock.advance(10_000.0)
        dw.sto.run_gc()
        categories = [s for s in dw.telemetry.spans if s.category == "sto"]
        names = {s.name for s in categories}
        assert {"sto.compaction", "sto.checkpoint", "sto.gc"} <= names
        metrics = dw.telemetry.metrics
        assert sum(metrics.values("sto.compactions").values()) == 1
        assert metrics.value("sto.checkpoints") == 1
        assert metrics.value("sto.gc_runs") == 1

    def test_bus_events_mirrored(self, dw, tsession):
        tsession.insert("t", ids(10))
        metrics = dw.telemetry.metrics
        assert metrics.value("bus.events", topic="txn.committed") >= 1
        events = [
            e
            for s in dw.telemetry.spans
            for e in s.events
            if e.name == "event:txn.committed"
        ]
        assert events
