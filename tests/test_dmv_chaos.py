"""The sys.dm_* views across a crash/recover cycle agree with recovery."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.chaos import ChaosController, RecoveryManager, SimulatedCrash

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def batch(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


@pytest.fixture
def loaded(config):
    dw = Warehouse(config=config, auto_optimize=False)
    session = dw.session()
    session.create_table("t", SCHEMA, distribution_column="id")
    session.insert("t", batch(0, 100))
    return dw, session


def crash_at(dw, site, thunk):
    controller = ChaosController(seed=0).arm(site)
    with controller:
        with pytest.raises(SimulatedCrash):
            thunk()


def statuses(session):
    rows = session.sql("SELECT txid, status FROM sys.dm_transactions")
    return dict(zip((int(t) for t in rows["txid"]), rows["status"]))


class TestRecoveryHistoryView:
    def test_view_row_matches_recovery_report(self, loaded):
        dw, session = loaded
        crash_at(
            dw,
            "fe.commit.after_writesets",
            lambda: session.insert("t", batch(100, 50)),
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()

        probe = dw.session()
        history = probe.sql("SELECT * FROM sys.dm_recovery_history")
        assert len(history["recovery_id"]) == 1
        assert int(history["in_doubt_committed"][0]) == report.in_doubt_committed
        assert int(history["in_doubt_aborted"][0]) == report.in_doubt_aborted
        assert (
            int(history["staged_blocks_discarded"][0])
            == report.staged_blocks_discarded
        )
        assert (
            int(history["publishes_completed"][0]) == report.publishes_completed
        )
        assert report.in_doubt_aborted >= 1

    def test_each_pass_appends_one_row(self, loaded):
        dw, session = loaded
        crash_at(
            dw,
            "sqldb.commit.after_install",
            lambda: session.insert("t", batch(100, 50)),
        )
        RecoveryManager(dw.context, sto=dw.sto).recover()
        RecoveryManager(dw.context, sto=dw.sto).recover()  # idempotent rerun
        probe = dw.session()
        history = probe.sql(
            "SELECT recovery_id, in_doubt_committed "
            "FROM sys.dm_recovery_history ORDER BY recovery_id"
        )
        assert list(history["recovery_id"]) == [1, 2]
        assert int(history["in_doubt_committed"][0]) == 1
        assert int(history["in_doubt_committed"][1]) == 0  # nothing left


class TestTransactionsViewAfterCrash:
    def test_aborted_in_doubt_txn_never_shows_active(self, loaded):
        dw, session = loaded
        before = set(statuses(session))
        crash_at(
            dw,
            "fe.commit.after_writesets",
            lambda: session.insert("t", batch(100, 50)),
        )
        RecoveryManager(dw.context, sto=dw.sto).recover()

        after = statuses(dw.session())
        crashed = [txid for txid in after if txid not in before]
        assert len(crashed) == 1
        # The crashed FE never published a terminal event, but recovery
        # resolved the transaction — the view must not report it active.
        assert after[crashed[0]] == "scavenged"
        assert "active" not in after.values()

    def test_committed_in_doubt_txn_never_shows_active(self, loaded):
        dw, session = loaded
        before = set(statuses(session))
        crash_at(
            dw,
            "sqldb.commit.after_install",
            lambda: session.insert("t", batch(100, 50)),
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.in_doubt_committed == 1

        after = statuses(dw.session())
        crashed = [txid for txid in after if txid not in before]
        assert len(crashed) == 1
        assert after[crashed[0]] == "scavenged"
        assert "active" not in after.values()
        # Recovery finished the install: the write is durable.
        assert dw.session().table_snapshot("t").live_rows == 150
