"""Tests for the catalog engine: MVCC visibility, conflicts, isolation."""

import pytest

from repro.common.errors import (
    SerializationError,
    TransactionStateError,
    WriteConflictError,
)
from repro.sqldb import IsolationLevel, SqlDbEngine


@pytest.fixture
def engine():
    return SqlDbEngine()


class TestBasics:
    def test_read_your_own_writes(self, engine):
        txn = engine.begin()
        txn.put("T", (1,), {"v": 1})
        assert txn.get("T", (1,)) == {"v": 1}

    def test_uncommitted_invisible_to_others(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        b = engine.begin()
        assert b.get("T", (1,)) is None

    def test_committed_visible_to_new_txns(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        a.commit()
        assert engine.begin().get("T", (1,)) == {"v": 1}

    def test_delete_hides_row(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        a.commit()
        b = engine.begin()
        b.delete("T", (1,))
        assert b.get("T", (1,)) is None
        b.commit()
        assert engine.begin().get("T", (1,)) is None

    def test_abort_discards_writes(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        a.abort()
        assert engine.begin().get("T", (1,)) is None

    def test_read_only_commit_consumes_no_sequence(self, engine):
        before = engine.last_commit_seq
        txn = engine.begin()
        txn.get("T", (1,))
        assert txn.commit() is None
        assert engine.last_commit_seq == before

    def test_write_commit_returns_sequence(self, engine):
        a = engine.begin()
        a.put("T", (1,), {})
        seq1 = a.commit()
        b = engine.begin()
        b.put("T", (2,), {})
        assert b.commit() == seq1 + 1

    def test_operations_after_commit_rejected(self, engine):
        txn = engine.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.get("T", (1,))
        with pytest.raises(TransactionStateError):
            txn.put("T", (1,), {})

    def test_abort_after_commit_rejected(self, engine):
        txn = engine.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.abort()

    def test_abort_is_idempotent(self, engine):
        txn = engine.begin()
        txn.abort()
        txn.abort()

    def test_returned_rows_are_copies(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        a.commit()
        b = engine.begin()
        row = b.get("T", (1,))
        row["v"] = 999
        assert b.get("T", (1,)) == {"v": 1}


class TestSnapshotIsolation:
    def test_repeatable_reads(self, engine):
        setup = engine.begin()
        setup.put("T", (1,), {"v": "old"})
        setup.commit()
        reader = engine.begin()
        assert reader.get("T", (1,))["v"] == "old"
        writer = engine.begin()
        writer.put("T", (1,), {"v": "new"})
        writer.commit()
        assert reader.get("T", (1,))["v"] == "old"  # no non-repeatable read

    def test_no_phantoms_in_scan(self, engine):
        reader = engine.begin()
        assert list(reader.scan("T")) == []
        writer = engine.begin()
        writer.put("T", (1,), {"v": 1})
        writer.commit()
        assert list(reader.scan("T")) == []  # snapshot fixed at begin

    def test_no_dirty_reads(self, engine):
        writer = engine.begin()
        writer.put("T", (1,), {"v": 1})
        reader = engine.begin()
        assert reader.get("T", (1,)) is None

    def test_scan_sees_own_inserts(self, engine):
        txn = engine.begin()
        txn.put("T", (1,), {"v": 1})
        assert [r["v"] for r in txn.scan("T")] == [1]

    def test_scan_respects_own_deletes(self, engine):
        setup = engine.begin()
        setup.put("T", (1,), {"v": 1})
        setup.commit()
        txn = engine.begin()
        txn.delete("T", (1,))
        assert list(txn.scan("T")) == []

    def test_scan_predicate(self, engine):
        setup = engine.begin()
        for i in range(5):
            setup.put("T", (i,), {"v": i})
        setup.commit()
        txn = engine.begin()
        assert len(list(txn.scan("T", lambda r: r["v"] >= 3))) == 2


class TestWriteConflicts:
    def test_first_committer_wins(self, engine):
        setup = engine.begin()
        setup.put("T", (1,), {"v": 0})
        setup.commit()
        a = engine.begin()
        b = engine.begin()
        a.put("T", (1,), {"v": "a"})
        b.put("T", (1,), {"v": "b"})
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        assert engine.begin().get("T", (1,))["v"] == "a"

    def test_loser_is_aborted(self, engine):
        a = engine.begin()
        b = engine.begin()
        a.put("T", (1,), {})
        b.put("T", (1,), {})
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        with pytest.raises(TransactionStateError):
            b.get("T", (1,))

    def test_disjoint_writes_both_commit(self, engine):
        a = engine.begin()
        b = engine.begin()
        a.put("T", (1,), {})
        b.put("T", (2,), {})
        a.commit()
        b.commit()

    def test_sequential_writes_no_conflict(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        a.commit()
        b = engine.begin()  # begins after a committed
        b.put("T", (1,), {"v": 2})
        b.commit()

    def test_upsert_conflict(self, engine):
        a = engine.begin()
        b = engine.begin()
        a.upsert("W", (9,), lambda old: {"updated": (old or {}).get("updated", 0) + 1})
        b.upsert("W", (9,), lambda old: {"updated": (old or {}).get("updated", 0) + 1})
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()

    def test_blind_insert_conflict_on_same_key(self, engine):
        a = engine.begin()
        b = engine.begin()
        a.put("T", (7,), {"v": "a"})
        b.put("T", (7,), {"v": "b"})
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()


class TestRcsi:
    def test_reads_see_recent_commits(self, engine):
        reader = engine.begin(IsolationLevel.RCSI)
        writer = engine.begin()
        writer.put("T", (1,), {"v": 1})
        writer.commit()
        assert reader.get("T", (1,)) == {"v": 1}

    def test_statement_level_snapshot_advances(self, engine):
        reader = engine.begin(IsolationLevel.RCSI)
        assert reader.get("T", (1,)) is None
        writer = engine.begin()
        writer.put("T", (1,), {"v": 1})
        writer.commit()
        assert reader.get("T", (1,)) is not None


class TestSerializable:
    def test_read_write_overlap_rejected(self, engine):
        setup = engine.begin()
        setup.put("T", (1,), {"v": 0})
        setup.commit()
        a = engine.begin(IsolationLevel.SERIALIZABLE)
        assert a.get("T", (1,))["v"] == 0
        b = engine.begin()
        b.put("T", (1,), {"v": 1})
        b.commit()
        a.put("T", (2,), {"v": "derived"})
        with pytest.raises(SerializationError):
            a.commit()

    def test_phantom_protection_on_scans(self, engine):
        a = engine.begin(IsolationLevel.SERIALIZABLE)
        list(a.scan("T"))
        b = engine.begin()
        b.put("T", (1,), {})
        b.commit()
        a.put("Other", (1,), {})
        with pytest.raises(SerializationError):
            a.commit()

    def test_write_skew_prevented(self, engine):
        """The classic SI anomaly: serializable mode must reject it."""
        setup = engine.begin()
        setup.put("T", ("x",), {"v": 1})
        setup.put("T", ("y",), {"v": 1})
        setup.commit()
        a = engine.begin(IsolationLevel.SERIALIZABLE)
        b = engine.begin(IsolationLevel.SERIALIZABLE)
        # Each reads both rows, writes the other one.
        assert a.get("T", ("x",)) and a.get("T", ("y",))
        assert b.get("T", ("x",)) and b.get("T", ("y",))
        a.put("T", ("x",), {"v": 0})
        b.put("T", ("y",), {"v": 0})
        a.commit()
        with pytest.raises(SerializationError):
            b.commit()

    def test_write_skew_allowed_under_snapshot(self, engine):
        """Under plain SI, write skew commits — the documented trade-off."""
        setup = engine.begin()
        setup.put("T", ("x",), {"v": 1})
        setup.put("T", ("y",), {"v": 1})
        setup.commit()
        a = engine.begin()
        b = engine.begin()
        a.get("T", ("y",))
        b.get("T", ("x",))
        a.put("T", ("x",), {"v": 0})
        b.put("T", ("y",), {"v": 0})
        a.commit()
        b.commit()  # no error: SI permits this anomaly

    def test_non_overlapping_serializable_commits(self, engine):
        a = engine.begin(IsolationLevel.SERIALIZABLE)
        list(a.scan("A"))
        a.put("A", (1,), {})
        a.commit()


class TestEngineState:
    def test_active_transactions_tracked(self, engine):
        a = engine.begin()
        b = engine.begin()
        assert len(engine.active_transactions) == 2
        a.commit()
        assert len(engine.active_transactions) == 1
        b.abort()
        assert engine.active_transactions == []

    def test_min_active_begin_ts(self, engine):
        assert engine.min_active_begin_ts() is None
        engine.clock.advance(5.0)
        a = engine.begin()
        engine.clock.advance(5.0)
        engine.begin()
        assert engine.min_active_begin_ts() == a.begin_ts == 5.0

    def test_stats_counters(self, engine):
        a = engine.begin()
        a.put("T", (1,), {})
        a.commit()
        b = engine.begin()
        b.abort()
        assert engine.stats["committed"] == 1
        assert engine.stats["aborted"] == 1

    def test_dump_table_as_of(self, engine):
        a = engine.begin()
        a.put("T", (1,), {"v": 1})
        seq1 = a.commit()
        b = engine.begin()
        b.put("T", (2,), {"v": 2})
        b.commit()
        assert len(engine.dump_table("T")) == 2
        assert len(engine.dump_table("T", as_of_seq=seq1)) == 1

    def test_advance_commit_seq_past(self, engine):
        engine.advance_commit_seq_past(100)
        a = engine.begin()
        a.put("T", (1,), {})
        assert a.commit() > 100

    def test_pre_install_hook_receives_sequence(self, engine):
        captured = []
        txn = engine.begin()
        txn.put("T", (1,), {})
        txn.set_pre_install_hook(
            lambda seq: (captured.append(seq), txn.put("S", (seq,), {"seq": seq}))
        )
        commit_seq = txn.commit()
        assert captured == [commit_seq]
        assert engine.begin().get("S", (commit_seq,)) == {"seq": commit_seq}
