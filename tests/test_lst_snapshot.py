"""Tests for snapshot reconstruction and checkpoints."""

import pytest

from repro.common.errors import FileFormatError
from repro.lst import (
    AddDataFile,
    AddDeletionVector,
    Checkpoint,
    DataFileInfo,
    DeletionVectorInfo,
    RemoveDataFile,
    RemoveDeletionVector,
    TableSnapshot,
    replay,
)


def df(name, rows=10):
    return DataFileInfo(name=name, path=f"p/{name}", num_rows=rows,
                        size_bytes=rows * 8, distribution=0)


def dv(name, target, cardinality=2):
    return DeletionVectorInfo(name=name, path=f"p/{name}", target_file=target,
                              cardinality=cardinality, size_bytes=64)


class TestReplay:
    def test_empty_snapshot(self):
        snap = TableSnapshot()
        assert snap.sequence_id == 0
        assert snap.live_rows == 0

    def test_add_files(self):
        snap = TableSnapshot().apply_manifest(
            [AddDataFile(df("a", 5)), AddDataFile(df("b", 7))], 1, 0.0
        )
        assert snap.live_rows == 12
        assert snap.sequence_id == 1

    def test_apply_is_persistent(self):
        base = TableSnapshot()
        base.apply_manifest([AddDataFile(df("a"))], 1, 0.0)
        assert base.live_rows == 0  # original untouched

    def test_dv_reduces_live_rows(self):
        snap = replay([
            (1, 0.0, [AddDataFile(df("a", 10))]),
            (2, 1.0, [AddDeletionVector(dv("d", "a", cardinality=4))]),
        ])
        assert snap.live_rows == 6
        assert snap.dv_for("a").name == "d"

    def test_dv_replacement(self):
        snap = replay([
            (1, 0.0, [AddDataFile(df("a", 10)), AddDeletionVector(dv("d1", "a", 2))]),
            (2, 1.0, [RemoveDeletionVector(dv("d1", "a", 2)),
                      AddDeletionVector(dv("d2", "a", 5))]),
        ])
        assert snap.live_rows == 5
        assert snap.dv_for("a").name == "d2"

    def test_remove_file_creates_tombstone(self):
        snap = replay([
            (1, 0.0, [AddDataFile(df("a"))]),
            (2, 9.0, [RemoveDataFile(df("a"))]),
        ])
        assert snap.live_rows == 0
        assert len(snap.tombstones) == 1
        assert snap.tombstones[0].removed_at == 9.0
        assert snap.tombstones[0].removed_seq == 2

    def test_remove_file_retires_its_dv(self):
        snap = replay([
            (1, 0.0, [AddDataFile(df("a", 10)), AddDeletionVector(dv("d", "a"))]),
            (2, 1.0, [RemoveDataFile(df("a", 10))]),
        ])
        assert snap.dv_for("a") is None
        kinds = sorted(t.kind for t in snap.tombstones)
        assert kinds == ["data", "dv"]

    def test_duplicate_add_rejected(self):
        snap = TableSnapshot().apply_manifest([AddDataFile(df("a"))], 1, 0.0)
        with pytest.raises(FileFormatError, match="duplicate add"):
            snap.apply_manifest([AddDataFile(df("a"))], 2, 1.0)

    def test_remove_unknown_file_rejected(self):
        with pytest.raises(FileFormatError, match="unknown data file"):
            TableSnapshot().apply_manifest([RemoveDataFile(df("ghost"))], 1, 0.0)

    def test_dv_on_unknown_file_rejected(self):
        with pytest.raises(FileFormatError, match="unknown data file"):
            TableSnapshot().apply_manifest([AddDeletionVector(dv("d", "ghost"))], 1, 0.0)

    def test_double_dv_without_remove_rejected(self):
        snap = replay([(1, 0.0, [AddDataFile(df("a")), AddDeletionVector(dv("d1", "a"))])])
        with pytest.raises(FileFormatError, match="already has a DV"):
            snap.apply_manifest([AddDeletionVector(dv("d2", "a"))], 2, 1.0)

    def test_remove_wrong_dv_rejected(self):
        snap = replay([(1, 0.0, [AddDataFile(df("a")), AddDeletionVector(dv("d1", "a"))])])
        with pytest.raises(FileFormatError, match="unknown DV"):
            snap.apply_manifest([RemoveDeletionVector(dv("other", "a"))], 2, 1.0)

    def test_replay_skips_already_applied(self):
        base = replay([(1, 0.0, [AddDataFile(df("a"))])])
        snap = replay(
            [(1, 0.0, [AddDataFile(df("a"))]), (2, 1.0, [AddDataFile(df("b"))])],
            base=base,
        )
        assert set(snap.files) == {"a", "b"}

    def test_total_bytes(self):
        snap = replay([(1, 0.0, [AddDataFile(df("a", 10)), AddDataFile(df("b", 5))])])
        assert snap.total_bytes == 120


class TestCheckpointEquivalence:
    def manifests(self):
        return [
            (1, 0.0, [AddDataFile(df("a", 10))]),
            (2, 1.0, [AddDataFile(df("b", 20))]),
            (3, 2.0, [AddDeletionVector(dv("d", "a", 3))]),
            (4, 3.0, [RemoveDataFile(df("b", 20))]),
            (5, 4.0, [RemoveDeletionVector(dv("d", "a", 3)),
                      AddDeletionVector(dv("d2", "a", 5))]),
        ]

    @pytest.mark.parametrize("cut", [1, 2, 3, 4])
    def test_checkpoint_plus_tail_equals_full_replay(self, cut):
        manifests = self.manifests()
        full = replay(manifests)
        prefix = replay(manifests[:cut])
        checkpoint = Checkpoint.of(prefix, created_at=99.0)
        restored = Checkpoint.from_bytes(checkpoint.to_bytes()).snapshot
        resumed = replay(manifests[cut:], base=restored)
        assert resumed.files == full.files
        assert resumed.dvs == full.dvs
        assert resumed.sequence_id == full.sequence_id
        assert resumed.tombstones == full.tombstones

    def test_checkpoint_serialization_roundtrip(self):
        snap = replay(self.manifests())
        ckpt = Checkpoint.of(snap, created_at=12.5)
        parsed = Checkpoint.from_bytes(ckpt.to_bytes())
        assert parsed.sequence_id == 5
        assert parsed.created_at == 12.5
        assert parsed.snapshot.live_rows == snap.live_rows
