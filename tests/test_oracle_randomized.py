"""Randomized oracle tests: Polaris vs a plain in-memory reference model.

A seeded stream of random operations — inserts, deletes, updates, explicit
transactions with commits and rollbacks, compactions, checkpoints, GC,
cache invalidation — is applied both to a warehouse and to a trivial
in-memory model (a dict of rows).  After every step the visible table
contents must match the model exactly.  This is the strongest correctness
net in the suite: any divergence in snapshot reconstruction, DV merging,
manifest reconciliation or the commit protocol shows up as a mismatch.
"""

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, TableScan, Warehouse, and_
from tests.conftest import small_config


class Model:
    """The oracle: committed rows by id, plus a buffer per open txn."""

    def __init__(self):
        self.committed = {}  # id -> value
        self.pending = None  # id -> value while a txn is open

    def visible(self):
        return self.pending if self.pending is not None else self.committed

    def begin(self):
        self.pending = dict(self.committed)

    def commit(self):
        self.committed = self.pending
        self.pending = None

    def rollback(self):
        self.pending = None

    def insert(self, rows):
        self.visible().update(rows)

    def delete_lt(self, bound):
        view = self.visible()
        for key in [k for k in view if k < bound]:
            del view[key]

    def delete_range(self, lo, hi):
        view = self.visible()
        for key in [k for k in view if lo <= k < hi]:
            del view[key]

    def update_range(self, lo, hi, value):
        view = self.visible()
        for key in view:
            if lo <= key < hi:
                view[key] = value


def read_table(session):
    out = session.query(TableScan("t", ("id", "v")))
    return dict(zip(out["id"].tolist(), out["v"].tolist()))


def check(session, model):
    assert read_table(session) == model.visible()


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_randomized_against_oracle(seed, si_sanitizer):
    rng = np.random.default_rng(seed)
    config = small_config()
    config.txn.conflict_granularity = "file" if seed % 2 else "table"
    dw = Warehouse(config=config, auto_optimize=bool(seed % 2))
    si_sanitizer(dw)  # verify SI axioms over the whole run at teardown
    session = dw.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
        sort_column="id" if seed % 3 == 0 else None,
    )
    model = Model()
    next_id = 0
    in_txn = False

    for step in range(60):
        op = rng.integers(0, 10)
        if op <= 3:  # insert a batch
            n = int(rng.integers(1, 40))
            ids = np.arange(next_id, next_id + n, dtype=np.int64)
            values = np.round(rng.random(n), 3)
            next_id += n
            session.insert("t", {"id": ids, "v": values})
            model.insert(dict(zip(ids.tolist(), values.tolist())))
        elif op <= 5 and next_id:  # range delete
            lo = int(rng.integers(0, next_id))
            hi = lo + int(rng.integers(1, 30))
            session.delete(
                "t",
                and_(BinOp(">=", Col("id"), Lit(lo)), BinOp("<", Col("id"), Lit(hi))),
                prune=[("id", ">=", lo), ("id", "<", hi)],
            )
            model.delete_range(lo, hi)
        elif op == 6 and next_id:  # range update
            lo = int(rng.integers(0, next_id))
            hi = lo + int(rng.integers(1, 20))
            value = float(round(rng.random(), 3))
            session.update(
                "t",
                and_(BinOp(">=", Col("id"), Lit(lo)), BinOp("<", Col("id"), Lit(hi))),
                {"v": Lit(value)},
                prune=[("id", ">=", lo), ("id", "<", hi)],
            )
            model.update_range(lo, hi, value)
        elif op == 7:  # transaction boundary
            if in_txn:
                if rng.random() < 0.5:
                    session.commit()
                    model.commit()
                else:
                    session.rollback()
                    model.rollback()
                in_txn = False
            else:
                session.begin()
                model.begin()
                in_txn = True
        elif op == 8:  # background machinery must never change visible data
            choice = rng.integers(0, 3)
            if choice == 0:
                dw.sto.run_compaction(1001)
            elif choice == 1:
                dw.sto.run_checkpoint(1001)
            else:
                dw.context.cache.invalidate()
        else:  # garbage collection (only safe without an open txn's view)
            dw.sto.run_gc()
        check(session, model)

    if in_txn:
        session.commit()
        model.commit()
    check(session, model)

    # End-of-run invariants: a fresh session agrees, and so does a cold
    # rebuild after losing every cache.
    fresh = dw.session()
    dw.context.cache.invalidate()
    assert read_table(fresh) == model.committed


@pytest.mark.parametrize("seed", [10, 11])
def test_randomized_with_failures_against_oracle(seed, si_sanitizer):
    """Same oracle run with task fault injection: retries must hide faults."""
    rng = np.random.default_rng(seed)
    config = small_config()
    config.dcp.task_failure_rate = 0.1
    config.dcp.max_task_retries = 8
    dw = Warehouse(config=config, auto_optimize=False)
    si_sanitizer(dw)
    session = dw.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
    )
    model = Model()
    next_id = 0
    for step in range(25):
        op = rng.integers(0, 3)
        if op == 0 or not next_id:
            n = int(rng.integers(1, 30))
            ids = np.arange(next_id, next_id + n, dtype=np.int64)
            values = np.round(rng.random(n), 3)
            next_id += n
            session.insert("t", {"id": ids, "v": values})
            model.insert(dict(zip(ids.tolist(), values.tolist())))
        elif op == 1:
            lo = int(rng.integers(0, next_id))
            session.delete("t", BinOp("<", Col("id"), Lit(lo)))
            model.delete_lt(lo)
        else:
            lo = int(rng.integers(0, next_id))
            session.update(
                "t", BinOp("<", Col("id"), Lit(lo)), {"v": Lit(0.5)}
            )
            model.update_range(-1, lo, 0.5)
        check(session, model)
    report = dw.sto.run_gc()  # orphans of failed attempts are reclaimable
    check(session, model)
