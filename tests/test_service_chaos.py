"""Gateway crash recovery: every service.* site, scavenge reconciliation."""

import pytest

from repro import Warehouse
from repro.chaos.crashpoints import CRASHPOINTS
from repro.chaos.harness import chaos_config, run_gateway_site, run_site
from repro.chaos.recovery import RecoveryManager
from repro.service import Gateway

SERVICE_SITES = sorted(s for s in CRASHPOINTS if s.startswith("service."))


def test_all_three_gateway_sites_are_registered():
    assert set(SERVICE_SITES) == {
        "service.admit.after_enqueue",
        "service.dispatch.before_execute",
        "service.dispatch.after_execute",
    }


@pytest.mark.parametrize("site", SERVICE_SITES)
def test_crash_mid_queue_recovers_clean(site):
    result = run_gateway_site(site, seed=0)
    assert result.crashed_at_step == "gateway", f"{site} never fired"
    assert result.ok, "\n".join(result.problems)
    # The crash left real mid-queue state for recovery to reconcile.
    assert result.recovery.gateway_requests_scavenged >= 1
    assert result.counts["ingest"] >= 50  # the post-recovery probe landed


@pytest.mark.parametrize("site", SERVICE_SITES)
def test_run_site_routes_service_sites_to_the_gateway_harness(site):
    summary = run_site(site, seed=0).summary()
    assert summary == run_gateway_site(site, seed=0).summary()
    assert f"/g" in summary


def test_gateway_site_summary_is_deterministic():
    site = "service.dispatch.before_execute"
    assert run_gateway_site(site, seed=3).summary() == run_gateway_site(
        site, seed=3
    ).summary()


def test_recovery_scavenges_queued_requests_without_a_crash():
    """Direct scavenge: requests admitted but never dispatched reconcile."""
    dw = Warehouse(config=chaos_config(0), auto_optimize=False)
    gateway = Gateway(dw.context)
    queued = [
        gateway.submit("tenant_a", "transactional", lambda s: None)
        for __ in range(3)
    ]
    report = RecoveryManager(dw.context, sto=dw.sto, strict=False).recover()
    assert report.gateway_requests_scavenged == 3
    assert [r.status for r in queued] == ["scavenged"] * 3
    assert not gateway.requests_with_status("queued", "running")
    rows = dw.session().sql("SELECT status FROM sys.dm_requests")
    assert list(rows["status"]) == ["scavenged"] * 3
    # The gateway serves again after recovery with a fresh dispatcher.
    probe = gateway.submit("tenant_a", "transactional", lambda s: 42)
    gateway.run()
    assert probe.status == "completed"
    assert probe.result == 42


def test_recovery_scavenges_with_finished_ledger_at_cap():
    """Regression: recovery after a long-lived gateway filled its ledger.

    With ``finished_history_cap`` already reached, the first scavenged
    request evicts an old finished record; iterating the live request
    dict used to raise ``RuntimeError: dictionary changed size during
    iteration`` and abort recovery mid-pass.
    """
    config = chaos_config(0)
    config.service.finished_history_cap = 2
    dw = Warehouse(config=config, auto_optimize=False)
    gateway = Gateway(dw.context)
    for __ in range(3):
        gateway.submit("tenant_a", "transactional", lambda s: None)
    gateway.run()  # three completions fill the two-record ledger
    queued = [
        gateway.submit("tenant_a", "transactional", lambda s: None)
        for __ in range(3)
    ]
    report = RecoveryManager(dw.context, sto=dw.sto, strict=False).recover()
    assert report.gateway_requests_scavenged == 3
    assert [r.status for r in queued] == ["scavenged"] * 3
    assert not gateway.requests_with_status("queued", "running")
    assert gateway.finished_count("scavenged") == 3
    # The view reflects only retained records, none of them in flight.
    rows = dw.session().sql("SELECT status FROM sys.dm_requests")
    assert len(rows["status"]) == 2
    assert all(s not in ("queued", "running") for s in rows["status"])


def test_recovery_without_gateway_reports_zero():
    dw = Warehouse(config=chaos_config(0), auto_optimize=False)
    report = RecoveryManager(dw.context, sto=dw.sto, strict=False).recover()
    assert report.gateway_requests_scavenged == 0
    assert report.clean
