"""Tests for checkpoint retention in GC and periodic GC scheduling."""

import numpy as np
import pytest

from repro import Aggregate, Col, Schema, TableScan, Warehouse
from repro.sqldb import system_tables as st
from tests.conftest import small_config


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


def count():
    return Aggregate(TableScan("t", ("id",)), (), {"n": ("count", None)})


@pytest.fixture
def dw():
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    session = warehouse.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
    )
    return warehouse


def make_checkpoints(dw, count_):
    session = dw.session()
    created = []
    for i in range(count_):
        session.insert("t", ids(5, start=i * 10))
        created.append(dw.sto.run_checkpoint(1001))
    return created


class TestCheckpointRetention:
    def test_superseded_old_checkpoints_collected(self, dw):
        checkpoints = make_checkpoints(dw, 3)
        dw.clock.advance(dw.config.sto.retention_period_s + 1)
        report = dw.sto.run_gc()
        deleted = set(report.deleted_expired)
        assert checkpoints[0].path in deleted
        assert checkpoints[1].path in deleted
        assert checkpoints[2].path not in deleted  # newest stays

    def test_checkpoint_rows_removed_with_blobs(self, dw):
        make_checkpoints(dw, 3)
        dw.clock.advance(dw.config.sto.retention_period_s + 1)
        dw.sto.run_gc()
        txn = dw.context.sqldb.begin()
        rows = st.checkpoints_for_table(txn, 1001)
        txn.abort()
        assert len(rows) == 1

    def test_recent_checkpoints_retained(self, dw):
        checkpoints = make_checkpoints(dw, 3)
        report = dw.sto.run_gc()  # no time has passed
        deleted = set(report.deleted_expired)
        assert not deleted.intersection(c.path for c in checkpoints)

    def test_table_readable_after_checkpoint_gc(self, dw):
        make_checkpoints(dw, 4)
        dw.clock.advance(dw.config.sto.retention_period_s + 1)
        dw.sto.run_gc()
        dw.context.cache.invalidate()
        assert dw.session().query(count())["n"][0] == 20


class TestPeriodicGc:
    def test_gc_fires_on_clock_advance(self, dw):
        dw.sto.enabled = True
        session = dw.session()
        # An aborted transaction leaves orphans behind.
        session.begin()
        session.insert("t", ids(10))
        private = session._txn.private_file_paths()
        session.rollback()
        dw.sto.schedule_periodic_gc(interval_s=100.0)
        assert not dw.sto.gc_reports
        dw.clock.advance(101.0)
        assert len(dw.sto.gc_reports) == 1
        assert not any(dw.store.exists(p) for p in private)

    def test_gc_rearms_each_interval(self, dw):
        dw.sto.enabled = True
        dw.sto.schedule_periodic_gc(interval_s=50.0)
        dw.clock.advance(51.0)
        dw.clock.advance(50.0)
        dw.clock.advance(50.0)
        assert len(dw.sto.gc_reports) == 3

    def test_disabled_sto_skips_but_keeps_schedule(self, dw):
        dw.sto.enabled = False
        dw.sto.schedule_periodic_gc(interval_s=10.0)
        dw.clock.advance(11.0)
        assert dw.sto.gc_reports == []
        dw.sto.enabled = True
        dw.clock.advance(10.0)
        assert len(dw.sto.gc_reports) == 1

    def test_default_interval_from_retention(self, dw):
        dw.sto.enabled = True
        dw.sto.schedule_periodic_gc()
        dw.clock.advance(dw.config.sto.retention_period_s / 2 + 1)
        assert len(dw.sto.gc_reports) == 1
