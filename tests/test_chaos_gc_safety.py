"""GC-under-crash safety: a crashed and re-run GC never eats live data."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.chaos import ChaosController, RecoveryManager, SimulatedCrash
from repro.engine.expressions import BinOp, Col, Lit
from repro.sqldb import system_tables as catalog

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def batch(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


@pytest.fixture
def aged(config):
    """A warehouse whose table has live files, DVs, and GC-eligible garbage."""
    dw = Warehouse(config=config, auto_optimize=False)
    session = dw.session()
    table_id = session.create_table("t", SCHEMA, distribution_column="id")
    session.insert("t", batch(0, 200))
    session.delete("t", BinOp("<", Col("id"), Lit(20)))
    dw.sto.run_compaction(table_id)  # removed files become tombstones
    dw.sto.run_checkpoint(table_id)
    # Age everything past retention so tombstones and stale metadata are
    # GC-eligible, then add fresh (well within retention) state on top.
    dw.clock.advance(config.sto.retention_period_s + 60.0)
    session.insert("t", batch(1000, 50))
    return dw, session, table_id


def live_paths(dw, table_id):
    """The latest snapshot's data/DV file paths plus its anchor manifest."""
    txn = dw.context.sqldb.begin()
    try:
        rows = catalog.manifests_for_table(txn, table_id)
    finally:
        txn.abort()
    snapshot = dw.context.cache.get(table_id, rows[-1]["sequence_id"])
    paths = {info.path for info in snapshot.files.values()}
    paths.update(info.path for info in snapshot.dvs.values())
    paths.add(rows[-1]["manifest_path"])
    return paths, snapshot.live_rows


class TestGcCrashSafety:
    def test_gc_crashed_mid_scan_then_rerun_spares_live_files(self, aged):
        dw, session, table_id = aged
        protected, rows_before = live_paths(dw, table_id)

        controller = ChaosController(seed=0).arm("sto.gc.mid_delete", hits=2)
        with controller:
            with pytest.raises(SimulatedCrash):
                dw.sto.run_gc()
        # One blob was physically deleted, the second delete crashed.
        assert controller.hits["sto.gc.mid_delete"] == 2

        RecoveryManager(dw.context, sto=dw.sto).recover()
        report = dw.sto.run_gc()
        deleted = set(report.deleted_expired) | set(report.deleted_orphans)
        assert not deleted & protected
        for path in protected:
            assert dw.store.exists(path), path
        assert session.table_snapshot("t").live_rows == rows_before

    def test_gc_crashed_before_cleanup_commit_loses_no_metadata(self, aged):
        dw, session, table_id = aged
        __, rows_before = live_paths(dw, table_id)
        controller = ChaosController(seed=0).arm("sto.gc.before_catalog_cleanup")
        with controller:
            with pytest.raises(SimulatedCrash):
                dw.sto.run_gc()
        # The truncation transaction never committed: every catalog row
        # still resolves to a blob and the snapshot is intact.
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert not report.missing_manifests
        assert session.table_snapshot("t").live_rows == rows_before
        # The re-run completes the interrupted cleanup.
        dw.sto.run_gc()
        assert session.table_snapshot("t").live_rows == rows_before

    def test_rerun_gc_converges_to_zero_orphans(self, aged):
        dw, session, table_id = aged
        controller = ChaosController(seed=0).arm("sto.gc.mid_delete")
        with controller:
            with pytest.raises(SimulatedCrash):
                dw.sto.run_gc()
        RecoveryManager(dw.context, sto=dw.sto).recover()
        dw.sto.run_gc()
        second = dw.sto.run_gc()
        assert second.deleted_orphans == []
        assert second.retained_recent == []
