"""Tests for the BE snapshot cache: hits, incremental extension, eviction."""

from repro.lst import AddDataFile, DataFileInfo, SnapshotCache, TableSnapshot


def df(name, rows=10):
    return DataFileInfo(name=name, path=f"p/{name}", num_rows=rows,
                        size_bytes=80, distribution=0)


class FakeLog:
    """An in-memory manifest log with call accounting."""

    def __init__(self, per_table):
        self.per_table = per_table  # table_id -> [(seq, ts, actions)]
        self.load_calls = 0
        self.checkpoint_calls = 0
        self.checkpoints = {}  # table_id -> TableSnapshot

    def load_manifests(self, table_id, lo, hi):
        self.load_calls += 1
        return [
            (seq, ts, actions)
            for seq, ts, actions in self.per_table.get(table_id, [])
            if lo < seq <= hi
        ]

    def load_checkpoint(self, table_id, max_seq):
        self.checkpoint_calls += 1
        snap = self.checkpoints.get(table_id)
        if snap is not None and snap.sequence_id <= max_seq:
            return snap
        return None

    def cache(self, **kwargs):
        return SnapshotCache(self.load_manifests, self.load_checkpoint, **kwargs)


def three_manifest_log():
    return FakeLog({
        1: [
            (1, 0.0, [AddDataFile(df("a"))]),
            (2, 1.0, [AddDataFile(df("b"))]),
            (3, 2.0, [AddDataFile(df("c"))]),
        ]
    })


def test_cold_get_replays_from_empty():
    log = three_manifest_log()
    cache = log.cache()
    snap = cache.get(1, 3)
    assert set(snap.files) == {"a", "b", "c"}
    assert cache.stats.misses == 1
    assert cache.stats.manifests_replayed == 3


def test_exact_hit():
    log = three_manifest_log()
    cache = log.cache()
    cache.get(1, 3)
    cache.get(1, 3)
    assert cache.stats.hits == 1
    assert log.load_calls == 1


def test_incremental_extension():
    log = three_manifest_log()
    cache = log.cache()
    cache.get(1, 1)
    cache.get(1, 3)
    assert cache.stats.incremental_extensions == 1
    # The second get replays only manifests 2 and 3.
    assert cache.stats.manifests_replayed == 3


def test_older_than_cached_falls_back():
    log = three_manifest_log()
    cache = log.cache()
    cache.get(1, 3)
    snap = cache.get(1, 1)
    assert set(snap.files) == {"a"}


def test_checkpoint_used_when_available():
    log = three_manifest_log()
    prefix = TableSnapshot().apply_manifest([AddDataFile(df("a"))], 1, 0.0)
    prefix = prefix.apply_manifest([AddDataFile(df("b"))], 2, 1.0)
    log.checkpoints[1] = prefix
    cache = log.cache()
    snap = cache.get(1, 3)
    assert set(snap.files) == {"a", "b", "c"}
    assert cache.stats.manifests_replayed == 1  # only the tail


def test_sequence_between_manifests():
    """A snapshot sequence with no manifest for this table is fine."""
    log = three_manifest_log()
    cache = log.cache()
    snap = cache.get(1, 2)
    assert set(snap.files) == {"a", "b"}
    again = cache.get(1, 2)
    assert set(again.files) == {"a", "b"}


def test_eviction_keeps_newest():
    log = three_manifest_log()
    cache = log.cache(max_versions_per_table=1)
    cache.get(1, 1)
    cache.get(1, 2)
    cache.get(1, 3)
    cache.get(1, 3)
    assert cache.stats.hits == 1


def test_invalidate_all():
    log = three_manifest_log()
    cache = log.cache()
    cache.get(1, 3)
    cache.invalidate()
    cache.get(1, 3)
    assert cache.stats.misses == 2


def test_invalidate_one_table():
    log = FakeLog({
        1: [(1, 0.0, [AddDataFile(df("a"))])],
        2: [(2, 0.0, [AddDataFile(df("x"))])],
    })
    cache = log.cache()
    cache.get(1, 1)
    cache.get(2, 2)
    cache.invalidate(table_id=1)
    cache.get(2, 2)
    assert cache.stats.hits == 1  # table 2 still cached


def test_unknown_table_yields_empty_snapshot():
    cache = FakeLog({}).cache()
    snap = cache.get(99, 5)
    assert snap.files == {}
