"""Tests for the columnar file format: schema, roundtrips, pruning."""

import numpy as np
import pytest

from repro.common.errors import FileFormatError, SchemaMismatchError
from repro.pagefile import PageFileReader, Schema, write_page_file
from repro.pagefile.file_format import read_footer
from repro.pagefile.schema import Field
from repro.pagefile.stats import ColumnStats, compute_stats


def make_columns(n=100):
    return {
        "id": np.arange(n, dtype=np.int64),
        "name": np.array([f"row-{i:04d}" for i in range(n)], dtype=object),
        "score": np.linspace(0.0, 1.0, n),
        "flag": np.arange(n) % 2 == 0,
    }


SCHEMA = Schema.of(
    ("id", "int64"), ("name", "string"), ("score", "float64"), ("flag", "bool")
)


class TestSchema:
    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaMismatchError):
            Field("x", "decimal")

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaMismatchError):
            Schema.of(("a", "int64"), ("a", "string"))

    def test_field_lookup(self):
        assert SCHEMA.field("id").type == "int64"
        with pytest.raises(SchemaMismatchError):
            SCHEMA.field("missing")

    def test_contains_and_len(self):
        assert "id" in SCHEMA
        assert "zzz" not in SCHEMA
        assert len(SCHEMA) == 4

    def test_dict_roundtrip(self):
        assert Schema.from_dict(SCHEMA.to_dict()) == SCHEMA

    def test_validate_columns_checks_names(self):
        with pytest.raises(SchemaMismatchError):
            SCHEMA.validate_columns({"id": np.arange(3)})

    def test_validate_columns_checks_lengths(self):
        cols = make_columns(10)
        cols["id"] = np.arange(5)
        with pytest.raises(SchemaMismatchError, match="ragged"):
            SCHEMA.validate_columns(cols)

    def test_validate_returns_row_count(self):
        assert SCHEMA.validate_columns(make_columns(17)) == 17


class TestRoundtrip:
    def test_full_roundtrip(self):
        data = write_page_file(SCHEMA, make_columns(100), row_group_size=32)
        reader = PageFileReader(data)
        out = reader.read()
        np.testing.assert_array_equal(out["id"], np.arange(100))
        assert out["name"][0] == "row-0000"
        np.testing.assert_allclose(out["score"], np.linspace(0.0, 1.0, 100))
        np.testing.assert_array_equal(out["flag"], np.arange(100) % 2 == 0)

    def test_empty_file(self):
        data = write_page_file(SCHEMA, make_columns(0))
        reader = PageFileReader(data)
        assert reader.num_rows == 0
        assert len(reader.read()["id"]) == 0

    def test_single_row(self):
        data = write_page_file(SCHEMA, make_columns(1))
        assert PageFileReader(data).num_rows == 1

    def test_row_group_boundaries(self):
        for n in (31, 32, 33, 64, 65):
            data = write_page_file(SCHEMA, make_columns(n), row_group_size=32)
            reader = PageFileReader(data)
            assert reader.num_rows == n
            assert len(reader.read()["id"]) == n

    def test_projection(self):
        data = write_page_file(SCHEMA, make_columns(10))
        out = PageFileReader(data).read(columns=["score"])
        assert list(out) == ["score"]

    def test_unicode_strings(self):
        schema = Schema.of(("s", "string"))
        values = np.array(["héllo", "wörld", "日本語", ""], dtype=object)
        data = write_page_file(schema, {"s": values})
        out = PageFileReader(data).read()
        assert list(out["s"]) == list(values)

    def test_bad_magic_rejected(self):
        with pytest.raises(FileFormatError):
            read_footer(b"not a page file at all")

    def test_truncated_rejected(self):
        data = write_page_file(SCHEMA, make_columns(10))
        with pytest.raises(FileFormatError):
            read_footer(data[:8])

    def test_rejects_bad_row_group_size(self):
        with pytest.raises(ValueError):
            write_page_file(SCHEMA, make_columns(5), row_group_size=0)


class TestStats:
    def test_minmax_numeric(self):
        stats = compute_stats(Field("x", "int64"), np.array([5, 1, 9]))
        assert stats.minimum == 1 and stats.maximum == 9

    def test_minmax_string(self):
        stats = compute_stats(
            Field("s", "string"), np.array(["b", "a", "c"], dtype=object)
        )
        assert stats.minimum == "a" and stats.maximum == "c"

    def test_empty_chunk(self):
        stats = compute_stats(Field("x", "int64"), np.array([], dtype=np.int64))
        assert stats.minimum is None
        assert stats.may_contain("==", 42)

    @pytest.mark.parametrize(
        "op,lit,expected",
        [
            ("==", 5, True), ("==", 11, False), ("==", 0, False),
            ("<", 2, True), ("<", 1, False),
            ("<=", 1, True), ("<=", 0, False),
            (">", 9, True), (">", 10, False),
            (">=", 10, True), (">=", 11, False),
        ],
    )
    def test_may_contain(self, op, lit, expected):
        stats = ColumnStats(minimum=1, maximum=10)
        assert stats.may_contain(op, lit) is expected

    def test_unknown_op_is_conservative(self):
        assert ColumnStats(1, 10).may_contain("!=", 5)


class TestPruning:
    def test_pruning_skips_row_groups(self):
        data = write_page_file(SCHEMA, make_columns(100), row_group_size=10)
        out = PageFileReader(data).read(columns=["id"], prune=[("id", ">", 89)])
        np.testing.assert_array_equal(out["id"], np.arange(90, 100))

    def test_pruning_never_loses_matches(self):
        data = write_page_file(SCHEMA, make_columns(100), row_group_size=7)
        out = PageFileReader(data).read(columns=["id"], prune=[("id", "==", 50)])
        assert 50 in out["id"]

    def test_pruning_on_missing_column_is_ignored(self):
        data = write_page_file(SCHEMA, make_columns(20), row_group_size=5)
        out = PageFileReader(data).read(columns=["id"], prune=[("ghost", ">", 3)])
        assert len(out["id"]) == 20
