"""Tests for deletion vectors and merge-on-read."""

import numpy as np
import pytest

from repro.common.errors import FileFormatError
from repro.pagefile import DeletionVector, PageFileReader, Schema, write_page_file


class TestDeletionVector:
    def test_empty(self):
        dv = DeletionVector()
        assert dv.cardinality == 0
        assert not dv.contains(0)

    def test_positions_sorted_and_deduped(self):
        dv = DeletionVector([5, 1, 5, 3])
        assert list(dv.positions) == [1, 3, 5]
        assert dv.cardinality == 3

    def test_negative_positions_rejected(self):
        with pytest.raises(ValueError):
            DeletionVector([-1])

    def test_contains(self):
        dv = DeletionVector([2, 4])
        assert dv.contains(2)
        assert not dv.contains(3)
        assert not dv.contains(100)

    def test_positions_in_range(self):
        dv = DeletionVector([1, 5, 9, 15])
        np.testing.assert_array_equal(dv.positions_in_range(4, 10), [5, 9])
        assert len(dv.positions_in_range(20, 30)) == 0

    def test_union(self):
        merged = DeletionVector([1, 2]).union(DeletionVector([2, 3]))
        assert list(merged.positions) == [1, 2, 3]

    def test_union_with_empty(self):
        dv = DeletionVector([7])
        assert dv.union(DeletionVector()) == dv

    def test_serialization_roundtrip(self):
        dv = DeletionVector([0, 10, 100, 100000])
        assert DeletionVector.from_bytes(dv.to_bytes()) == dv

    def test_empty_roundtrip(self):
        dv = DeletionVector()
        assert DeletionVector.from_bytes(dv.to_bytes()) == dv

    def test_bad_magic(self):
        with pytest.raises(FileFormatError):
            DeletionVector.from_bytes(b"XXXXxxxx")

    def test_equality(self):
        assert DeletionVector([1, 2]) == DeletionVector([2, 1])
        assert DeletionVector([1]) != DeletionVector([2])

    def test_iteration(self):
        assert list(DeletionVector([3, 1])) == [1, 3]


class TestMergeOnRead:
    def setup_method(self):
        self.schema = Schema.of(("id", "int64"))
        self.data = write_page_file(
            self.schema, {"id": np.arange(20, dtype=np.int64)}, row_group_size=5
        )

    def test_deleted_rows_filtered(self):
        reader = PageFileReader(self.data)
        out = reader.read(deletion_vector=DeletionVector([0, 10, 19]))
        assert len(out["id"]) == 17
        assert 0 not in out["id"] and 10 not in out["id"] and 19 not in out["id"]

    def test_positions_survive_filtering(self):
        reader = PageFileReader(self.data)
        out = reader.read(deletion_vector=DeletionVector([3]), with_positions=True)
        np.testing.assert_array_equal(out["id"], out["__pos__"])

    def test_whole_row_group_deleted(self):
        reader = PageFileReader(self.data)
        out = reader.read(deletion_vector=DeletionVector(range(5)))
        assert len(out["id"]) == 15
        assert out["id"].min() == 5

    def test_all_rows_deleted(self):
        reader = PageFileReader(self.data)
        out = reader.read(deletion_vector=DeletionVector(range(20)))
        assert len(out["id"]) == 0

    def test_live_row_count(self):
        reader = PageFileReader(self.data)
        assert reader.live_row_count(None) == 20
        assert reader.live_row_count(DeletionVector([1, 2])) == 18
