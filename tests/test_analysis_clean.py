"""Tier-1 gate: the source tree is lint-clean under repro.analysis.

Runs the full rule set (strict mode, so stale suppressions fail too) over
``src/repro`` exactly as CI does with ``python -m repro.analysis --strict``
— a violation anywhere in the package fails the suite, keeping the
determinism/immutability/commit-lock disciplines enforced, not aspirational.
"""

from pathlib import Path

import repro
from repro.analysis import format_findings, lint_paths
from repro.analysis.__main__ import main


PACKAGE_ROOT = Path(repro.__file__).parent


def test_source_tree_is_lint_clean_strict():
    findings = lint_paths([PACKAGE_ROOT], strict=True)
    assert not findings, (
        "repro.analysis found violations in src/repro:\n"
        + format_findings(findings)
    )


def test_cli_strict_exits_zero_on_tree(capsys):
    assert main(["--strict", str(PACKAGE_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Doc."""\nimport time\n\n\ndef stamp():\n'
        '    """Doc."""\n    return time.time()\n',
        encoding="utf-8",
    )
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "wallclock-purity" in out


def test_cli_rejects_unknown_rule(capsys):
    assert main(["--rules", "nope", str(PACKAGE_ROOT)]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "wallclock-purity" in out and "docstring-coverage" in out
