"""Tier-1 gate: the source tree is lint-clean under repro.analysis.

Runs the full rule set (strict mode, so stale suppressions fail too) over
``src/repro`` exactly as CI does with ``python -m repro.analysis --strict``
— a violation anywhere in the package fails the suite, keeping the
determinism/immutability/commit-lock disciplines enforced, not aspirational.
"""

import time
from pathlib import Path

import repro
from repro.analysis import format_findings, lint_paths
from repro.analysis.__main__ import main


PACKAGE_ROOT = Path(repro.__file__).parent
BASELINE = Path(__file__).resolve().parent.parent / "analysis-baseline.json"


def test_source_tree_is_lint_clean_strict():
    findings = lint_paths([PACKAGE_ROOT], strict=True)
    assert not findings, (
        "repro.analysis found violations in src/repro:\n"
        + format_findings(findings)
    )


def test_cli_strict_exits_zero_on_tree(capsys):
    assert main(["--strict", str(PACKAGE_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Doc."""\nimport time\n\n\ndef stamp():\n'
        '    """Doc."""\n    return time.time()\n',
        encoding="utf-8",
    )
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "wallclock-purity" in out


def test_deep_analysis_clean_against_baseline_and_fast(capsys):
    """`--deep --strict` exits 0 against the committed baseline, in budget.

    The wall-clock timer is the CI budget for the analyzer itself (the
    analyses model simulated time; they do not consume it), so reading
    the host clock here is the point, not a determinism leak.
    """
    start = time.monotonic()
    assert main(
        ["--deep", "--strict", "--baseline", str(BASELINE), str(PACKAGE_ROOT)]
    ) == 0
    elapsed = time.monotonic() - start
    out = capsys.readouterr().out
    assert "lint+deep" in out
    assert elapsed < 30.0, f"deep analysis took {elapsed:.1f}s (budget 30s)"


def test_cli_rejects_unknown_rule(capsys):
    assert main(["--rules", "nope", str(PACKAGE_ROOT)]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "wallclock-purity" in out and "docstring-coverage" in out
