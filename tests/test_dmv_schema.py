"""Schema-stability contract for every ``sys.dm_*`` view.

The ``dmv-schema-discipline`` lint rule statically verifies the VIEWS
table's *shape* (literal names, literal (column, type) pairs, resolvable
providers).  This module is the runtime half it requires: an independent
literal copy of every view's schema, diffed against the live catalog —
any column added, removed, retyped, or reordered fails here first, which
is the point: DMV schemas are a public SQL surface and must change
deliberately, together with this table and ``docs/OBSERVABILITY.md``.
"""

import numpy as np
import pytest

from repro import PolarisConfig, Warehouse
from repro.telemetry.introspection import Introspector

#: Independent expected-schema table: view -> ordered (column, type).
#: Deliberately duplicates the VIEWS declarations — drift detection only
#: works when the two copies change in the same commit.
EXPECTED_SCHEMAS = {
    "sys.dm_transactions": (
        ("txid", "int64"),
        ("status", "string"),
        ("isolation", "string"),
        ("begin_seq", "int64"),
        ("begin_ts", "float64"),
        ("commit_seq", "int64"),
        ("units", "int64"),
        ("tables", "string"),
        ("rows_inserted", "int64"),
        ("rows_deleted", "int64"),
        ("reason", "string"),
    ),
    "sys.dm_storage_health": (
        ("table_id", "int64"),
        ("table_name", "string"),
        ("state", "string"),
        ("file_count", "int64"),
        ("total_rows", "int64"),
        ("deleted_rows", "int64"),
        ("low_quality_files", "int64"),
        ("low_quality_fraction", "float64"),
        ("dv_count", "int64"),
        ("pending_compaction", "bool"),
    ),
    "sys.dm_storage_integrity": (
        ("table_id", "int64"),
        ("table_name", "string"),
        ("path", "string"),
        ("kind", "string"),
        ("problem", "string"),
        ("action", "string"),
        ("quarantine_path", "string"),
        ("at", "float64"),
    ),
    "sys.dm_checkpoints": (
        ("table_id", "int64"),
        ("table_name", "string"),
        ("sequence_id", "int64"),
        ("path", "string"),
        ("created_at", "float64"),
    ),
    "sys.dm_store_operations": (
        ("operation", "string"),
        ("requests", "int64"),
        ("faults", "int64"),
        ("latency_count", "int64"),
        ("latency_mean_s", "float64"),
        ("latency_p50_s", "float64"),
        ("latency_p95_s", "float64"),
        ("latency_p99_s", "float64"),
        ("latency_max_s", "float64"),
    ),
    "sys.dm_recovery_history": (
        ("recovery_id", "int64"),
        ("at", "float64"),
        ("in_doubt_committed", "int64"),
        ("in_doubt_aborted", "int64"),
        ("staged_blocks_discarded", "int64"),
        ("publishes_completed", "int64"),
    ),
    "sys.dm_sessions": (
        ("session_id", "int64"),
        ("tenant", "string"),
        ("state", "string"),
        ("opened_at", "float64"),
        ("last_active_at", "float64"),
        ("requests", "int64"),
    ),
    "sys.dm_requests": (
        ("request_id", "int64"),
        ("session_id", "int64"),
        ("tenant", "string"),
        ("workload_class", "string"),
        ("priority", "int64"),
        ("status", "string"),
        ("submitted_at", "float64"),
        ("started_at", "float64"),
        ("finished_at", "float64"),
        ("queue_wait_s", "float64"),
        ("execute_s", "float64"),
        ("retry_after_s", "float64"),
        ("error", "string"),
    ),
    "sys.dm_metrics": (
        ("name", "string"),
        ("labels", "string"),
        ("kind", "string"),
        ("value", "float64"),
        ("count", "int64"),
        ("sum", "float64"),
        ("min", "float64"),
        ("mean", "float64"),
        ("max", "float64"),
        ("p50", "float64"),
        ("p95", "float64"),
        ("p99", "float64"),
    ),
    "sys.dm_metrics_history": (
        ("sample_id", "int64"),
        ("at", "float64"),
        ("metric", "string"),
        ("value", "float64"),
    ),
    "sys.dm_exec_query_stats": (
        ("query_hash", "string"),
        ("statement_kind", "string"),
        ("query_text", "string"),
        ("executions", "int64"),
        ("errors", "int64"),
        ("total_rows", "int64"),
        ("total_bytes_read", "int64"),
        ("total_sim_s", "float64"),
        ("mean_sim_s", "float64"),
        ("p50_s", "float64"),
        ("p95_s", "float64"),
        ("p99_s", "float64"),
        ("recent_p95_s", "float64"),
        ("baseline_p95_s", "float64"),
        ("regressions", "int64"),
        ("plan_count", "int64"),
        ("tenants", "string"),
        ("workload_classes", "string"),
        ("first_seen", "float64"),
        ("last_seen", "float64"),
    ),
    "sys.dm_exec_query_plans": (
        ("query_hash", "string"),
        ("plan_hash", "string"),
        ("executions", "int64"),
        ("first_seen", "float64"),
        ("last_seen", "float64"),
        ("plan_text", "string"),
    ),
    "sys.dm_exec_operator_stats": (
        ("query_hash", "string"),
        ("operator_id", "int64"),
        ("operator", "string"),
        ("executions", "int64"),
        ("est_rows", "float64"),
        ("actual_rows", "float64"),
        ("misestimate", "float64"),
        ("sim_time_s", "float64"),
        ("files", "int64"),
        ("files_pruned", "int64"),
        ("row_groups", "int64"),
        ("row_groups_pruned", "int64"),
    ),
    "sys.dm_wait_stats": (
        ("wait_kind", "string"),
        ("waits", "int64"),
        ("total_wait_s", "float64"),
        ("mean_wait_s", "float64"),
        ("max_wait_s", "float64"),
        ("p95_wait_s", "float64"),
        ("tenants", "string"),
        ("workload_classes", "string"),
    ),
    "sys.dm_exec_query_waits": (
        ("query_hash", "string"),
        ("wait_kind", "string"),
        ("waits", "int64"),
        ("total_wait_s", "float64"),
        ("max_wait_s", "float64"),
    ),
    "sys.dm_commit_lock": (
        ("is_held", "bool"),
        ("holder_txid", "int64"),
        ("acquisitions", "int64"),
        ("busy_until", "float64"),
        ("total_wait_s", "float64"),
        ("total_hold_s", "float64"),
    ),
    "sys.dm_table_stats": (
        ("table_id", "int64"),
        ("table_name", "string"),
        ("sequence_id", "int64"),
        ("row_count", "int64"),
        ("column_count", "int64"),
        ("analyzed_at", "float64"),
        ("source", "string"),
        ("feedback_factor", "float64"),
    ),
    "sys.dm_index_stats": (
        ("table_id", "int64"),
        ("table_name", "string"),
        ("index_name", "string"),
        ("column_name", "string"),
        ("sequence_id", "int64"),
        ("entries", "int64"),
        ("covered_files", "int64"),
        ("size_bytes", "int64"),
        ("built_at", "float64"),
        ("lookups", "int64"),
        ("files_pruned", "int64"),
    ),
}


def test_every_view_is_covered_exactly():
    """Coverage completeness both ways: no view escapes the table."""
    assert set(EXPECTED_SCHEMAS) == set(Introspector.VIEWS)


@pytest.mark.parametrize("view", sorted(EXPECTED_SCHEMAS))
def test_schema_matches_expected(view):
    schema = Introspector.schema(view)
    declared = tuple((f.name, f.type) for f in schema.fields)
    assert declared == EXPECTED_SCHEMAS[view]


@pytest.mark.parametrize("view", sorted(EXPECTED_SCHEMAS))
def test_empty_view_batch_keeps_dtypes(view):
    """Every view materializes with schema dtypes even with zero rows."""
    dw = Warehouse(config=PolarisConfig(), auto_optimize=False)
    intro = dw.context.introspection
    batch = intro.batch(view)
    schema = Introspector.schema(view)
    assert list(batch) == [f.name for f in schema.fields]
    for field in schema.fields:
        assert batch[field.name].dtype == np.dtype(field.numpy_dtype)


def test_dm_exec_views_sql_queryable_when_disabled(config):
    """Query store off: the views answer SQL with zero rows, full schema."""
    dw = Warehouse(config=config, auto_optimize=False)
    session = dw.session()
    assert dw.telemetry.querystore is None
    for view in sorted(EXPECTED_SCHEMAS):
        if not view.startswith("sys.dm_exec_"):
            continue
        batch = session.sql(f"SELECT * FROM {view}")
        assert list(batch) == [c for c, _ in EXPECTED_SCHEMAS[view]]
        first = next(iter(batch.values()))
        assert len(first) == 0


def test_wait_views_sql_queryable_when_disabled(config):
    """Wait stats off: both wait views answer SQL empty with full schema."""
    dw = Warehouse(config=config, auto_optimize=False)
    session = dw.session()
    assert dw.telemetry.waits is None
    for view in ("sys.dm_wait_stats", "sys.dm_exec_query_waits"):
        batch = session.sql(f"SELECT * FROM {view}")
        assert list(batch) == [c for c, _ in EXPECTED_SCHEMAS[view]]
        first = next(iter(batch.values()))
        assert len(first) == 0


def test_wait_views_dtypes_through_sql(config):
    """With waits enabled and rows present, SQL output keeps schema dtypes."""
    config.telemetry.wait_stats_enabled = True
    dw = Warehouse(config=config, auto_optimize=False)
    waits = dw.telemetry.waits
    assert waits is not None
    waits.record_wait(
        "commit_lock", 0.25, tenant="acme", workload_class="etl",
        query_hash="abc123",
    )
    session = dw.session()
    for view in ("sys.dm_wait_stats", "sys.dm_exec_query_waits"):
        batch = session.sql(f"SELECT * FROM {view}")
        schema = Introspector.schema(view)
        assert list(batch) == [f.name for f in schema.fields]
        first = next(iter(batch.values()))
        assert len(first) == 1
        for field in schema.fields:
            assert batch[field.name].dtype == np.dtype(field.numpy_dtype)


def test_dm_commit_lock_reflects_lock_state(config):
    """sys.dm_commit_lock reports acquisitions from real commits."""
    dw = Warehouse(config=config, auto_optimize=False)
    session = dw.session()
    before = session.sql("SELECT acquisitions, is_held FROM sys.dm_commit_lock")
    assert int(before["acquisitions"][0]) == 0
    assert not bool(before["is_held"][0])
    session.sql("CREATE TABLE locked_t (id bigint, v double)")
    session.sql("INSERT INTO locked_t (id, v) VALUES (1, 2.5)")
    after = session.sql("SELECT acquisitions, is_held FROM sys.dm_commit_lock")
    assert int(after["acquisitions"][0]) > 0
    assert not bool(after["is_held"][0])
