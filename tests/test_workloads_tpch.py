"""Tests for the TPC-H generator and queries."""

import numpy as np
import pytest

from repro.engine.batch import num_rows
from repro.engine.executor import dict_scan_source, execute_plan
from repro.workloads.tpch import TPCH_QUERIES, TPCH_SCHEMAS, TpchGenerator
from repro.workloads.tpch.schema import BASE_ROWS, MAX_ORDER_DATE, MIN_ORDER_DATE


@pytest.fixture(scope="module")
def tables():
    return TpchGenerator(scale_factor=0.1, seed=42).all_tables()


@pytest.fixture(scope="module")
def source(tables):
    return dict_scan_source(tables)


class TestGenerator:
    def test_schemas_match(self, tables):
        for name, batch in tables.items():
            schema = TPCH_SCHEMAS[name]
            assert set(batch) == set(schema.names)

    def test_cardinality_ratios(self):
        gen = TpchGenerator(scale_factor=0.5)
        assert gen.rows("orders") == 10 * gen.rows("customer")
        assert gen.rows("partsupp") == 4 * gen.rows("part")

    def test_deterministic_per_seed(self):
        a = TpchGenerator(scale_factor=0.05, seed=9).table("orders")
        b = TpchGenerator(scale_factor=0.05, seed=9).table("orders")
        np.testing.assert_array_equal(a["o_orderkey"], b["o_orderkey"])
        np.testing.assert_array_equal(a["o_totalprice"], b["o_totalprice"])

    def test_foreign_keys_valid(self, tables):
        custkeys = set(tables["customer"]["c_custkey"].tolist())
        assert set(tables["orders"]["o_custkey"].tolist()) <= custkeys
        orderkeys = set(tables["orders"]["o_orderkey"].tolist())
        assert set(tables["lineitem"]["l_orderkey"].tolist()) <= orderkeys
        partkeys = set(tables["part"]["p_partkey"].tolist())
        assert set(tables["lineitem"]["l_partkey"].tolist()) <= partkeys
        suppkeys = set(tables["supplier"]["s_suppkey"].tolist())
        assert set(tables["lineitem"]["l_suppkey"].tolist()) <= suppkeys
        nationkeys = set(tables["nation"]["n_nationkey"].tolist())
        assert set(tables["customer"]["c_nationkey"].tolist()) <= nationkeys

    def test_date_domains(self, tables):
        orders = tables["orders"]["o_orderdate"]
        assert orders.min() >= MIN_ORDER_DATE
        assert orders.max() <= MAX_ORDER_DATE
        lineitem = tables["lineitem"]
        assert (lineitem["l_receiptdate"] > lineitem["l_shipdate"]).all()

    def test_one_third_of_customers_never_order(self, tables):
        ordering = set(tables["orders"]["o_custkey"].tolist())
        total = len(tables["customer"]["c_custkey"])
        assert len(ordering) < total

    def test_split_into_source_files(self):
        gen = TpchGenerator(scale_factor=0.1)
        files = gen.split_into_source_files("lineitem", 8)
        assert len(files) == 8
        total = sum(len(f["l_orderkey"]) for f in files)
        assert total == len(gen.table("lineitem")["l_orderkey"])

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            TpchGenerator(scale_factor=0)


class TestQueries:
    @pytest.mark.parametrize("qnum", sorted(TPCH_QUERIES))
    def test_query_executes(self, qnum, source):
        out = execute_plan(TPCH_QUERIES[qnum](), source)
        assert isinstance(out, dict)

    def test_q1_aggregates_full_domain(self, source, tables):
        out = execute_plan(TPCH_QUERIES[1](), source)
        # Pricing summary: all (returnflag, linestatus) combinations present.
        assert num_rows(out) >= 3
        assert out["sum_qty"].sum() <= tables["lineitem"]["l_quantity"].sum()

    def test_q1_counts_match_manual(self, source, tables):
        out = execute_plan(TPCH_QUERIES[1](), source)
        li = tables["lineitem"]
        cutoff_mask = li["l_shipdate"] <= li["l_shipdate"].max()
        assert out["count_order"].sum() <= cutoff_mask.sum()

    def test_q6_matches_numpy(self, source, tables):
        from repro.workloads.tpch.schema import date_days
        li = tables["lineitem"]
        lo, hi = date_days(1994, 1, 1), date_days(1995, 1, 1)
        mask = (
            (li["l_shipdate"] >= lo) & (li["l_shipdate"] < hi)
            & (li["l_discount"] >= 0.05) & (li["l_discount"] <= 0.07)
            & (li["l_quantity"] < 24)
        )
        expected = (li["l_extendedprice"][mask] * li["l_discount"][mask]).sum()
        out = execute_plan(TPCH_QUERIES[6](), source)
        assert out["revenue"][0] == pytest.approx(expected)

    def test_q3_limit_respected(self, source):
        out = execute_plan(TPCH_QUERIES[3](), source)
        assert num_rows(out) <= 10

    def test_q10_top_20(self, source):
        out = execute_plan(TPCH_QUERIES[10](), source)
        assert num_rows(out) <= 20
        rev = out["revenue"]
        assert all(rev[i] >= rev[i + 1] for i in range(len(rev) - 1))

    def test_q12_ship_modes(self, source):
        out = execute_plan(TPCH_QUERIES[12](), source)
        assert set(out["l_shipmode"]) <= {"MAIL", "SHIP"}

    def test_q14_percentage_bounds(self, source):
        out = execute_plan(TPCH_QUERIES[14](), source)
        assert 0.0 <= out["promo_revenue"][0] <= 100.0

    def test_q15_is_the_max(self, source):
        out = execute_plan(TPCH_QUERIES[15](), source)
        assert num_rows(out) >= 1
        assert len(set(out["total_revenue"].tolist())) == 1

    def test_q22_country_codes(self, source):
        out = execute_plan(TPCH_QUERIES[22](), source)
        assert set(out["cntrycode"]) <= {"13", "31", "23", "29", "30", "18", "17"}
