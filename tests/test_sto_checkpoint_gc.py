"""Tests for manifest checkpointing (5.2) and garbage collection (5.3)."""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from repro.sqldb import system_tables as st
from tests.conftest import small_config


def count(table="t"):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    return s


def table_id(dw, name="t"):
    txn = dw.context.sqldb.begin()
    try:
        return st.find_table_by_name(txn, name)["table_id"]
    finally:
        txn.abort()


class TestCheckpoint:
    def test_checkpoint_written_and_recorded(self, dw, session):
        for i in range(3):
            session.insert("t", ids(10, start=i * 10))
        result = dw.sto.run_checkpoint(table_id(dw))
        assert result is not None
        assert dw.store.exists(result.path)
        assert result.manifests_collapsed == 3

    def test_checkpoint_bounds_replay(self, dw, session):
        for i in range(6):
            session.insert("t", ids(10, start=i * 10))
        dw.sto.run_checkpoint(table_id(dw))
        dw.context.cache.invalidate()
        replayed_before = dw.context.cache.stats.manifests_replayed
        assert dw.session().query(count())["n"][0] == 60
        replayed = dw.context.cache.stats.manifests_replayed - replayed_before
        assert replayed == 0  # checkpoint covers everything

    def test_checkpoint_plus_tail(self, dw, session):
        for i in range(3):
            session.insert("t", ids(10, start=i * 10))
        dw.sto.run_checkpoint(table_id(dw))
        session.insert("t", ids(10, start=100))
        dw.context.cache.invalidate()
        assert dw.session().query(count())["n"][0] == 40

    def test_noop_when_nothing_new(self, dw, session):
        session.insert("t", ids(10))
        assert dw.sto.run_checkpoint(table_id(dw)) is not None
        assert dw.sto.run_checkpoint(table_id(dw)) is None

    def test_noop_on_empty_table(self, dw, session):
        assert dw.sto.run_checkpoint(table_id(dw)) is None

    def test_auto_checkpoint_on_threshold(self):
        config = small_config()
        config.sto.checkpoint_manifest_threshold = 5
        dw = Warehouse(config=config, auto_optimize=True)
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        for i in range(5):
            session.insert("t", ids(5, start=i * 5))
        assert len(dw.sto.checkpoints) == 1

    def test_checkpoint_never_conflicts(self, dw, session):
        """Checkpointing during an open write transaction is safe."""
        session.insert("t", ids(10))
        writer = dw.session()
        writer.begin()
        writer.delete("t", BinOp("==", Col("id"), Lit(0)))
        assert dw.sto.run_checkpoint(table_id(dw)) is not None
        writer.commit()  # still commits fine


class TestGarbageCollection:
    def test_aborted_txn_files_collected(self, dw, session):
        writer = dw.session()
        writer.begin()
        writer.insert("t", ids(10))
        private = writer._txn.private_file_paths()
        writer.rollback()
        report = dw.sto.run_gc()
        assert set(report.deleted_orphans) >= set(private)
        assert not any(dw.store.exists(p) for p in private)

    def test_live_files_never_collected(self, dw, session):
        session.insert("t", ids(10))
        live = {f.path for f in session.table_snapshot("t").files.values()}
        report = dw.sto.run_gc()
        assert not (set(report.deleted_expired) & live)
        assert not (set(report.deleted_orphans) & live)
        assert dw.session().query(count())["n"][0] == 10

    def test_in_flight_txn_files_retained(self, dw, session):
        writer = dw.session()
        writer.begin()
        writer.insert("t", ids(10))
        private = set(writer._txn.private_file_paths())
        report = dw.sto.run_gc()
        assert private <= set(report.retained_recent)
        writer.commit()
        assert dw.session().query(count())["n"][0] == 10

    def test_removed_files_kept_within_retention(self, dw, session):
        session.insert("t", ids(10))
        old = {f.path for f in session.table_snapshot("t").files.values()}
        session.delete("t", BinOp(">=", Col("id"), Lit(0)))
        # Merge-on-read delete keeps files; force removal via compaction.
        dw.sto.run_compaction(table_id(dw))
        report = dw.sto.run_gc()
        assert not (set(report.deleted_expired) & old)
        assert all(dw.store.exists(p) for p in old)

    def test_removed_files_collected_after_retention(self, dw, session):
        session.insert("t", ids(100))
        old = {f.path for f in session.table_snapshot("t").files.values()}
        session.delete("t", BinOp("<", Col("id"), Lit(50)))
        dw.sto.run_compaction(table_id(dw))
        dw.clock.advance(dw.config.sto.retention_period_s + 1.0)
        report = dw.sto.run_gc()
        assert old <= set(report.deleted_expired)
        assert dw.session().query(count())["n"][0] == 50

    def test_clone_shared_lineage_protects_files(self, dw, session):
        """A file removed from the source but live in a clone must stay."""
        session.insert("t", ids(100))
        shared = {f.path for f in session.table_snapshot("t").files.values()}
        session.clone_table("t", "t2")
        session.delete("t", BinOp("<", Col("id"), Lit(50)))
        dw.sto.run_compaction(table_id(dw))
        dw.clock.advance(dw.config.sto.retention_period_s + 1.0)
        report = dw.sto.run_gc()
        # Shared files are in t's inactive set but t2's active set: retained.
        assert not (shared & set(report.deleted_expired))
        assert dw.session().query(count("t2"))["n"][0] == 100

    def test_gc_publishes_event(self, dw, session):
        seen = []
        dw.context.bus.subscribe("gc.completed", seen.append)
        dw.sto.run_gc()
        assert len(seen) == 1

    def test_gc_report_counts(self, dw, session):
        session.insert("t", ids(10))
        report = dw.sto.run_gc()
        assert report.scanned == report.active + report.deleted_total + len(
            report.retained_recent
        )
