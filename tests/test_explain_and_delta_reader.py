"""Tests for the EXPLAIN printer and the external Delta-log reader."""

import numpy as np
import pytest

from repro import (
    Aggregate,
    BinOp,
    Case,
    Col,
    Filter,
    InList,
    Join,
    Like,
    Limit,
    Lit,
    Not,
    Schema,
    Sort,
    Substr,
    TableScan,
    Warehouse,
    Year,
    and_,
)
from repro.engine.explain import explain, format_expr
from repro.sto.delta_reader import read_published_table
from repro.workloads.tpch import TPCH_QUERIES
from tests.conftest import small_config


class TestFormatExpr:
    def test_comparison_and_arithmetic(self):
        expr = BinOp("==", BinOp("+", Col("a"), Lit(1)), Lit(5))
        assert format_expr(expr) == "((a + 1) = 5)"

    def test_boolean_connectives(self):
        expr = and_(BinOp(">", Col("a"), Lit(0)), Not(BinOp("<", Col("b"), Lit(2))))
        assert format_expr(expr) == "((a > 0) AND NOT (b < 2))"

    def test_like_in_case(self):
        assert format_expr(Like(Col("s"), "a%")) == "s LIKE 'a%'"
        assert format_expr(InList(Col("x"), (1, 2))) == "x IN (1, 2)"
        case = Case(BinOp(">", Col("x"), Lit(0)), Lit(1), Lit(0))
        assert format_expr(case) == "CASE WHEN (x > 0) THEN 1 ELSE 0 END"

    def test_functions(self):
        assert format_expr(Year(Col("d"))) == "YEAR(d)"
        assert format_expr(Substr(Col("s"), 1, 2)) == "SUBSTRING(s, 1, 2)"

    def test_not_equal(self):
        assert format_expr(BinOp("!=", Col("a"), Lit(1))) == "(a <> 1)"


class TestExplain:
    def test_scan_with_pushdown(self):
        plan = TableScan(
            "t", ("a", "b"), predicate=BinOp(">", Col("a"), Lit(1)),
            prune=(("a", ">", 1),),
        )
        text = explain(plan)
        assert "Scan t [a, b]" in text
        assert "filter=(a > 1)" in text
        assert "prune=(a > 1)" in text

    def test_tree_indentation(self):
        plan = Limit(
            Sort(
                Aggregate(
                    Join(
                        TableScan("l", ("k", "v")),
                        TableScan("r", ("rk",)),
                        ("k",), ("rk",),
                    ),
                    ("k",),
                    {"total": ("sum", Col("v")), "n": ("count", None)},
                ),
                (("total", False),),
            ),
            5,
        )
        lines = explain(plan).splitlines()
        assert lines[0] == "Limit 5"
        assert lines[1].startswith("  Sort [total DESC]")
        assert lines[2].startswith("    Aggregate group=[k]")
        assert "count(*)" in lines[2]
        assert lines[3].startswith("      HashJoin[inner] on (k=rk)")
        assert lines[4].strip().startswith("Scan l")
        assert lines[5].strip().startswith("Scan r")

    def test_filter_project_nodes(self):
        plan = Filter(
            TableScan("t", ("a",)), BinOp("==", Col("a"), Lit(1))
        )
        assert explain(plan).splitlines()[0] == "Filter (a = 1)"

    @pytest.mark.parametrize("qnum", sorted(TPCH_QUERIES))
    def test_all_tpch_queries_explain(self, qnum):
        text = explain(TPCH_QUERIES[qnum]())
        assert text
        assert "Scan" in text


class TestDeltaReader:
    @pytest.fixture
    def dw(self):
        warehouse = Warehouse(config=small_config(), auto_optimize=False)
        warehouse.sto.auto_publish = True
        session = warehouse.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        return warehouse

    def ids(self, n, start=0):
        return {"id": np.arange(start, start + n, dtype=np.int64),
                "v": np.zeros(n)}

    def test_unpublished_table_is_none(self, dw):
        assert read_published_table(dw.context, "t") is None

    def test_published_state_matches_snapshot(self, dw):
        session = dw.session()
        session.insert("t", self.ids(100))
        session.insert("t", self.ids(50, start=200))
        state = read_published_table(dw.context, "t")
        snapshot = session.table_snapshot("t")
        assert set(state.files) == {f.path for f in snapshot.files.values()}
        assert state.versions_read == 2
        assert state.total_bytes == snapshot.total_bytes

    def test_deletes_reflected_as_dvs(self, dw):
        session = dw.session()
        session.insert("t", self.ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(10)))
        state = read_published_table(dw.context, "t")
        snapshot = session.table_snapshot("t")
        assert set(state.deletion_vectors) == set(snapshot.dvs)
        assert set(state.deletion_vectors.values()) == {
            dv.path for dv in snapshot.dvs.values()
        }

    def test_dv_replacement_reflected(self, dw):
        session = dw.session()
        session.insert("t", self.ids(100))
        session.delete("t", BinOp("==", Col("id"), Lit(1)))
        session.delete("t", BinOp("==", Col("id"), Lit(2)))
        state = read_published_table(dw.context, "t")
        snapshot = session.table_snapshot("t")
        assert set(state.deletion_vectors.values()) == {
            dv.path for dv in snapshot.dvs.values()
        }

    def test_compaction_reflected(self, dw):
        session = dw.session()
        session.insert("t", self.ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(60)))
        table_id = 1001
        dw.sto.run_compaction(table_id)
        # The compaction's manifest is published too (auto_publish hook is
        # driven by commit events, which compaction emits).
        state = read_published_table(dw.context, "t")
        snapshot = session.table_snapshot("t")
        assert set(state.files) == {f.path for f in snapshot.files.values()}
        assert state.deletion_vectors == {}

    def test_external_reader_can_read_data_files(self, dw):
        """An external engine reads the same bytes through the shortcut."""
        from repro.pagefile.reader import PageFileReader
        session = dw.session()
        session.insert("t", self.ids(30))
        state = read_published_table(dw.context, "t")
        total = 0
        for path in state.files:
            reader = PageFileReader(dw.store.get(path).data)
            total += reader.num_rows
        assert total == 30
