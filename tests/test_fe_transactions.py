"""Tests for FE transaction semantics: multi-statement, multi-table,
conflict granularity, commit protocol details."""

import numpy as np
import pytest

from repro import (
    Aggregate,
    BinOp,
    Col,
    Lit,
    PolarisConfig,
    Schema,
    TableScan,
    Warehouse,
    WriteConflictError,
)
from repro.common.errors import TransactionStateError
from repro.sqldb import system_tables as st
from tests.conftest import small_config


def count_plan(table):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64),
            "v": np.zeros(n)}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    return s


class TestMultiStatement:
    def test_statements_see_prior_statements(self, dw, session):
        session.begin()
        session.insert("t", ids(10))
        assert session.query(count_plan("t"))["n"][0] == 10
        session.insert("t", ids(5, start=100))
        assert session.query(count_plan("t"))["n"][0] == 15
        session.commit()
        assert dw.session().query(count_plan("t"))["n"][0] == 15

    def test_delete_after_insert_same_txn(self, dw, session):
        session.begin()
        session.insert("t", ids(10))
        deleted = session.delete("t", BinOp("<", Col("id"), Lit(3)))
        assert deleted == 3
        assert session.query(count_plan("t"))["n"][0] == 7
        session.commit()
        assert dw.session().query(count_plan("t"))["n"][0] == 7

    def test_update_after_update_reconciles(self, dw, session):
        session.insert("t", ids(10))
        session.begin()
        session.update("t", BinOp("<", Col("id"), Lit(5)),
                       {"v": Lit(1.0)})
        session.update("t", BinOp("==", Col("v"), Lit(1.0)),
                       {"v": Lit(2.0)})
        session.commit()
        out = dw.session().query(TableScan("t", ("id", "v")))
        by_id = dict(zip(out["id"].tolist(), out["v"].tolist()))
        assert all(by_id[i] == 2.0 for i in range(5))
        assert all(by_id[i] == 0.0 for i in range(5, 10))

    def test_one_manifest_per_table_per_txn(self, dw, session):
        session.begin()
        session.insert("t", ids(5))
        session.insert("t", ids(5, start=50))
        session.delete("t", BinOp("==", Col("id"), Lit(1)))
        seq = session.commit()
        txn = dw.context.sqldb.begin()
        rows = st.manifests_for_table(txn, 1001)
        txn.abort()
        assert len(rows) == 1
        assert rows[0]["sequence_id"] == seq

    def test_uncommitted_changes_invisible(self, dw, session):
        session.begin()
        session.insert("t", ids(10))
        other = dw.session()
        assert other.query(count_plan("t"))["n"][0] == 0
        session.commit()
        assert other.query(count_plan("t"))["n"][0] == 10

    def test_rollback_discards_everything(self, dw, session):
        session.begin()
        session.insert("t", ids(10))
        session.delete("t", BinOp("==", Col("id"), Lit(1)))
        session.rollback()
        assert dw.session().query(count_plan("t"))["n"][0] == 0

    def test_nested_begin_rejected(self, session):
        session.begin()
        with pytest.raises(TransactionStateError):
            session.begin()

    def test_commit_without_begin_rejected(self, session):
        with pytest.raises(TransactionStateError):
            session.commit()

    def test_session_reusable_after_rollback(self, dw, session):
        session.begin()
        session.insert("t", ids(1))
        session.rollback()
        session.insert("t", ids(2))  # autocommit works again
        assert dw.session().query(count_plan("t"))["n"][0] == 2


class TestMultiTable:
    def test_multi_table_atomic_commit(self, dw, session):
        session.create_table("u", Schema.of(("id", "int64"), ("v", "float64")))
        session.begin()
        session.insert("t", ids(3))
        session.insert("u", ids(4))
        session.commit()
        reader = dw.session()
        assert reader.query(count_plan("t"))["n"][0] == 3
        assert reader.query(count_plan("u"))["n"][0] == 4

    def test_multi_table_same_sequence_id(self, dw, session):
        session.create_table("u", Schema.of(("id", "int64"), ("v", "float64")))
        session.begin()
        session.insert("t", ids(1))
        session.insert("u", ids(1))
        seq = session.commit()
        txn = dw.context.sqldb.begin()
        t_rows = st.manifests_for_table(txn, 1001)
        u_rows = st.manifests_for_table(txn, 1002)
        txn.abort()
        assert t_rows[0]["sequence_id"] == seq == u_rows[0]["sequence_id"]

    def test_multi_table_rollback_atomic(self, dw, session):
        session.create_table("u", Schema.of(("id", "int64"), ("v", "float64")))
        session.begin()
        session.insert("t", ids(3))
        session.insert("u", ids(4))
        session.rollback()
        reader = dw.session()
        assert reader.query(count_plan("t"))["n"][0] == 0
        assert reader.query(count_plan("u"))["n"][0] == 0

    def test_conflict_on_one_table_aborts_whole_txn(self, dw, session):
        session.create_table("u", Schema.of(("id", "int64"), ("v", "float64")))
        session.insert("t", ids(10))
        session.insert("u", ids(10))
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.delete("t", BinOp("==", Col("id"), Lit(0)))
        b.insert("u", ids(5, start=100))
        b.delete("t", BinOp("==", Col("id"), Lit(5)))
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        # b's insert into u rolled back along with the conflicting delete.
        assert dw.session().query(count_plan("u"))["n"][0] == 10


class TestConflictGranularity:
    def test_table_granularity_conflicts_on_disjoint_rows(self, dw, session):
        session.insert("t", ids(100))
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.delete("t", BinOp("==", Col("id"), Lit(1)))
        b.delete("t", BinOp("==", Col("id"), Lit(90)))
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()

    def test_file_granularity_disjoint_files_commit(self):
        config = small_config()
        config.txn.conflict_granularity = "file"
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", ids(100))
        snapshot = session.table_snapshot("t")
        assert len(snapshot.files) > 1  # rows spread over several files
        # Find two ids living in different data files via distribution.
        from repro.dcp.cells import distribution_of
        d = distribution_of(np.arange(100, dtype=np.int64), config.distributions)
        id_a = int(np.flatnonzero(d == d.min())[0])
        id_b = int(np.flatnonzero(d != d[id_a])[0])
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.delete("t", BinOp("==", Col("id"), Lit(id_a)))
        b.delete("t", BinOp("==", Col("id"), Lit(id_b)))
        a.commit()
        b.commit()  # no conflict at file granularity

    def test_file_granularity_same_file_conflicts(self):
        config = small_config()
        config.txn.conflict_granularity = "file"
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", ids(100))
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.delete("t", BinOp("==", Col("id"), Lit(7)))
        b.delete("t", BinOp("==", Col("id"), Lit(7)))
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()


class TestCommitProtocol:
    def test_manifest_rows_track_txid(self, dw, session):
        session.begin()
        txn = session._txn
        session.insert("t", ids(1))
        session.commit()
        reader = dw.context.sqldb.begin()
        row = st.manifests_for_table(reader, 1001)[0]
        reader.abort()
        assert row["transaction_id"] == txn.txid

    def test_empty_write_txn_adds_no_manifest(self, dw, session):
        session.begin()
        deleted = session.delete("t", BinOp("==", Col("id"), Lit(123456)))
        assert deleted == 0
        session.commit()
        reader = dw.context.sqldb.begin()
        assert st.manifests_for_table(reader, 1001) == []
        reader.abort()

    def test_read_only_txn_commits_cleanly(self, dw, session):
        session.insert("t", ids(5))
        session.begin()
        session.query(count_plan("t"))
        assert session.commit() is None

    def test_aborted_txn_files_remain_for_gc(self, dw, session):
        session.begin()
        session.insert("t", ids(10))
        private = session._txn.private_file_paths()
        assert private
        session.rollback()
        # Files still on storage (invisible), awaiting garbage collection.
        assert all(dw.store.exists(p) for p in private)

    def test_sequence_ids_strictly_increase(self, dw, session):
        seqs = []
        for i in range(3):
            session.begin()
            session.insert("t", ids(1, start=i * 10))
            seqs.append(session.commit())
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_writesets_not_touched_by_insert_only(self, dw, session):
        session.insert("t", ids(5))
        reader = dw.context.sqldb.begin()
        assert list(reader.scan(st.WRITESETS)) == []
        reader.abort()

    def test_writesets_updated_by_delete(self, dw, session):
        session.insert("t", ids(5))
        session.delete("t", BinOp("==", Col("id"), Lit(0)))
        reader = dw.context.sqldb.begin()
        rows = list(reader.scan(st.WRITESETS))
        reader.abort()
        assert len(rows) == 1
        assert rows[0]["table_id"] == 1001
