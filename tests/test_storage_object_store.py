"""Tests for the object store: immutability, listing, block-blob semantics."""

import pytest

from repro.common.errors import (
    BlobAlreadyExistsError,
    BlobNotFoundError,
    BlockNotStagedError,
    EtagMismatchError,
)
from repro.storage import ObjectStore


@pytest.fixture
def store():
    return ObjectStore()


class TestBasicBlobs:
    def test_put_get_roundtrip(self, store):
        store.put("a/b", b"hello")
        assert store.get("a/b").data == b"hello"

    def test_get_missing_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.get("nope")

    def test_put_is_immutable(self, store):
        store.put("a", b"1")
        with pytest.raises(BlobAlreadyExistsError):
            store.put("a", b"2")

    def test_put_overwrite_flag(self, store):
        store.put("a", b"1")
        store.put("a", b"2", overwrite=True)
        assert store.get("a").data == b"2"

    def test_exists(self, store):
        assert not store.exists("x")
        store.put("x", b"")
        assert store.exists("x")

    def test_delete_idempotent(self, store):
        store.put("a", b"1")
        store.delete("a")
        store.delete("a")
        assert not store.exists("a")

    def test_delete_with_etag_mismatch(self, store):
        blob = store.put("a", b"1")
        with pytest.raises(EtagMismatchError):
            store.delete("a", if_etag=blob.etag + 1)
        store.delete("a", if_etag=blob.etag)
        assert not store.exists("a")

    def test_etags_are_unique(self, store):
        first = store.put("a", b"1")
        second = store.put("b", b"2")
        assert first.etag != second.etag

    def test_list_prefix(self, store):
        store.put("x/1", b"")
        store.put("x/2", b"")
        store.put("y/1", b"")
        assert [b.path for b in store.list("x/")] == ["x/1", "x/2"]

    def test_list_all(self, store):
        store.put("a", b"")
        store.put("b", b"")
        assert len(list(store.list())) == 2

    def test_metadata_stored(self, store):
        store.put("a", b"", metadata={"k": "v"})
        meta = store.head("a").metadata
        assert meta["k"] == "v"
        # Every put stamps a checksum alongside caller metadata.
        assert meta["checksum"].startswith("crc32:")

    def test_created_at_uses_clock(self, store):
        store.clock.advance(7.0)
        blob = store.put("a", b"x")
        assert blob.created_at >= 7.0

    def test_latency_advances_clock(self, store):
        before = store.clock.now
        store.put("a", b"x" * 1024 * 1024)
        assert store.clock.now > before

    def test_latency_suspension(self, store):
        with store.latency_suspended():
            before = store.clock.now
            store.put("a", b"x" * 1024 * 1024)
            assert store.clock.now == before

    def test_latency_suspension_nests(self, store):
        with store.latency_suspended():
            with store.latency_suspended():
                pass
            before = store.clock.now
            store.put("a", b"x")
            assert store.clock.now == before


class TestBlockBlobs:
    def test_staged_blocks_invisible(self, store):
        store.stage_block("m", "b1", b"data")
        assert not store.exists("m")

    def test_commit_makes_content_visible(self, store):
        store.stage_block("m", "b1", b"one")
        store.stage_block("m", "b2", b"two")
        store.commit_block_list("m", ["b1", "b2"])
        assert store.get("m").data == b"onetwo"

    def test_commit_order_controls_content(self, store):
        store.stage_block("m", "b1", b"one")
        store.stage_block("m", "b2", b"two")
        store.commit_block_list("m", ["b2", "b1"])
        assert store.get("m").data == b"twoone"

    def test_uncommitted_blocks_discarded(self, store):
        store.stage_block("m", "keep", b"K")
        store.stage_block("m", "stale", b"S")
        store.commit_block_list("m", ["keep"])
        assert store.get("m").data == b"K"
        # A later commit cannot resurrect the discarded block.
        with pytest.raises(BlockNotStagedError):
            store.commit_block_list("m", ["keep", "stale"])

    def test_append_pattern(self, store):
        """The FE's insert flush: old committed ids plus new staged ids."""
        store.stage_block("m", "b1", b"1")
        store.commit_block_list("m", ["b1"])
        store.stage_block("m", "b2", b"2")
        store.commit_block_list("m", ["b1", "b2"])
        assert store.get("m").data == b"12"

    def test_rewrite_pattern(self, store):
        """The FE's update/delete flush: only the rewritten block survives."""
        store.stage_block("m", "b1", b"old")
        store.commit_block_list("m", ["b1"])
        store.stage_block("m", "b2", b"new")
        store.commit_block_list("m", ["b2"])
        assert store.get("m").data == b"new"
        assert store.committed_block_ids("m") == ["b2"]

    def test_commit_unknown_block_rejected(self, store):
        with pytest.raises(BlockNotStagedError):
            store.commit_block_list("m", ["ghost"])

    def test_commit_duplicate_ids_rejected(self, store):
        store.stage_block("m", "b1", b"x")
        with pytest.raises(BlockNotStagedError):
            store.commit_block_list("m", ["b1", "b1"])

    def test_staged_block_ids_listing(self, store):
        store.stage_block("m", "b", b"")
        store.stage_block("m", "a", b"")
        assert store.staged_block_ids("m") == ["a", "b"]
        store.commit_block_list("m", ["a"])
        assert store.staged_block_ids("m") == []

    def test_restage_same_id_overwrites(self, store):
        store.stage_block("m", "b1", b"first")
        store.stage_block("m", "b1", b"second")
        store.commit_block_list("m", ["b1"])
        assert store.get("m").data == b"second"

    def test_created_at_preserved_across_commits(self, store):
        store.stage_block("m", "b1", b"1")
        store.commit_block_list("m", ["b1"])
        created = store.get("m").created_at
        store.clock.advance(100.0)
        store.stage_block("m", "b2", b"2")
        store.commit_block_list("m", ["b1", "b2"])
        assert store.get("m").created_at == created

    def test_delete_clears_block_state(self, store):
        store.stage_block("m", "b1", b"1")
        store.commit_block_list("m", ["b1"])
        store.delete("m")
        with pytest.raises(BlockNotStagedError):
            store.commit_block_list("m", ["b1"])


class TestMetering:
    def test_requests_counted(self, store):
        store.put("a", b"x")
        store.get("a")
        assert store.meter.requests["put"] == 1
        assert store.meter.requests["get"] == 1

    def test_bytes_accounted(self, store):
        store.put("a", b"x" * 100)
        store.get("a")
        assert store.meter.bytes_written == 100
        assert store.meter.bytes_read == 100

    def test_meter_delta(self, store):
        store.put("a", b"x")
        baseline = store.meter.snapshot()
        store.get("a")
        delta = store.meter.delta(baseline)
        assert delta.requests == {"get": 1}
        assert delta.bytes_read == 1
