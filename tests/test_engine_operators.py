"""Tests for the relational operators and the plan executor."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.engine.batch import concat_batches, from_rows, num_rows
from repro.engine.executor import dict_scan_source, execute_plan
from repro.engine.expressions import BinOp, Col, Lit
from repro.engine.operators import (
    aggregate,
    filter_batch,
    hash_join,
    limit,
    project,
    sort,
)
from repro.engine.planner import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Project,
    Sort,
    TableScan,
    scans_of,
    tables_of,
)

LEFT = from_rows(["k", "v"], [(1, 10.0), (2, 20.0), (2, 21.0), (3, 30.0)])
RIGHT = from_rows(["rk", "name"], [(1, "one"), (2, "two"), (4, "four")])


class TestFilterProject:
    def test_filter(self):
        out = filter_batch(LEFT, BinOp(">", Col("v"), Lit(15.0)))
        assert num_rows(out) == 3

    def test_filter_empty_input(self):
        empty = {"k": np.empty(0, dtype=np.int64)}
        assert num_rows(filter_batch(empty, BinOp(">", Col("k"), Lit(0)))) == 0

    def test_project_computes(self):
        out = project(LEFT, {"double": BinOp("*", Col("v"), Lit(2.0))})
        np.testing.assert_allclose(out["double"], [20, 40, 42, 60])

    def test_project_empty_input(self):
        empty = {"v": np.empty(0)}
        out = project(empty, {"x": Col("v")})
        assert num_rows(out) == 0
        assert "x" in out


class TestHashJoin:
    def test_inner_join(self):
        out = hash_join(LEFT, RIGHT, ["k"], ["rk"])
        assert num_rows(out) == 3
        assert set(out["name"]) == {"one", "two"}

    def test_inner_join_duplicates_multiply(self):
        dup_right = from_rows(["rk", "tag"], [(2, "x"), (2, "y")])
        out = hash_join(LEFT, dup_right, ["k"], ["rk"])
        assert num_rows(out) == 4  # two left rows × two right rows

    def test_multi_key_join(self):
        left = from_rows(["a", "b", "v"], [(1, 1, "x"), (1, 2, "y")])
        right = from_rows(["c", "d", "w"], [(1, 1, "m"), (1, 3, "n")])
        out = hash_join(left, right, ["a", "b"], ["c", "d"])
        assert num_rows(out) == 1
        assert out["v"][0] == "x"

    def test_semi_join(self):
        out = hash_join(LEFT, RIGHT, ["k"], ["rk"], how="left-semi")
        assert sorted(out["k"].tolist()) == [1, 2, 2]
        assert "name" not in out

    def test_anti_join(self):
        out = hash_join(LEFT, RIGHT, ["k"], ["rk"], how="left-anti")
        assert out["k"].tolist() == [3]

    def test_column_collision_rejected(self):
        with pytest.raises(PlanError, match="duplicate columns"):
            hash_join(LEFT, LEFT, ["k"], ["k"])

    def test_key_arity_mismatch_rejected(self):
        with pytest.raises(PlanError):
            hash_join(LEFT, RIGHT, ["k"], ["rk", "name"])

    def test_unknown_join_type(self):
        with pytest.raises(PlanError):
            hash_join(LEFT, RIGHT, ["k"], ["rk"], how="full-outer")

    def test_join_with_empty_side(self):
        empty = {"rk": np.empty(0, dtype=np.int64),
                 "name": np.empty(0, dtype=object)}
        assert num_rows(hash_join(LEFT, empty, ["k"], ["rk"])) == 0


class TestAggregate:
    def test_global_aggregates(self):
        out = aggregate(
            LEFT, [],
            {
                "total": ("sum", Col("v")),
                "n": ("count", None),
                "lo": ("min", Col("v")),
                "hi": ("max", Col("v")),
                "mean": ("avg", Col("v")),
            },
        )
        assert out["total"][0] == 81.0
        assert out["n"][0] == 4
        assert out["lo"][0] == 10.0
        assert out["hi"][0] == 30.0
        assert out["mean"][0] == pytest.approx(20.25)

    def test_grouped(self):
        out = aggregate(LEFT, ["k"], {"total": ("sum", Col("v"))})
        by_key = dict(zip(out["k"].tolist(), out["total"].tolist()))
        assert by_key == {1: 10.0, 2: 41.0, 3: 30.0}

    def test_count_distinct(self):
        batch = from_rows(["g", "x"], [(1, "a"), (1, "a"), (1, "b"), (2, "a")])
        out = aggregate(batch, ["g"], {"d": ("count_distinct", Col("x"))})
        by_key = dict(zip(out["g"].tolist(), out["d"].tolist()))
        assert by_key == {1: 2, 2: 1}

    def test_empty_input_global(self):
        empty = {"v": np.empty(0)}
        out = aggregate(empty, [], {"total": ("sum", Col("v")), "n": ("count", None)})
        assert out["total"][0] == 0
        assert out["n"][0] == 0

    def test_empty_input_grouped(self):
        empty = {"g": np.empty(0, dtype=np.int64), "v": np.empty(0)}
        out = aggregate(empty, ["g"], {"total": ("sum", Col("v"))})
        assert num_rows(out) == 0

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(PlanError, match="unknown aggregate"):
            aggregate(LEFT, [], {"x": ("median", Col("v"))})

    def test_count_requires_no_expr_but_others_do(self):
        with pytest.raises(PlanError):
            aggregate(LEFT, [], {"x": ("sum", None)})

    def test_aggregate_over_expression(self):
        out = aggregate(
            LEFT, [], {"t": ("sum", BinOp("*", Col("v"), Lit(10.0)))}
        )
        assert out["t"][0] == 810.0


class TestSortLimit:
    def test_sort_ascending(self):
        out = sort(LEFT, [("v", True)])
        assert out["v"].tolist() == [10.0, 20.0, 21.0, 30.0]

    def test_sort_descending(self):
        out = sort(LEFT, [("v", False)])
        assert out["v"][0] == 30.0

    def test_multi_key_sort(self):
        batch = from_rows(["a", "b"], [(2, 1), (1, 2), (2, 0), (1, 1)])
        out = sort(batch, [("a", True), ("b", True)])
        assert list(zip(out["a"].tolist(), out["b"].tolist())) == [
            (1, 1), (1, 2), (2, 0), (2, 1)
        ]

    def test_sort_strings(self):
        out = sort(RIGHT, [("name", True)])
        assert out["name"].tolist() == ["four", "one", "two"]

    def test_sort_empty(self):
        empty = {"v": np.empty(0)}
        assert num_rows(sort(empty, [("v", True)])) == 0

    def test_limit(self):
        assert num_rows(limit(LEFT, 2)) == 2
        assert num_rows(limit(LEFT, 100)) == 4


class TestBatchHelpers:
    def test_concat(self):
        out = concat_batches([LEFT, LEFT])
        assert num_rows(out) == 8

    def test_concat_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            concat_batches([LEFT, RIGHT])

    def test_concat_empty_list(self):
        assert concat_batches([]) == {}


class TestExecutor:
    def source(self):
        return dict_scan_source({"l": LEFT, "r": RIGHT})

    def test_full_pipeline(self):
        plan = Limit(
            Sort(
                Aggregate(
                    Join(
                        TableScan("l", ("k", "v")),
                        TableScan("r", ("rk", "name")),
                        ("k",), ("rk",),
                    ),
                    ("name",),
                    {"total": ("sum", Col("v"))},
                ),
                (("total", False),),
            ),
            1,
        )
        out = execute_plan(plan, self.source())
        assert out["name"][0] == "two"
        assert out["total"][0] == 41.0

    def test_scan_projection_enforced(self):
        out = execute_plan(TableScan("l", ("k",)), self.source())
        assert list(out) == ["k"]

    def test_scan_missing_column_rejected(self):
        with pytest.raises(PlanError, match="missing columns"):
            execute_plan(TableScan("l", ("ghost",)), self.source())

    def test_filter_project_nodes(self):
        plan = Project(
            Filter(TableScan("l", ("k", "v")), BinOp("==", Col("k"), Lit(2))),
            {"vv": BinOp("+", Col("v"), Lit(1.0))},
        )
        out = execute_plan(plan, self.source())
        assert out["vv"].tolist() == [21.0, 22.0]

    def test_scans_of_and_tables_of(self):
        plan = Join(
            TableScan("l", ("k",)), TableScan("r", ("rk",)), ("k",), ("rk",)
        )
        assert [s.table for s in scans_of(plan)] == ["l", "r"]
        assert tables_of(Join(plan, TableScan("l2", ("x",)), ("k",), ("x",))) == [
            "l", "r", "l2"
        ]
