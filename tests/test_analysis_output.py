"""Output-layer tests: stable IDs, JSON, SARIF 2.1.0, and the baseline ratchet."""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.framework import Finding
from repro.analysis.output import (
    SARIF_VERSION,
    finding_ids,
    load_baseline,
    partition_baseline,
    render,
    to_json_doc,
    to_sarif_doc,
    write_baseline,
)


def finding(path="src/repro/x.py", line=10, rule="resource-leak", message="m"):
    return Finding(path=path, line=line, rule=rule, message=message)


# -- stable IDs ----------------------------------------------------------------


def test_ids_are_line_independent():
    a = finding(line=10)
    b = finding(line=99)
    assert finding_ids([a]) == finding_ids([b])


def test_ids_distinguish_rule_path_message():
    base = finding()
    assert finding_ids([base]) != finding_ids([finding(rule="lock-order")])
    assert finding_ids([base]) != finding_ids([finding(path="src/repro/y.py")])
    assert finding_ids([base]) != finding_ids([finding(message="other")])


def test_duplicate_findings_get_occurrence_suffix():
    ids = finding_ids([finding(line=1), finding(line=2), finding(line=3)])
    assert len(set(ids)) == 3
    assert ids[1] == f"{ids[0]}-2" and ids[2] == f"{ids[0]}-3"


# -- JSON ----------------------------------------------------------------------


def test_json_doc_round_trips_through_baseline(tmp_path):
    findings = [finding(), finding(rule="lock-order", message="cycle")]
    doc = to_json_doc(findings)
    assert doc["version"] == 1
    assert [f["rule"] for f in doc["findings"]] == [
        "resource-leak",
        "lock-order",
    ]
    path = tmp_path / "baseline.json"
    write_baseline(findings, path)
    known = load_baseline(path)
    new, old = partition_baseline(findings, known)
    assert new == [] and len(old) == 2


def test_bare_id_list_baseline_accepted(tmp_path):
    findings = [finding()]
    path = tmp_path / "ids.json"
    path.write_text(json.dumps(finding_ids(findings)), encoding="utf-8")
    new, old = partition_baseline(findings, load_baseline(path))
    assert new == [] and len(old) == 1


def test_ratchet_fails_only_new_findings(tmp_path):
    known_finding = finding()
    path = tmp_path / "baseline.json"
    write_baseline([known_finding], path)
    fresh = finding(rule="crash-unwind", message="swallowed")
    new, old = partition_baseline(
        [known_finding, fresh], load_baseline(path)
    )
    assert [f.rule for f in new] == ["crash-unwind"]
    assert [f.rule for f in old] == ["resource-leak"]


def test_ratchet_duplicates_match_by_multiset(tmp_path):
    one = finding(line=1)
    path = tmp_path / "baseline.json"
    write_baseline([one], path)
    # Two identical findings against a baseline listing one: one is new.
    new, old = partition_baseline(
        [finding(line=1), finding(line=2)], load_baseline(path)
    )
    assert len(new) == 1 and len(old) == 1


# -- SARIF ---------------------------------------------------------------------


def test_sarif_minimum_schema_shape():
    findings = [finding(), finding(rule="lock-order", message="cycle")]
    doc = to_sarif_doc(findings)
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analysis"
    assert {r["id"] for r in driver["rules"]} == {
        "resource-leak",
        "lock-order",
    }
    for result, expected in zip(run["results"], findings):
        assert result["ruleId"] == expected.rule
        assert result["level"] == "error"
        assert result["message"]["text"] == expected.message
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == expected.path
        assert location["region"]["startLine"] == expected.line
        assert result["partialFingerprints"]["reproAnalysis/v1"]


def test_render_dispatch():
    findings = [finding()]
    assert json.loads(render(findings, "json"))["version"] == 1
    assert json.loads(render(findings, "sarif"))["version"] == "2.1.0"
    assert "resource-leak" in render(findings, "text")


# -- CLI integration -----------------------------------------------------------


BAD_SOURCE = (
    '"""Doc."""\nimport time\n\n\ndef stamp():\n'
    '    """Doc."""\n    return time.time()\n'
)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE, encoding="utf-8")
    return path


def test_cli_json_format(bad_file, capsys):
    assert main(["--format=json", str(bad_file)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"][0]["rule"] == "wallclock-purity"


def test_cli_sarif_format(bad_file, capsys):
    assert main(["--format=sarif", str(bad_file)]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"][0]["ruleId"] == "wallclock-purity"


def test_cli_json_clean_tree_emits_empty_doc(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text('"""Doc."""\n', encoding="utf-8")
    assert main(["--format=json", str(clean)]) == 0
    assert json.loads(capsys.readouterr().out)["findings"] == []


def test_cli_baseline_ratchet(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(
        ["--write-baseline", str(baseline), str(bad_file)]
    ) == 0
    capsys.readouterr()
    # Baselined finding no longer fails the run.
    assert main(["--baseline", str(baseline), str(bad_file)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # A new violation alongside the baselined one fails again.
    worse = tmp_path / "worse.py"
    worse.write_text(BAD_SOURCE + "\n\nimport random\nR = random.random()\n")
    assert main(["--baseline", str(baseline), str(worse)]) == 1


def test_cli_missing_baseline_is_usage_error(bad_file, capsys):
    assert main(
        ["--baseline", "/nonexistent/baseline.json", str(bad_file)]
    ) == 2


def test_cli_deep_flag_runs_deep_rules(tmp_path, capsys):
    leaky = tmp_path / "leaky.py"
    leaky.write_text(
        '"""Doc."""\n\n\ndef use(pool):\n    """Doc."""\n'
        '    session = pool.acquire("t")\n    return None\n',
        encoding="utf-8",
    )
    assert main(["--deep", str(leaky)]) == 1
    out = capsys.readouterr().out
    assert "resource-leak" in out
    # Restricting --rules to a lint rule keeps deep quiet.
    assert main(["--deep", "--rules", "wallclock-purity", str(leaky)]) == 0
