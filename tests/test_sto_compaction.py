"""Tests for data compaction (Section 5.1)."""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from repro.engine.statistics import collect_stats, file_health
from tests.conftest import small_config


def count(table="t"):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64),
            "v": np.arange(start, start + n, dtype=np.float64)}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    return s


def table_id(dw, name="t"):
    txn = dw.context.sqldb.begin()
    try:
        from repro.sqldb import system_tables as st
        return st.find_table_by_name(txn, name)["table_id"]
    finally:
        txn.abort()


class TestFileHealth:
    def test_fragmented_file_is_unhealthy(self, dw, session):
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(50)))
        snapshot = session.table_snapshot("t")
        stats = collect_stats(table_id(dw), snapshot, dw.config.sto)
        assert not stats.healthy
        assert stats.deleted_rows == 50

    def test_healthy_after_fresh_load(self, dw, session):
        session.insert("t", ids(100))
        snapshot = session.table_snapshot("t")
        report = file_health(snapshot, dw.config.sto)
        assert all(h.healthy for h in report)

    def test_small_files_are_unhealthy(self, dw, session):
        config = dw.config.sto
        # Two trickle inserts: each cell holds two tiny mergeable files.
        session.insert("t", ids(8))
        session.insert("t", ids(8, start=100))
        snapshot = session.table_snapshot("t")
        report = file_health(snapshot, config)
        assert all(not h.healthy for h in report)  # below min_healthy_rows

    def test_singleton_small_file_is_healthy(self, dw, session):
        """A lone tiny file per cell has nothing to merge with: healthy."""
        session.insert("t", ids(8))  # 8 rows over 4 distributions: 2/file
        snapshot = session.table_snapshot("t")
        report = file_health(snapshot, dw.config.sto)
        assert all(h.healthy for h in report)


class TestCompaction:
    def test_compaction_filters_deleted_rows(self, dw, session):
        session.insert("t", ids(200))
        session.delete("t", BinOp("<", Col("id"), Lit(100)))
        result = dw.sto.run_compaction(table_id(dw))
        assert result.committed
        assert result.files_rewritten > 0
        snapshot = session.table_snapshot("t")
        assert snapshot.dvs == {}  # DVs folded into rewritten files
        assert snapshot.live_rows == 100
        assert dw.session().query(count())["n"][0] == 100

    def test_compaction_preserves_query_results(self, dw, session):
        session.insert("t", ids(200))
        session.delete("t", BinOp("==", Col("id"), Lit(7)))
        before = dw.session().query(TableScan("t", ("id",)))
        dw.sto.run_compaction(table_id(dw))
        after = dw.session().query(TableScan("t", ("id",)))
        assert sorted(before["id"].tolist()) == sorted(after["id"].tolist())

    def test_compaction_merges_small_files(self, dw, session):
        for i in range(5):
            session.insert("t", ids(4, start=i * 4))  # tiny files pile up
        before = len(session.table_snapshot("t").files)
        result = dw.sto.run_compaction(table_id(dw))
        assert result.committed
        after = len(session.table_snapshot("t").files)
        assert after < before

    def test_healthy_table_is_noop(self, dw, session):
        session.insert("t", ids(200))
        result = dw.sto.run_compaction(table_id(dw))
        assert result.committed
        assert result.files_rewritten == 0

    def test_unknown_table_is_noop(self, dw):
        result = dw.sto.run_compaction(99999)
        assert not result.committed

    def test_old_files_tombstoned_not_deleted(self, dw, session):
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(50)))
        old_paths = {f.path for f in session.table_snapshot("t").files.values()}
        dw.sto.run_compaction(table_id(dw))
        # Rewritten files logically removed but physically present.
        assert all(dw.store.exists(p) for p in old_paths)
        snapshot = session.table_snapshot("t")
        tomb_paths = {t.path for t in snapshot.tombstones}
        assert old_paths <= tomb_paths

    def test_compaction_conflicts_with_user_delete(self, dw, session):
        """The paper's caveat: compaction can conflict with user txns."""
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(40)))
        user = dw.session()
        user.begin()
        user.delete("t", BinOp("==", Col("id"), Lit(60)))
        user.commit()  # commits first...
        result = dw.sto.run_compaction(table_id(dw))
        assert result.committed  # ...so compaction (started after) is fine

        # Now the reverse: compaction commits while a user txn has deleted.
        # Heavy fragmentation so compaction really rewrites files.
        session.delete("t", BinOp("<", Col("id"), Lit(78)))
        user2 = dw.session()
        user2.begin()
        user2.delete("t", BinOp("==", Col("id"), Lit(80)))
        result = dw.sto.run_compaction(table_id(dw))
        assert result.committed
        assert result.files_rewritten > 0
        from repro.common.errors import WriteConflictError
        with pytest.raises(WriteConflictError):
            user2.commit()

    def test_compaction_invisible_until_commit(self, dw, session):
        """A reader pinned before compaction keeps its view."""
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(20)))
        reader = dw.session()
        reader.begin()
        assert reader.query(count())["n"][0] == 80
        dw.sto.run_compaction(table_id(dw))
        assert reader.query(count())["n"][0] == 80
        reader.commit()
