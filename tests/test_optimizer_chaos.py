"""Crash safety of ANALYZE / CREATE INDEX and the STO maintenance jobs."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.chaos import ChaosController, RecoveryManager, SimulatedCrash
from repro.sqldb import system_tables as catalog

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def rows(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


@pytest.fixture
def loaded(warehouse, session):
    table_id = session.create_table("t", SCHEMA, distribution_column="id")
    session.insert("t", rows(0, 100))
    return warehouse, session, table_id


def crash_at(site, thunk):
    controller = ChaosController(seed=0).arm(site)
    with controller:
        with pytest.raises(SimulatedCrash):
            thunk()


def catalog_read(dw, fn):
    txn = dw.context.sqldb.begin()
    try:
        return fn(txn)
    finally:
        txn.abort()


class TestAnalyzeCrash:
    def test_crash_before_stats_put_leaves_no_row(self, loaded):
        dw, session, table_id = loaded
        crash_at(
            "fe.analyze.before_stats_put", lambda: session.analyze_table("t")
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.in_doubt_aborted == 1  # the crashed ANALYZE txn
        latest = catalog_read(
            dw, lambda txn: catalog.latest_table_stats(txn, table_id, 10**9)
        )
        assert latest is None
        # The statement is safely re-runnable after recovery.
        stats = session.analyze_table("t")
        assert stats.row_count == 100


class TestIndexCrash:
    def test_crash_between_blob_and_row_is_scavenged(self, loaded):
        dw, session, table_id = loaded
        crash_at(
            "fe.index.after_file_put",
            lambda: session.create_index("t", "idx", "id"),
        )
        # The blob was written but the catalog row never committed.
        orphans = [
            b.path for b in dw.context.store.list() if "/_indexes/" in b.path
        ]
        assert len(orphans) == 1
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.orphan_index_blobs_deleted == orphans
        assert not any(
            "/_indexes/" in b.path for b in dw.context.store.list()
        )
        assert catalog_read(
            dw, lambda txn: catalog.indexes_for_table(txn, table_id)
        ) == []
        # Rebuild succeeds and queries prune through it.
        session.create_index("t", "idx", "id")
        assert list(session.sql("SELECT v FROM t WHERE id = 7")["v"]) == [7.0]

    def test_index_row_with_missing_blob_dropped(self, loaded):
        dw, session, table_id = loaded
        payload = session.create_index("t", "idx", "id")
        dw.context.store.delete(payload["path"])
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.index_rows_dropped == [payload["path"]]
        assert catalog_read(
            dw, lambda txn: catalog.indexes_for_table(txn, table_id)
        ) == []
        # Indexes are an optimization: the table still answers queries.
        assert list(session.sql("SELECT v FROM t WHERE id = 7")["v"]) == [7.0]

    def test_healthy_index_survives_recovery(self, loaded):
        dw, session, table_id = loaded
        session.create_index("t", "idx", "id")
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.clean
        listed = catalog_read(
            dw, lambda txn: catalog.indexes_for_table(txn, table_id)
        )
        assert [r["index_name"] for r in listed] == ["idx"]


class TestGcSafety:
    def test_gc_keeps_referenced_index_blobs(self, loaded):
        dw, session, table_id = loaded
        payload = session.create_index("t", "idx", "id")
        dw.context.clock.advance(dw.config.sto.retention_period_s * 3)
        dw.sto.run_gc()
        assert dw.context.store.get(payload["path"]) is not None

    def test_gc_collects_superseded_index_blobs(self, loaded):
        dw, session, table_id = loaded
        first = session.create_index("t", "idx", "id")
        session.insert("t", rows(100, 50))
        second = session.create_index("t", "idx", "id")
        assert first["path"] != second["path"]
        dw.context.clock.advance(dw.config.sto.retention_period_s * 3)
        dw.sto.run_gc()
        paths = {b.path for b in dw.context.store.list()}
        assert second["path"] in paths
        assert first["path"] not in paths


class TestStoMaintenance:
    def _warehouse(self, config, analyze_rows=0):
        config.optimizer.auto_analyze_rows = analyze_rows
        return Warehouse(config=config, auto_optimize=True)

    def test_auto_analyze_fires_on_ingest_volume(self, config):
        dw = self._warehouse(config, analyze_rows=120)
        session = dw.session()
        table_id = session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 100))  # 100 < 120: below threshold
        assert dw.sto.auto_analyzes.get(table_id) is None
        session.insert("t", rows(100, 50))  # cumulative 150 >= 120
        assert dw.sto.auto_analyzes.get(table_id) == 1
        latest = catalog_read(
            dw, lambda txn: catalog.latest_table_stats(txn, table_id, 10**9)
        )
        assert latest is not None
        assert latest["source"] == "auto"
        assert latest["row_count"] == 150

    def test_auto_analyze_disabled_by_default(self, config):
        dw = self._warehouse(config)
        session = dw.session()
        table_id = session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 500))
        assert dw.sto.auto_analyzes.get(table_id) is None

    def test_commit_refreshes_stale_index(self, config):
        dw = self._warehouse(config)
        session = dw.session()
        table_id = session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 100))
        built = session.create_index("t", "idx", "id")
        session.insert("t", rows(100, 50))
        assert dw.sto.index_refreshes.get(table_id, 0) >= 1
        row = catalog_read(
            dw, lambda txn: catalog.indexes_for_table(txn, table_id)
        )[0]
        assert row["sequence_id"] > built["sequence_id"]
        # The refreshed index covers the new files, so a probe into the
        # newest rows prunes instead of falling back to a full scan.
        assert sorted(row["covered_files"]) == sorted(
            session.table_snapshot("t").files
        )

    def test_compaction_refreshes_index(self, config):
        config.sto.max_deleted_fraction = 0.1
        dw = self._warehouse(config)
        session = dw.session()
        table_id = session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 100))
        session.create_index("t", "idx", "id")
        session.sql("DELETE FROM t WHERE id < 50")
        dw.sto.tick()
        row = catalog_read(
            dw, lambda txn: catalog.indexes_for_table(txn, table_id)
        )[0]
        # Every covered file is live post-compaction: nothing stale.
        live = set(session.table_snapshot("t").files)
        assert set(row["covered_files"]) <= live or dw.sto.index_refreshes.get(
            table_id, 0
        ) >= 1
