"""Edge-path coverage: commit lock, manifest IO, backup details, scheduler."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.common.clock import SimulatedClock
from repro.common.config import DcpConfig, PolarisConfig
from repro.common.errors import TaskFailedError
from repro.dcp import Scheduler, Task, Topology, WorkflowDag
from repro.dcp.costmodel import CostModel
from repro.sqldb.locks import CommitLock
from repro.storage import ObjectStore
from tests.conftest import small_config


class TestCommitLock:
    def test_reentry_detected(self):
        lock = CommitLock()
        with lock.held(1):
            assert lock.is_held
            with pytest.raises(AssertionError, match="re-entered"):
                with lock.held(2):
                    pass
        assert not lock.is_held

    def test_released_on_exception(self):
        lock = CommitLock()
        with pytest.raises(RuntimeError):
            with lock.held(1):
                raise RuntimeError("boom")
        assert not lock.is_held
        assert lock.acquisitions == 1

    def test_acquisition_count(self):
        lock = CommitLock()
        for txid in range(3):
            with lock.held(txid):
                pass
        assert lock.acquisitions == 3


class TestManifestIo:
    def test_missing_checkpoint_blob_falls_back(self):
        """A checkpoint row whose blob vanished must not break reads."""
        dw = Warehouse(config=small_config(), auto_optimize=False)
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", {"id": np.arange(10, dtype=np.int64),
                             "v": np.zeros(10)})
        result = dw.sto.run_checkpoint(1001)
        dw.store.delete(result.path)  # simulate a lost checkpoint blob
        dw.context.cache.invalidate()
        assert session.table_snapshot("t").live_rows == 10  # full replay


class TestBackupDetails:
    def test_file_granularity_writesets_roundtrip(self):
        config = small_config()
        config.txn.conflict_granularity = "file"
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        from repro import BinOp, Col, Lit
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", {"id": np.arange(10, dtype=np.int64),
                             "v": np.zeros(10)})
        session.delete("t", BinOp("==", Col("id"), Lit(1)))
        backup = dw.backup()
        dw.restore(backup)
        # WriteSets rows with (table, file) keys survived the roundtrip.
        from repro.sqldb import system_tables as st
        txn = dw.context.sqldb.begin()
        rows = list(txn.scan(st.WRITESETS))
        txn.abort()
        assert rows and all("data_file_name" in r for r in rows)

    def test_restore_same_state_is_idempotent(self):
        dw = Warehouse(config=small_config(), auto_optimize=False)
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        session.insert("t", {"id": np.arange(5, dtype=np.int64),
                             "v": np.zeros(5)})
        backup = dw.backup()
        dw.restore(backup)
        dw.restore(dw.backup())
        assert dw.session().table_snapshot("t").live_rows == 5


class TestSchedulerEdges:
    def test_empty_pool_raises(self):
        config = PolarisConfig()
        clock = SimulatedClock()
        store = ObjectStore(clock=clock, config=config.storage)
        scheduler = Scheduler(
            clock, store, CostModel(config.dcp, config.storage), config.dcp
        )
        topology = Topology()  # no nodes at all
        dag = WorkflowDag()
        dag.add_task(Task("t", lambda c: None))
        with pytest.raises(TaskFailedError, match="no compute nodes"):
            scheduler.execute(dag, topology=topology)

    def test_empty_dag(self):
        config = PolarisConfig()
        clock = SimulatedClock()
        store = ObjectStore(clock=clock, config=config.storage)
        scheduler = Scheduler(
            clock, store, CostModel(config.dcp, config.storage), config.dcp
        )
        topology = Topology()
        topology.add_node()
        result = scheduler.execute(WorkflowDag(), topology=topology)
        assert result.makespan == 0.0
        assert result.results == {}

    def test_task_exception_propagates(self):
        config = PolarisConfig()
        clock = SimulatedClock()
        store = ObjectStore(clock=clock, config=config.storage)
        scheduler = Scheduler(
            clock, store, CostModel(config.dcp, config.storage), config.dcp
        )
        topology = Topology()
        topology.add_node()
        dag = WorkflowDag()

        def bug(ctx):
            raise ValueError("task bug")

        dag.add_task(Task("t", bug))
        # Non-transient errors are bugs, not retriable faults.
        with pytest.raises(ValueError, match="task bug"):
            scheduler.execute(dag, topology=topology)


class TestSnapshotOverlayEdge:
    def test_txn_snapshot_with_rewrite_then_read(self):
        """Overlay must stay valid after multiple reconciling rewrites."""
        from repro import BinOp, Col, Lit
        dw = Warehouse(config=small_config(), auto_optimize=False)
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert("t", {"id": np.arange(20, dtype=np.int64),
                             "v": np.zeros(20)})
        session.begin()
        for bound in (5, 10, 15):
            session.delete("t", BinOp("<", Col("id"), Lit(bound)))
            snapshot = session._txn.table_snapshot(1001)
            assert snapshot.live_rows == 20 - bound
        session.commit()
        assert dw.session().table_snapshot("t").live_rows == 5
