"""Tests for the systematic crash sweep and the longevity soak."""

import pytest

from repro.chaos import CRASHPOINTS, run_crash_sweep, run_longevity
from repro.chaos.harness import (
    RECOVERY_SITES,
    WORKLOAD_SITES,
    ChaosWorkload,
    run_site,
)


class TestCrashSweep:
    def test_full_sweep_crashes_and_recovers_every_site(self):
        result = run_crash_sweep(seed=0)
        assert len(result.sites) == len(WORKLOAD_SITES)
        assert set(WORKLOAD_SITES) | set(RECOVERY_SITES) == set(CRASHPOINTS)
        problems = [
            f"{site.site}: {problem}"
            for site in result.failures
            for problem in site.problems
        ]
        assert result.ok, "\n".join(problems)
        for site in result.sites:
            assert site.crashed_at_step, f"{site.site} never fired"
            assert site.recovery is not None

    def test_sweep_is_deterministic(self):
        subset = [
            "fe.commit.after_sqldb_commit",
            "sto.gc.mid_delete",
            "sto.compaction.before_commit",
        ]
        first = run_crash_sweep(seed=7, sites=subset).summary()
        second = run_crash_sweep(seed=7, sites=subset).summary()
        assert first == second

    def test_single_site_runner_matches_sweep(self):
        site = "fe.write.after_manifest_flush"
        alone = run_site(site, seed=0).summary()
        swept = run_crash_sweep(seed=0, sites=[site]).summary()
        assert swept == [alone]


class TestDoubleCrash:
    def test_recovery_sites_registered(self):
        assert len(RECOVERY_SITES) == 7
        assert all(site.startswith("recovery.") for site in RECOVERY_SITES)

    def test_double_crash_workload_site_recovers(self):
        result = run_site("fe.commit.after_sqldb_commit", seed=0, double_crash=True)
        assert result.ok, "\n".join(result.problems)

    def test_double_crash_gateway_site_recovers(self):
        result = run_site("service.admit.after_enqueue", seed=0, double_crash=True)
        assert result.ok, "\n".join(result.problems)

    def test_double_crash_is_deterministic(self):
        site = "sto.checkpoint.after_blob_put"
        first = run_site(site, seed=5, double_crash=True).summary()
        second = run_site(site, seed=5, double_crash=True).summary()
        assert first == second

    def test_recovery_site_cannot_be_armed_directly(self):
        with pytest.raises(ValueError):
            run_site("recovery.staged.after_discard", seed=0)


class TestWorkloadOracle:
    def test_workload_completes_without_chaos(self):
        workload = ChaosWorkload(seed=0)
        assert workload.run_until_crash() is None
        assert workload.acknowledged == {"orders": 510, "events": 200}
        counts = {
            name: workload.session.table_snapshot(name).live_rows
            for name in ("orders", "events")
        }
        assert counts == workload.acknowledged
        workload.recorder.detach()

    def test_allowed_counts_window(self):
        workload = ChaosWorkload(seed=0)
        workload.acknowledged = {"orders": 400}
        workload.pending = {"orders": 100}
        assert workload.allowed_counts("orders") == {400, 500}
        assert workload.allowed_counts("events") == {0}


class TestLongevity:
    def test_longevity_with_faults_stays_consistent(self):
        result = run_longevity(seed=0, steps=60, failure_rate=0.02)
        assert result.ok, "\n".join(result.problems)
        assert result.ops_completed > 0
        assert result.faults_injected > 0

    def test_longevity_is_deterministic(self):
        def fingerprint():
            result = run_longevity(seed=3, steps=40, failure_rate=0.05)
            return (
                result.ops_completed,
                result.ops_failed,
                result.faults_injected,
                tuple(result.problems),
            )

        assert fingerprint() == fingerprint()
