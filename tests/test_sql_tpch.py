"""SQL-vs-plan equivalence on TPC-H queries expressible in the dialect.

Several TPC-H queries can be written directly in the SQL dialect; for
each, the SQL text must produce exactly the same result as the
hand-built plan in :mod:`repro.workloads.tpch.queries`, through the full
warehouse stack.
"""

import numpy as np
import pytest

from repro import SqlSession, Warehouse
from repro.engine.batch import num_rows
from repro.workloads.tpch import TPCH_QUERIES, TpchGenerator
from repro.workloads.tpch.schema import TPCH_DISTRIBUTION, TPCH_SCHEMAS
from tests.conftest import small_config

Q1_SQL = """
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1.0 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q3_SQL = """
SELECT l_orderkey, o_orderdate, o_shippriority,
       SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

Q6_SQL = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24.0
"""

Q10_SQL = """
SELECT c_custkey, c_name, c_acctbal, n_name,
       SUM(l_extendedprice * (1.0 - l_discount)) AS revenue
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
JOIN customer ON o_custkey = c_custkey
JOIN nation ON c_nationkey = n_nationkey
WHERE l_returnflag = 'R'
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
GROUP BY c_custkey, c_name, c_acctbal, n_name
ORDER BY revenue DESC
LIMIT 20
"""

Q12_SQL = """
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH')
                THEN 0 ELSE 1 END) AS low_line_count
FROM lineitem
JOIN orders ON l_orderkey = o_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

Q14_SQL = """
SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1.0 - l_discount)
                        ELSE 0.0 END)
       / SUM(l_extendedprice * (1.0 - l_discount)) AS promo_revenue
FROM lineitem
JOIN part ON l_partkey = p_partkey
WHERE l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'
"""

SQL_QUERIES = {1: Q1_SQL, 3: Q3_SQL, 6: Q6_SQL, 10: Q10_SQL, 12: Q12_SQL, 14: Q14_SQL}


@pytest.fixture(scope="module")
def sql():
    dw = Warehouse(config=small_config(), auto_optimize=False)
    session = dw.session()
    generator = TpchGenerator(scale_factor=0.05, seed=42)
    for name, batch in generator.all_tables().items():
        session.create_table(name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name])
        session.insert(name, batch)
    return SqlSession(session)


def canonical(batch):
    names = sorted(batch)
    rows = []
    for i in range(num_rows(batch)):
        row = []
        for name in names:
            value = batch[name][i]
            if isinstance(value, (float, np.floating)):
                row.append(round(float(value), 5))
            else:
                row.append(value)
        rows.append(tuple(row))
    return sorted(rows, key=repr)


@pytest.mark.parametrize("qnum", sorted(SQL_QUERIES))
def test_sql_matches_plan(qnum, sql):
    via_sql = sql.execute(SQL_QUERIES[qnum])
    via_plan = sql.session.query(TPCH_QUERIES[qnum]())
    assert set(via_sql) == set(via_plan)
    if qnum in (3, 10):
        # Top-N with ties: row counts and top values must agree.
        assert num_rows(via_sql) == num_rows(via_plan)
        np.testing.assert_allclose(
            np.sort(via_sql["revenue"]), np.sort(via_plan["revenue"])
        )
    else:
        assert canonical(via_sql) == canonical(via_plan)
