"""SQL-vs-plan equivalence on TPC-H queries expressible in the dialect.

Several TPC-H queries can be written directly in the SQL dialect; for
each, the SQL text must produce exactly the same result as the
hand-built plan in :mod:`repro.workloads.tpch.queries`, through the full
warehouse stack.
"""

import numpy as np
import pytest

from repro import SqlSession, Warehouse
from repro.engine.batch import num_rows
from repro.workloads.tpch import TPCH_QUERIES, TPCH_SQL_QUERIES, TpchGenerator
from repro.workloads.tpch.schema import TPCH_DISTRIBUTION, TPCH_SCHEMAS
from tests.conftest import small_config

#: The SQL texts live in repro.workloads.tpch.queries_sql so the
#: query store's fingerprint corpus and benchmarks share them.
SQL_QUERIES = TPCH_SQL_QUERIES


@pytest.fixture(scope="module")
def sql():
    dw = Warehouse(config=small_config(), auto_optimize=False)
    session = dw.session()
    generator = TpchGenerator(scale_factor=0.05, seed=42)
    for name, batch in generator.all_tables().items():
        session.create_table(name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name])
        session.insert(name, batch)
    return SqlSession(session)


def canonical(batch):
    names = sorted(batch)
    rows = []
    for i in range(num_rows(batch)):
        row = []
        for name in names:
            value = batch[name][i]
            if isinstance(value, (float, np.floating)):
                row.append(round(float(value), 5))
            else:
                row.append(value)
        rows.append(tuple(row))
    return sorted(rows, key=repr)


@pytest.mark.parametrize("qnum", sorted(SQL_QUERIES))
def test_sql_matches_plan(qnum, sql):
    via_sql = sql.execute(SQL_QUERIES[qnum])
    via_plan = sql.session.query(TPCH_QUERIES[qnum]())
    assert set(via_sql) == set(via_plan)
    if qnum in (3, 10):
        # Top-N with ties: row counts and top values must agree.
        assert num_rows(via_sql) == num_rows(via_plan)
        np.testing.assert_allclose(
            np.sort(via_sql["revenue"]), np.sort(via_plan["revenue"])
        )
    else:
        assert canonical(via_sql) == canonical(via_plan)
