"""Tests for the distributed write and read paths: DML semantics, bulk
loads, pruning, updates over DVs, and schema validation."""

import numpy as np
import pytest

from repro import (
    Aggregate,
    BinOp,
    Col,
    Filter,
    Lit,
    Schema,
    TableScan,
    Warehouse,
    and_,
)
from repro.common.errors import CatalogError, SchemaMismatchError
from tests.conftest import small_config


def count(table="t"):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64),
            "v": np.arange(start, start + n, dtype=np.float64)}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    return s


class TestInsert:
    def test_rows_split_across_distributions(self, dw, session):
        session.insert("t", ids(100))
        snapshot = session.table_snapshot("t")
        distributions = {f.distribution for f in snapshot.files.values()}
        assert len(distributions) == dw.config.distributions

    def test_insert_returns_row_count(self, session):
        assert session.insert("t", ids(42)) == 42

    def test_empty_insert_is_noop(self, dw, session):
        assert session.insert("t", ids(0)) == 0
        assert session.table_snapshot("t").files == {}

    def test_schema_mismatch_rejected(self, session):
        with pytest.raises(SchemaMismatchError):
            session.insert("t", {"wrong": np.arange(3)})

    def test_unknown_table_rejected(self, session):
        with pytest.raises(CatalogError):
            session.insert("ghost", ids(1))

    def test_round_robin_without_distribution_column(self, dw):
        session = dw.session()
        session.create_table("rr", Schema.of(("id", "int64"), ("v", "float64")))
        session.insert("rr", ids(40))
        snapshot = session.table_snapshot("rr")
        assert len(snapshot.files) == dw.config.distributions

    def test_data_files_stamped_for_gc(self, dw, session):
        session.insert("t", ids(10))
        snapshot = session.table_snapshot("t")
        for info in snapshot.files.values():
            blob = dw.store.head(info.path)
            assert "creator_txid" in blob.metadata
            assert "creator_begin_ts" in blob.metadata


class TestBulkLoad:
    def test_one_file_per_source(self, dw, session):
        sources = [ids(10, start=i * 10) for i in range(6)]
        total = session.bulk_load("t", sources)
        assert total == 60
        assert len(session.table_snapshot("t").files) == 6

    def test_elastic_pool_resizes_with_sources(self):
        # CPU cost dominates (tiny rows-per-node), so parallelism is capped
        # by the source-file count: 8 sources / 2 slots per node → 4 nodes.
        config = small_config()
        config.dcp.rows_per_node_million = 1e-6
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        session.bulk_load("t", [ids(5, start=i * 5) for i in range(8)])
        assert dw.context.wlm.pool("write").size == 4

    def test_fixed_deployment_keeps_pool_size(self):
        dw = Warehouse(config=small_config(), elastic=False, auto_optimize=False)
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        before = dw.context.wlm.pool("write").size
        session.bulk_load("t", [ids(5, start=i * 5) for i in range(8)])
        assert dw.context.wlm.pool("write").size == before

    def test_empty_sources_skipped(self, session):
        total = session.bulk_load("t", [ids(5), ids(0), ids(5, start=10)])
        assert total == 10
        assert len(session.table_snapshot("t").files) == 2


class TestDelete:
    def test_delete_by_predicate(self, dw, session):
        session.insert("t", ids(100))
        deleted = session.delete("t", BinOp("<", Col("id"), Lit(30)))
        assert deleted == 30
        assert dw.session().query(count())["n"][0] == 70

    def test_delete_nothing(self, session):
        session.insert("t", ids(10))
        assert session.delete("t", BinOp(">", Col("id"), Lit(999))) == 0

    def test_delete_everything(self, dw, session):
        session.insert("t", ids(10))
        assert session.delete("t", BinOp(">=", Col("id"), Lit(0))) == 10
        assert dw.session().query(count())["n"][0] == 0

    def test_second_delete_merges_dv(self, dw, session):
        session.insert("t", ids(100))
        session.delete("t", BinOp("<", Col("id"), Lit(10)))
        session.delete("t", and_(BinOp(">=", Col("id"), Lit(10)),
                                 BinOp("<", Col("id"), Lit(20))))
        snapshot = session.table_snapshot("t")
        # Per data file at most one DV (old one replaced by merged one).
        assert set(snapshot.dvs) <= set(snapshot.files)
        total_deleted = sum(dv.cardinality for dv in snapshot.dvs.values())
        assert total_deleted == 20
        assert dw.session().query(count())["n"][0] == 80

    def test_delete_with_prune_hint(self, dw, session):
        session.insert("t", ids(100))
        deleted = session.delete(
            "t",
            BinOp("==", Col("id"), Lit(55)),
            prune=[("id", "==", 55)],
        )
        assert deleted == 1

    def test_deleted_rows_invisible_to_scan(self, dw, session):
        session.insert("t", ids(20))
        session.delete("t", BinOp("==", Col("id"), Lit(7)))
        out = dw.session().query(TableScan("t", ("id",)))
        assert 7 not in out["id"]


class TestUpdate:
    def test_update_changes_values(self, dw, session):
        session.insert("t", ids(20))
        updated = session.update(
            "t", BinOp("<", Col("id"), Lit(5)), {"v": Lit(-1.0)}
        )
        assert updated == 5
        out = dw.session().query(TableScan("t", ("id", "v")))
        by_id = dict(zip(out["id"].tolist(), out["v"].tolist()))
        assert all(by_id[i] == -1.0 for i in range(5))
        assert by_id[10] == 10.0

    def test_update_preserves_row_count(self, dw, session):
        session.insert("t", ids(50))
        session.update("t", BinOp(">=", Col("id"), Lit(0)),
                       {"v": BinOp("+", Col("v"), Lit(100.0))})
        assert dw.session().query(count())["n"][0] == 50

    def test_update_expression_uses_old_values(self, dw, session):
        session.insert("t", ids(10))
        session.update("t", BinOp("==", Col("id"), Lit(3)),
                       {"v": BinOp("*", Col("v"), Lit(10.0))})
        out = dw.session().query(
            Filter(TableScan("t", ("id", "v")), BinOp("==", Col("id"), Lit(3)))
        )
        assert out["v"][0] == 30.0

    def test_update_nothing(self, session):
        session.insert("t", ids(10))
        assert session.update("t", BinOp(">", Col("id"), Lit(99)),
                              {"v": Lit(0.0)}) == 0


class TestReadPath:
    def test_projection_only_reads_requested_columns(self, dw, session):
        session.insert("t", ids(10))
        out = dw.session().query(TableScan("t", ("v",)))
        assert list(out) == ["v"]

    def test_scan_prune_hint_correct(self, dw, session):
        session.insert("t", ids(100))
        out = dw.session().query(
            TableScan("t", ("id",), predicate=BinOp(">", Col("id"), Lit(90)),
                      prune=(("id", ">", 90),))
        )
        assert sorted(out["id"].tolist()) == list(range(91, 100))

    def test_empty_table_scan(self, dw, session):
        out = dw.session().query(TableScan("t", ("id", "v")))
        assert len(out["id"]) == 0

    def test_scan_publishes_stats(self, dw, session):
        session.insert("t", ids(10))
        seen = []
        dw.context.bus.subscribe("stats.table", seen.append)
        dw.session().query(count())
        assert seen
        assert seen[-1].payload["stats"].total_rows == 10

    def test_elastic_read_pool_resizes(self, dw, session):
        session.insert("t", ids(100))
        dw.session().query(count())
        assert dw.context.wlm.pool("read").size >= 1
