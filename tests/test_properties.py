"""Property-based tests (hypothesis) for the core invariants of DESIGN.md.

Covered invariants:

1. manifest replay determinism / checkpoint equivalence;
2. snapshot isolation — reads are a function of (begin sequence, own writes);
3. first-committer-wins under arbitrary interleavings;
6. block-blob content equals exactly the committed block list;
plus deletion-vector algebra and page-file roundtrips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WriteConflictError
from repro.lst import (
    AddDataFile,
    AddDeletionVector,
    Checkpoint,
    DataFileInfo,
    DeletionVectorInfo,
    RemoveDataFile,
    RemoveDeletionVector,
    decode_manifest,
    encode_actions,
    reconcile_actions,
    replay,
)
from repro.pagefile import DeletionVector, PageFileReader, Schema, write_page_file
from repro.sqldb import SqlDbEngine
from repro.storage import ObjectStore

# -- deletion vectors -----------------------------------------------------------

positions = st.lists(st.integers(min_value=0, max_value=5000), max_size=200)


@given(positions)
def test_dv_roundtrip(points):
    dv = DeletionVector(points)
    assert DeletionVector.from_bytes(dv.to_bytes()) == dv


@given(positions, positions)
def test_dv_union_is_set_union(a, b):
    merged = DeletionVector(a).union(DeletionVector(b))
    assert set(merged) == set(a) | set(b)


@given(positions, positions)
def test_dv_union_commutes(a, b):
    assert DeletionVector(a).union(DeletionVector(b)) == DeletionVector(b).union(
        DeletionVector(a)
    )


@given(positions)
def test_dv_union_idempotent(a):
    dv = DeletionVector(a)
    assert dv.union(dv) == dv


@given(positions, st.integers(0, 5000), st.integers(0, 5000))
def test_dv_range_query_matches_filter(points, lo, hi):
    dv = DeletionVector(points)
    expected = sorted({p for p in points if lo <= p < hi})
    assert dv.positions_in_range(lo, hi).tolist() == expected


# -- page files --------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-(2**40), max_value=2**40),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=20),
        ),
        max_size=300,
    ),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_pagefile_roundtrip(rows, row_group_size):
    schema = Schema.of(("i", "int64"), ("f", "float64"), ("s", "string"))
    columns = {
        "i": np.array([r[0] for r in rows], dtype=np.int64),
        "f": np.array([r[1] for r in rows], dtype=np.float64),
        "s": np.array([r[2] for r in rows], dtype=object),
    }
    data = write_page_file(schema, columns, row_group_size=row_group_size)
    out = PageFileReader(data).read()
    np.testing.assert_array_equal(out["i"], columns["i"])
    np.testing.assert_array_equal(out["f"], columns["f"])
    assert out["s"].tolist() == columns["s"].tolist()


@given(
    st.integers(min_value=0, max_value=100),
    st.sets(st.integers(min_value=0, max_value=99), max_size=100),
    st.integers(min_value=1, max_value=32),
)
@settings(max_examples=50, deadline=None)
def test_pagefile_dv_filtering_matches_mask(n, deleted, row_group_size):
    deleted = {d for d in deleted if d < n}
    schema = Schema.of(("i", "int64"))
    data = write_page_file(
        schema, {"i": np.arange(n, dtype=np.int64)}, row_group_size=row_group_size
    )
    out = PageFileReader(data).read(deletion_vector=DeletionVector(deleted))
    assert set(out["i"].tolist()) == set(range(n)) - deleted


# -- manifest replay -----------------------------------------------------------------


def _files(names):
    return [
        DataFileInfo(name=n, path=f"p/{n}", num_rows=10, size_bytes=80, distribution=0)
        for n in names
    ]


@st.composite
def manifest_histories(draw):
    """Random valid manifest histories: adds, removes, DV add/replace."""
    history = []
    live = {}  # name -> has_dv
    counter = 0
    steps = draw(st.integers(min_value=1, max_value=15))
    for seq in range(1, steps + 1):
        actions = []
        choice = draw(st.integers(0, 2))
        if choice == 0 or not live:
            counter += 1
            name = f"f{counter}"
            actions.append(AddDataFile(_files([name])[0]))
            live[name] = None
        elif choice == 1:
            name = draw(st.sampled_from(sorted(live)))
            info = _files([name])[0]
            actions.append(RemoveDataFile(info))
            del live[name]
        else:
            name = draw(st.sampled_from(sorted(live)))
            counter += 1
            new_dv = DeletionVectorInfo(
                name=f"d{counter}", path=f"p/d{counter}", target_file=name,
                cardinality=1, size_bytes=8,
            )
            if live[name] is not None:
                actions.append(RemoveDeletionVector(live[name]))
            actions.append(AddDeletionVector(new_dv))
            live[name] = new_dv
        history.append((seq, float(seq), actions))
    return history


@given(manifest_histories(), st.integers(min_value=0, max_value=15))
@settings(max_examples=100, deadline=None)
def test_checkpoint_equivalence(history, cut):
    """Invariant 1: checkpoint + tail replay ≡ full replay, at any cut."""
    cut = min(cut, len(history))
    full = replay(history)
    prefix = replay(history[:cut])
    restored = Checkpoint.from_bytes(Checkpoint.of(prefix, 0.0).to_bytes()).snapshot
    resumed = replay(history[cut:], base=restored)
    assert resumed.files == full.files
    assert resumed.dvs == full.dvs
    assert resumed.tombstones == full.tombstones


@given(manifest_histories())
@settings(max_examples=50, deadline=None)
def test_replay_deterministic(history):
    assert replay(history).files == replay(history).files


@given(manifest_histories())
@settings(max_examples=50, deadline=None)
def test_manifest_wire_roundtrip(history):
    for __, __, actions in history:
        assert decode_manifest(encode_actions(actions)) == actions


@given(manifest_histories())
@settings(max_examples=50, deadline=None)
def test_reconcile_net_actions_replayable(history):
    """Reconciled actions of any accumulated statement list must replay
    cleanly onto an empty table (private files only)."""
    all_actions = [a for __, __, actions in history for a in actions]
    # Keep only actions about private (this-transaction) objects: the
    # histories above start from empty, so everything is private.
    net, orphans = reconcile_actions(all_actions)
    from repro.lst import TableSnapshot

    snapshot = TableSnapshot().apply_manifest(net, 1, 0.0)
    live_paths = {f.path for f in snapshot.files.values()}
    live_paths |= {d.path for d in snapshot.dvs.values()}
    # Orphans are disjoint from what the manifest still references.
    assert not (set(orphans) & live_paths)


# -- block blob semantics ----------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=8), st.binary(max_size=32)),
        min_size=1,
        max_size=20,
        unique_by=lambda t: t[0],
    ),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_block_blob_content_is_committed_list(blocks, data):
    """Invariant 6: blob content == concatenation of committed ids, only."""
    store = ObjectStore()
    for block_id, payload in blocks:
        store.stage_block("m", block_id, payload)
    ids = [b[0] for b in blocks]
    chosen = data.draw(st.permutations(ids).map(lambda p: p[: len(p) // 2 + 1]))
    store.commit_block_list("m", list(chosen))
    by_id = dict(blocks)
    assert store.get("m").data == b"".join(by_id[i] for i in chosen)


# -- first committer wins --------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4)),  # (txn index, key)
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=100, deadline=None)
def test_first_committer_wins_any_interleaving(schedule):
    """Invariant 3: of concurrent txns writing one key, exactly one commits."""
    engine = SqlDbEngine()
    txns = [engine.begin() for __ in range(4)]
    wrote = [set() for __ in range(4)]
    for txn_index, key in schedule:
        txns[txn_index].put("T", (key,), {"by": txn_index})
        wrote[txn_index].add(key)
    outcomes = []
    for index, txn in enumerate(txns):
        if not wrote[index]:
            txn.abort()
            outcomes.append(None)
            continue
        try:
            txn.commit()
            outcomes.append(True)
        except WriteConflictError:
            outcomes.append(False)
    # All four transactions are mutually concurrent (all began before any
    # committed), so: (a) per key at most one of its writers commits, and
    # (b) the first transaction to attempt commit always succeeds.
    for key in range(5):
        committed_writers = [
            i for i in range(4) if key in wrote[i] and outcomes[i]
        ]
        assert len(committed_writers) <= 1
    first_writer = next((i for i in range(4) if wrote[i]), None)
    if first_writer is not None:
        assert outcomes[first_writer] is True


@given(st.lists(st.sampled_from(["a", "b"]), min_size=2, max_size=10))
@settings(max_examples=50, deadline=None)
def test_si_reads_pinned_to_begin(operations):
    """Invariant 2: an SI reader's view never changes mid-transaction."""
    engine = SqlDbEngine()
    setup = engine.begin()
    setup.put("T", (0,), {"v": 0})
    setup.commit()
    reader = engine.begin()
    first_view = reader.get("T", (0,))
    for op in operations:
        writer = engine.begin()
        writer.put("T", (0,), {"v": op})
        writer.commit()
        assert reader.get("T", (0,)) == first_view
