"""Tests for manifest encoding and intra-transaction reconciliation."""

import pytest

from repro.lst import (
    AddDataFile,
    AddDeletionVector,
    DataFileInfo,
    DeletionVectorInfo,
    RemoveDataFile,
    RemoveDeletionVector,
    decode_manifest,
    encode_actions,
    reconcile_actions,
)
from repro.lst.actions import action_from_dict


def df(name, rows=10, dist=0):
    return DataFileInfo(
        name=name, path=f"p/{name}", num_rows=rows, size_bytes=rows * 8,
        distribution=dist,
    )


def dv(name, target, cardinality=2):
    return DeletionVectorInfo(
        name=name, path=f"p/{name}", target_file=target,
        cardinality=cardinality, size_bytes=64,
    )


class TestWireFormat:
    def test_roundtrip_all_action_kinds(self):
        actions = [
            AddDataFile(df("f1")),
            RemoveDataFile(df("f2")),
            AddDeletionVector(dv("d1", "f1")),
            RemoveDeletionVector(dv("d0", "f1")),
        ]
        assert decode_manifest(encode_actions(actions)) == actions

    def test_block_concatenation(self):
        """The manifest is the concatenation of independently encoded blocks."""
        block1 = encode_actions([AddDataFile(df("f1"))])
        block2 = encode_actions([AddDataFile(df("f2"))])
        actions = decode_manifest(block1 + block2)
        assert [a.file.name for a in actions] == ["f1", "f2"]

    def test_empty_manifest(self):
        assert decode_manifest(b"") == []
        assert decode_manifest(encode_actions([])) == []

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown manifest action"):
            action_from_dict({"action": "mystery"})


class TestReconcile:
    def test_passthrough(self):
        actions = [AddDataFile(df("f1")), AddDeletionVector(dv("d1", "f2"))]
        net, orphans = reconcile_actions(actions)
        assert set(net) == set(actions)
        assert orphans == []

    def test_add_then_remove_cancels(self):
        net, orphans = reconcile_actions(
            [AddDataFile(df("f1")), RemoveDataFile(df("f1"))]
        )
        assert net == []
        assert orphans == ["p/f1"]

    def test_remove_of_committed_file_kept(self):
        net, orphans = reconcile_actions([RemoveDataFile(df("old"))])
        assert net == [RemoveDataFile(df("old"))]
        assert orphans == []

    def test_second_dv_supersedes_private_first(self):
        """Update-after-update: only the last private DV survives."""
        first = AddDeletionVector(dv("d1", "f"))
        second = AddDeletionVector(dv("d2", "f", cardinality=5))
        net, orphans = reconcile_actions([first, second])
        assert net == [second]
        assert orphans == ["p/d1"]

    def test_remove_committed_dv_kept_with_new_add(self):
        """Delete on a file with an existing committed DV: remove + add."""
        actions = [
            RemoveDeletionVector(dv("committed", "f")),
            AddDeletionVector(dv("merged", "f")),
        ]
        net, orphans = reconcile_actions(actions)
        assert net == actions  # removes ordered before adds
        assert orphans == []

    def test_remove_of_private_dv_cancels(self):
        net, orphans = reconcile_actions(
            [AddDeletionVector(dv("d1", "f")), RemoveDeletionVector(dv("d1", "f"))]
        )
        assert net == []
        assert orphans == ["p/d1"]

    def test_dv_on_removed_file_dropped(self):
        """A DV targeting a file the txn itself removes is pointless."""
        net, orphans = reconcile_actions(
            [AddDeletionVector(dv("d1", "old")), RemoveDataFile(df("old"))]
        )
        assert net == [RemoveDataFile(df("old"))]
        assert orphans == ["p/d1"]

    def test_removes_ordered_before_adds(self):
        net, __ = reconcile_actions(
            [
                AddDataFile(df("new")),
                RemoveDataFile(df("old")),
                AddDeletionVector(dv("d", "other")),
                RemoveDeletionVector(dv("olddv", "other")),
            ]
        )
        kinds = [a.kind for a in net]
        assert kinds == ["remove_file", "remove_dv", "add_file", "add_dv"]

    def test_multi_statement_accumulation(self):
        """insert; delete part of it; delete more — the Figure 6 X2 pattern."""
        stmt1 = [AddDataFile(df("f1", rows=100))]
        stmt2 = [AddDeletionVector(dv("d1", "f1"))]
        stmt3 = [
            RemoveDeletionVector(dv("d1", "f1")),
            AddDeletionVector(dv("d2", "f1", cardinality=7)),
        ]
        net, orphans = reconcile_actions(stmt1 + stmt2 + stmt3)
        assert AddDataFile(df("f1", rows=100)) in net
        assert AddDeletionVector(dv("d2", "f1", cardinality=7)) in net
        assert len(net) == 2
        assert orphans == ["p/d1"]
