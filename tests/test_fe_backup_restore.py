"""Tests for zero-data-copy backup and restore (Section 6.3)."""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from repro.common.errors import TransactionStateError
from tests.conftest import small_config


def count(table):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


@pytest.fixture
def dw():
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    s = warehouse.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    s.insert("t", ids(10))
    return warehouse


def test_restore_recovers_dropped_state(dw):
    backup = dw.backup()
    dw.session().delete("t", BinOp(">=", Col("id"), Lit(0)))
    assert dw.session().query(count("t"))["n"][0] == 0
    dw.restore(backup)
    assert dw.session().query(count("t"))["n"][0] == 10


def test_restore_point_in_time(dw):
    t1 = dw.clock.now
    dw.session().insert("t", ids(20, start=100))
    backup = dw.backup()
    dw.restore(backup, as_of=t1)
    assert dw.session().query(count("t"))["n"][0] == 10


def test_backup_is_metadata_only(dw):
    """Backup copies no data: its size is tiny relative to the table data."""
    data_bytes = sum(
        blob.size for blob in dw.store.list("internal/") if "/data/" in blob.path
    )
    backup = dw.backup()
    assert len(backup) < data_bytes


def test_new_writes_after_restore(dw):
    backup = dw.backup()
    dw.restore(backup)
    dw.session().insert("t", ids(5, start=500))
    assert dw.session().query(count("t"))["n"][0] == 15


def test_new_tables_after_restore_get_fresh_ids(dw):
    backup = dw.backup()
    dw.restore(backup)
    session = dw.session()
    tid = session.create_table("u", Schema.of(("id", "int64"), ("v", "float64")))
    assert tid > 1001
    session.insert("u", ids(3))
    assert dw.session().query(count("u"))["n"][0] == 3


def test_restore_with_active_txn_rejected(dw):
    backup = dw.backup()
    session = dw.session()
    session.begin()
    session.query(count("t"))
    with pytest.raises(TransactionStateError):
        dw.restore(backup)
    session.rollback()


def test_restore_then_gc_reclaims_unreferenced(dw):
    t1 = dw.clock.now
    dw.session().insert("t", ids(50, start=1000))
    newer_files = {
        f.path
        for f in dw.session().table_snapshot("t").files.values()
    }
    backup = dw.backup()
    dw.restore(backup, as_of=t1)
    restored_files = {
        f.path for f in dw.session().table_snapshot("t").files.values()
    }
    orphaned = newer_files - restored_files
    assert orphaned
    report = dw.sto.run_gc()
    assert set(report.deleted_orphans) >= orphaned
    # Restored table still fully readable.
    assert dw.session().query(count("t"))["n"][0] == 10
