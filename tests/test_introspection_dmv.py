"""The sys.dm_* system views, queried live through the SQL entry point."""

import numpy as np
import pytest

from repro import PolarisConfig, Schema, Warehouse
from repro.sql.lexer import SqlSyntaxError

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def batch(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


@pytest.fixture
def metered_dw(config):
    config.telemetry.metrics = True
    config.telemetry.sample_interval_s = 1.0
    return Warehouse(config=config, auto_optimize=False)


class TestMidFlight:
    """The acceptance scenario: open work visible in the views mid-flight."""

    def test_open_transaction_shows_active_then_committed(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 50))

        session.begin()
        session.insert("t", batch(50, 50))
        active = session.sql(
            "SELECT txid, status, isolation FROM sys.dm_transactions "
            "WHERE status = 'active'"
        )
        assert len(active["txid"]) == 1
        assert active["isolation"][0] == "snapshot"
        txid = int(active["txid"][0])

        session.commit()
        after = session.sql(
            "SELECT status, rows_inserted FROM sys.dm_transactions "
            f"WHERE txid = {txid}"
        )
        assert list(after["status"]) == ["committed"]
        assert int(after["rows_inserted"][0]) == 50

    def test_compaction_backlog_degrades_storage_health(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 100))
        clean = session.sql("SELECT state FROM sys.dm_storage_health")
        assert list(clean["state"]) == ["GREEN"]

        # Delete enough rows that files cross max_deleted_fraction: a
        # compaction backlog the STO would act on, visible mid-flight.
        session.sql("DELETE FROM t WHERE id < 40")
        degraded = session.sql(
            "SELECT state, deleted_rows, low_quality_files, dv_count "
            "FROM sys.dm_storage_health"
        )
        assert degraded["state"][0] in ("YELLOW", "RED")
        assert int(degraded["deleted_rows"][0]) == 40
        assert int(degraded["low_quality_files"][0]) > 0
        assert int(degraded["dv_count"][0]) > 0

    def test_pending_compaction_reports_red(self, config):
        config.telemetry.metrics = True
        dw = Warehouse(config=config, auto_optimize=True)
        session = dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 100))
        session.sql("DELETE FROM t WHERE id < 40")
        # Table stats are published on the read path; one user query
        # feeds the STO trigger, which queues the compaction.
        session.sql("SELECT id FROM t WHERE id = 50")
        assert dw.sto.pending_compactions
        row = session.sql(
            "SELECT state, pending_compaction FROM sys.dm_storage_health"
        )
        assert row["state"][0] == "RED"
        assert bool(row["pending_compaction"][0])

    def test_metrics_history_accumulates_samples(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 50))
        # Watchers fire once per advance (no catch-up storm), so step the
        # clock through five intervals to collect five samples.
        for _ in range(5):
            metered_dw.clock.advance(1.0)
        history = session.sql(
            "SELECT sample_id, metric, value FROM sys.dm_metrics_history "
            "WHERE metric = 'txn.commits' ORDER BY sample_id"
        )
        assert len(history["sample_id"]) >= 5
        assert float(history["value"][-1]) == 2.0  # create + insert


class TestViewSemantics:
    def test_dm_metrics_reflects_counters(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 10))
        row = session.sql(
            "SELECT value FROM sys.dm_metrics WHERE name = 'txn.commits'"
        )
        assert float(row["value"][0]) == 2.0

    def test_dm_store_operations_populated(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 10))
        ops = session.sql(
            "SELECT operation, requests FROM sys.dm_store_operations "
            "ORDER BY requests DESC"
        )
        assert len(ops["operation"]) > 0
        assert int(ops["requests"][0]) > 0

    def test_dm_checkpoints_after_checkpoint(self, metered_dw):
        session = metered_dw.session()
        table_id = session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 10))
        session.insert("t", batch(10, 10))
        result = metered_dw.sto.run_checkpoint(table_id)
        assert result is not None
        rows = session.sql(
            "SELECT table_name, sequence_id FROM sys.dm_checkpoints"
        )
        assert list(rows["table_name"]) == ["t"]

    def test_aggregation_and_limit_compose(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 10))
        agg = session.sql(
            "SELECT kind, COUNT(*) AS n FROM sys.dm_metrics "
            "GROUP BY kind ORDER BY n DESC LIMIT 2"
        )
        assert 1 <= len(agg["kind"]) <= 2
        assert int(agg["n"][0]) >= 1

    def test_query_does_not_observe_itself(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        rows = session.sql(
            "SELECT txid FROM sys.dm_transactions WHERE status = 'active'"
        )
        assert len(rows["txid"]) == 0

    def test_empty_views_keep_schema_dtypes(self, metered_dw):
        session = metered_dw.session()
        history = session.sql("SELECT * FROM sys.dm_recovery_history")
        assert history["recovery_id"].dtype == np.int64
        assert history["at"].dtype == np.float64
        assert len(history["recovery_id"]) == 0


class TestGuards:
    def test_writes_rejected(self, metered_dw):
        session = metered_dw.session()
        with pytest.raises(SqlSyntaxError, match="read-only"):
            session.sql("DELETE FROM sys.dm_transactions")
        with pytest.raises(SqlSyntaxError, match="read-only"):
            session.sql("INSERT INTO sys.dm_metrics (name) VALUES ('x')")
        with pytest.raises(SqlSyntaxError, match="read-only"):
            session.sql("UPDATE sys.dm_metrics SET value = 0")
        with pytest.raises(SqlSyntaxError, match="read-only"):
            session.sql("CREATE TABLE sys.dm_custom (id bigint)")

    def test_unknown_view_lists_catalog(self, metered_dw):
        session = metered_dw.session()
        with pytest.raises(SqlSyntaxError, match="sys.dm_transactions"):
            session.sql("SELECT * FROM sys.dm_nope")

    def test_join_with_user_table_rejected(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        with pytest.raises(SqlSyntaxError, match="joined"):
            session.sql(
                "SELECT id FROM t JOIN sys.dm_transactions ON id = txid"
            )

    def test_explain_supported_analyze_rejected(self, metered_dw):
        session = metered_dw.session()
        plan = session.sql(
            "EXPLAIN SELECT txid FROM sys.dm_transactions "
            "WHERE status = 'committed'"
        )
        assert "sys.dm_transactions" in plan
        with pytest.raises(SqlSyntaxError, match="EXPLAIN ANALYZE"):
            session.sql("EXPLAIN ANALYZE SELECT * FROM sys.dm_transactions")

    def test_report_and_summary(self, metered_dw):
        session = metered_dw.session()
        session.create_table("t", SCHEMA)
        session.insert("t", batch(0, 10))
        intro = metered_dw.context.introspection
        summary = intro.summary()
        assert summary["txns_committed"] == 2
        assert summary["bytes_written"] > 0
        report = intro.report()
        assert "observability report" in report
        assert "2 committed" in report
