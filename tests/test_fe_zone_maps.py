"""Tests for file-level zone maps and the sort column (p(r), Section 2.3)."""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from repro.common.errors import CatalogError
from repro.lst.actions import DataFileInfo
from tests.conftest import small_config


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64),
            "v": np.arange(start, start + n, dtype=np.float64)}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


class TestFileStats:
    def test_stats_recorded_in_manifest(self, dw):
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        session.insert("t", ids(100))
        snapshot = session.table_snapshot("t")
        for info in snapshot.files.values():
            bounds = info.stats_for("id")
            assert bounds is not None
            lo, hi = bounds
            assert 0 <= lo <= hi <= 99

    def test_stats_survive_serialization(self):
        info = DataFileInfo(
            name="f", path="p/f", num_rows=10, size_bytes=80, distribution=0,
            column_stats=(("id", 0, 9), ("name", "a", "z")),
        )
        parsed = DataFileInfo.from_dict(info.to_dict())
        assert parsed.stats_for("id") == (0, 9)
        assert parsed.stats_for("name") == ("a", "z")
        assert parsed.stats_for("ghost") is None

    def test_may_match_logic(self):
        info = DataFileInfo(
            name="f", path="p/f", num_rows=10, size_bytes=80, distribution=0,
            column_stats=(("id", 10, 20),),
        )
        assert info.may_match((("id", ">=", 15),))
        assert not info.may_match((("id", ">", 20),))
        assert not info.may_match((("id", "<", 10),))
        assert info.may_match((("id", "==", 10),))
        assert info.may_match((("other", "==", 1),))  # unknown col: keep

    def test_backwards_compatible_parse(self):
        raw = {"name": "f", "path": "p/f", "num_rows": 1, "size_bytes": 8,
               "distribution": 0}
        info = DataFileInfo.from_dict(raw)
        assert info.column_stats == ()
        assert info.may_match((("id", "==", 1),))


class TestFilePruning:
    def make_table(self, dw, sort_column=None):
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            sort_column=sort_column,
        )
        # Round-robin distribution with pre-sorted ranges: inserting in
        # slices gives each file a tight id range.
        for start in range(0, 400, 100):
            session.insert("t", ids(100, start=start))
        return session

    def test_pruned_scan_correct(self, dw):
        session = self.make_table(dw)
        out = session.query(
            TableScan("t", ("id",), predicate=BinOp("<", Col("id"), Lit(50)),
                      prune=(("id", "<", 50),))
        )
        assert sorted(out["id"].tolist()) == list(range(50))

    def test_pruning_reduces_bytes_read(self, dw):
        session = self.make_table(dw)
        plan_pruned = TableScan(
            "t", ("id",), predicate=BinOp("<", Col("id"), Lit(10)),
            prune=(("id", "<", 10),),
        )
        plan_full = TableScan(
            "t", ("id",), predicate=BinOp("<", Col("id"), Lit(10)),
        )
        before = dw.store.meter.snapshot()
        session.query(plan_full)
        full_read = dw.store.meter.delta(before).bytes_read
        before = dw.store.meter.snapshot()
        session.query(plan_pruned)
        pruned_read = dw.store.meter.delta(before).bytes_read
        assert pruned_read < full_read

    def test_prune_to_nothing(self, dw):
        session = self.make_table(dw)
        out = session.query(
            TableScan("t", ("id",), predicate=BinOp(">", Col("id"), Lit(10_000)),
                      prune=(("id", ">", 10_000),))
        )
        assert len(out["id"]) == 0

    def test_delete_uses_file_pruning(self, dw):
        session = self.make_table(dw)
        before = dw.store.meter.snapshot()
        deleted = session.delete(
            "t", BinOp("==", Col("id"), Lit(5)), prune=[("id", "==", 5)]
        )
        assert deleted == 1
        # Only the slice containing id 5 was read: 4 data files (one per
        # distribution of that insert) + 4 manifest fetches — not all 16
        # data files.
        delta = dw.store.meter.delta(before)
        assert delta.requests.get("get", 0) <= 8


class TestSortColumn:
    def test_sort_column_orders_rows_in_file(self, dw):
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")), sort_column="id"
        )
        shuffled = ids(100)
        rng = np.random.default_rng(0)
        perm = rng.permutation(100)
        session.insert("t", {k: v[perm] for k, v in shuffled.items()})
        snapshot = session.table_snapshot("t")
        from repro.pagefile.reader import PageFileReader
        for info in snapshot.files.values():
            data = PageFileReader(dw.store.get(info.path).data).read(["id"])
            assert (np.diff(data["id"]) >= 0).all()

    def test_unknown_sort_column_rejected(self, dw):
        session = dw.session()
        with pytest.raises(CatalogError, match="sort column"):
            session.create_table(
                "t", Schema.of(("id", "int64"), ("v", "float64")),
                sort_column="ghost",
            )

    def test_clone_inherits_sort_column(self, dw):
        session = dw.session()
        session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")), sort_column="id"
        )
        session.insert("t", ids(10))
        session.clone_table("t", "t2")
        from repro.fe.catalog import describe_table
        txn = dw.context.sqldb.begin()
        try:
            assert describe_table(txn, "t2").get("sort_column") == "id"
        finally:
            txn.abort()

    def test_sorted_vs_unsorted_pruning(self, dw):
        """Sorting by the filter key tightens zone maps: fewer bytes read."""
        rng = np.random.default_rng(1)
        perm = rng.permutation(1000)
        batch = {k: v[perm] for k, v in ids(1000).items()}

        session = dw.session()
        session.create_table(
            "sorted", Schema.of(("id", "int64"), ("v", "float64")),
            sort_column="id",
        )
        session.create_table(
            "unsorted", Schema.of(("id", "int64"), ("v", "float64")),
        )
        # Several small inserts so each table has many files.
        for start in range(0, 1000, 250):
            part = {k: v[start:start + 250] for k, v in batch.items()}
            session.insert("sorted", part)
            session.insert("unsorted", part)

        plan = lambda t: Aggregate(
            TableScan(t, ("id",), predicate=BinOp("<", Col("id"), Lit(20)),
                      prune=(("id", "<", 20),)),
            (), {"n": ("count", None)},
        )
        assert session.query(plan("sorted"))["n"][0] == 20
        assert session.query(plan("unsorted"))["n"][0] == 20
