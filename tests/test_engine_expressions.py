"""Tests for expression evaluation."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.engine.expressions import (
    BinOp,
    BoolOp,
    Case,
    Col,
    InList,
    Like,
    Lit,
    Not,
    Substr,
    Year,
    and_,
    evaluate,
    or_,
)
from repro.workloads.tpch.schema import date_days

BATCH = {
    "a": np.array([1, 2, 3, 4], dtype=np.int64),
    "b": np.array([1.5, 2.5, 3.5, 4.5]),
    "s": np.array(["apple", "banana", "cherry", "date"], dtype=object),
    "d": np.array(
        [date_days(1995, 3, 1), date_days(1996, 7, 4),
         date_days(1997, 12, 31), date_days(1998, 1, 1)],
        dtype=np.int64,
    ),
}


def test_col():
    np.testing.assert_array_equal(evaluate(Col("a"), BATCH), [1, 2, 3, 4])


def test_col_unknown_raises():
    with pytest.raises(PlanError, match="unknown column"):
        evaluate(Col("zzz"), BATCH)


def test_lit_broadcast_types():
    assert evaluate(Lit(7), BATCH).dtype == np.int64
    assert evaluate(Lit(7.0), BATCH).dtype == np.float64
    assert evaluate(Lit(True), BATCH).dtype == bool
    assert evaluate(Lit("x"), BATCH).dtype == object


@pytest.mark.parametrize(
    "op,expected",
    [
        ("+", [2.5, 4.5, 6.5, 8.5]),
        ("-", [-0.5, -0.5, -0.5, -0.5]),
        ("*", [1.5, 5.0, 10.5, 18.0]),
    ],
)
def test_arithmetic(op, expected):
    np.testing.assert_allclose(evaluate(BinOp(op, Col("a"), Col("b")), BATCH), expected)


def test_division():
    out = evaluate(BinOp("/", Col("b"), Col("a")), BATCH)
    np.testing.assert_allclose(out, [1.5, 1.25, 3.5 / 3, 1.125])


@pytest.mark.parametrize(
    "op,expected",
    [
        ("==", [False, True, False, False]),
        ("!=", [True, False, True, True]),
        ("<", [True, False, False, False]),
        ("<=", [True, True, False, False]),
        (">", [False, False, True, True]),
        (">=", [False, True, True, True]),
    ],
)
def test_comparisons(op, expected):
    np.testing.assert_array_equal(
        evaluate(BinOp(op, Col("a"), Lit(2)), BATCH), expected
    )


def test_string_comparison():
    out = evaluate(BinOp("==", Col("s"), Lit("banana")), BATCH)
    np.testing.assert_array_equal(out, [False, True, False, False])


def test_string_ordering():
    out = evaluate(BinOp("<", Col("s"), Lit("c")), BATCH)
    np.testing.assert_array_equal(out, [True, True, False, False])


def test_unknown_operator():
    with pytest.raises(PlanError, match="unknown binary operator"):
        evaluate(BinOp("%%", Col("a"), Lit(1)), BATCH)


def test_bool_and_or_not():
    gt1 = BinOp(">", Col("a"), Lit(1))
    lt4 = BinOp("<", Col("a"), Lit(4))
    np.testing.assert_array_equal(
        evaluate(and_(gt1, lt4), BATCH), [False, True, True, False]
    )
    np.testing.assert_array_equal(
        evaluate(or_(Not(gt1), Not(lt4)), BATCH), [True, False, False, True]
    )


def test_nary_and():
    expr = and_(
        BinOp(">", Col("a"), Lit(0)),
        BinOp(">", Col("a"), Lit(1)),
        BinOp(">", Col("a"), Lit(2)),
    )
    np.testing.assert_array_equal(evaluate(expr, BATCH), [False, False, True, True])


@pytest.mark.parametrize(
    "pattern,expected",
    [
        ("%an%", [False, True, False, False]),
        ("a%", [True, False, False, False]),
        ("%e", [True, False, False, True]),
        ("d_te", [False, False, False, True]),
        ("%", [True, True, True, True]),
        ("xyz", [False, False, False, False]),
    ],
)
def test_like(pattern, expected):
    np.testing.assert_array_equal(evaluate(Like(Col("s"), pattern), BATCH), expected)


def test_like_escapes_regex_metachars():
    batch = {"s": np.array(["a.c", "abc"], dtype=object)}
    np.testing.assert_array_equal(evaluate(Like(Col("s"), "a.c"), batch), [True, False])


def test_in_list_ints():
    np.testing.assert_array_equal(
        evaluate(InList(Col("a"), (2, 4)), BATCH), [False, True, False, True]
    )


def test_in_list_strings():
    np.testing.assert_array_equal(
        evaluate(InList(Col("s"), ("apple", "date")), BATCH),
        [True, False, False, True],
    )


def test_case():
    expr = Case(BinOp(">", Col("a"), Lit(2)), Lit(1.0), Lit(0.0))
    np.testing.assert_array_equal(evaluate(expr, BATCH), [0.0, 0.0, 1.0, 1.0])


def test_year():
    np.testing.assert_array_equal(
        evaluate(Year(Col("d")), BATCH), [1995, 1996, 1997, 1998]
    )


def test_substr():
    np.testing.assert_array_equal(
        evaluate(Substr(Col("s"), 1, 3), BATCH), ["app", "ban", "che", "dat"]
    )


def test_substr_mid():
    np.testing.assert_array_equal(
        evaluate(Substr(Col("s"), 2, 2), BATCH), ["pp", "an", "he", "at"]
    )


def test_empty_batch():
    empty = {"a": np.empty(0, dtype=np.int64)}
    assert len(evaluate(BinOp(">", Col("a"), Lit(0)), empty)) == 0
