"""Tests for manifest-log truncation during garbage collection."""

import numpy as np
import pytest

from repro import Aggregate, Schema, TableScan, Warehouse
from repro.sqldb import system_tables as st
from tests.conftest import small_config


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


def count(table="t"):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


@pytest.fixture
def dw():
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    session = warehouse.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
    )
    return warehouse


def manifest_rows(dw, table_id=1001):
    txn = dw.context.sqldb.begin()
    try:
        return st.manifests_for_table(txn, table_id)
    finally:
        txn.abort()


def test_covered_expired_manifests_truncated(dw):
    session = dw.session()
    for i in range(6):
        session.insert("t", ids(10, start=i * 10))
    dw.sto.run_checkpoint(1001)
    assert len(manifest_rows(dw)) == 6
    dw.clock.advance(dw.config.sto.retention_period_s + 1)
    dw.sto.run_gc()
    # All covered manifests truncated except the newest (the anchor).
    remaining = manifest_rows(dw)
    assert len(remaining) == 1
    # Blobs gone from storage too.
    manifests_on_disk = [
        b for b in dw.store.list("internal/") if "_manifests" in b.path
    ]
    assert len(manifests_on_disk) == 1


def test_table_fully_readable_after_truncation(dw):
    session = dw.session()
    for i in range(6):
        session.insert("t", ids(10, start=i * 10))
    dw.sto.run_checkpoint(1001)
    dw.clock.advance(dw.config.sto.retention_period_s + 1)
    dw.sto.run_gc()
    dw.context.cache.invalidate()
    assert dw.session().query(count())["n"][0] == 60
    # New writes continue normally after truncation.
    session.insert("t", ids(10, start=1000))
    assert dw.session().query(count())["n"][0] == 70


def test_uncheckpointed_manifests_never_truncated(dw):
    session = dw.session()
    for i in range(4):
        session.insert("t", ids(10, start=i * 10))
    dw.clock.advance(dw.config.sto.retention_period_s + 1)
    dw.sto.run_gc()  # no checkpoint exists: nothing is covered
    assert len(manifest_rows(dw)) == 4
    assert dw.session().query(count())["n"][0] == 40


def test_manifests_within_retention_kept(dw):
    session = dw.session()
    for i in range(4):
        session.insert("t", ids(10, start=i * 10))
    dw.sto.run_checkpoint(1001)
    dw.sto.run_gc()  # retention has not passed
    assert len(manifest_rows(dw)) == 4


def test_clone_shared_manifests_respect_both_tables(dw):
    """A truncated source manifest shared with a clone must keep its blob
    until the clone can also truncate it."""
    session = dw.session()
    for i in range(4):
        session.insert("t", ids(10, start=i * 10))
    session.clone_table("t", "t2")
    dw.sto.run_checkpoint(1001)  # checkpoint only the source
    dw.clock.advance(dw.config.sto.retention_period_s + 1)
    dw.sto.run_gc()
    # Source rows truncated (all but anchor), clone rows intact.
    assert len(manifest_rows(dw, 1001)) == 1
    assert len(manifest_rows(dw, 1002)) == 4
    # Shared blobs survive because the clone still references them.
    dw.context.cache.invalidate()
    assert dw.session().query(count("t2"))["n"][0] == 40
    assert dw.session().query(count("t"))["n"][0] == 40


def test_time_travel_within_retention_still_works(dw):
    session = dw.session()
    session.insert("t", ids(10))
    t1 = dw.clock.now
    for i in range(1, 5):
        session.insert("t", ids(10, start=i * 10))
    dw.sto.run_checkpoint(1001)
    dw.sto.run_gc()  # nothing expired: history intact
    assert session.query(count(), as_of=t1)["n"][0] == 10
