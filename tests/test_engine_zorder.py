"""Tests for Z-ordering: Morton codes and composite sort keys."""

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, TableScan, Warehouse, and_
from repro.engine.zorder import morton_codes, zorder_permutation
from tests.conftest import small_config


class TestMortonCodes:
    def test_single_column_preserves_order(self):
        values = np.array([30, 10, 20], dtype=np.int64)
        codes = morton_codes([values])
        assert np.argsort(codes).tolist() == np.argsort(values).tolist()

    def test_codes_are_deterministic(self):
        values = [np.arange(100), np.arange(100)[::-1].copy()]
        a = morton_codes(values)
        b = morton_codes(values)
        np.testing.assert_array_equal(a, b)

    def test_too_many_dimensions_rejected(self):
        cols = [np.arange(4)] * 4
        with pytest.raises(ValueError):
            morton_codes(cols)
        with pytest.raises(ValueError):
            morton_codes([])

    def test_locality_on_grid(self):
        """Points close in (x, y) should be close on the Z-curve: sorting a
        grid by Morton code must outperform row-major order for 2-D range
        boxes (the defining property of the curve)."""
        side = 16
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        x, y = xs.ravel().astype(np.int64), ys.ravel().astype(np.int64)
        codes = morton_codes([x, y])
        order = np.argsort(codes)
        xo, yo = x[order], y[order]

        def span_of_box(xv, yv, lo, hi):
            inside = np.flatnonzero(
                (xv >= lo) & (xv < hi) & (yv >= lo) & (yv < hi)
            )
            return inside.max() - inside.min() + 1

        # A 4x4 box: along the Z-curve its 16 points sit in a short span;
        # in row-major order they spread over ~3*side + 4 positions.
        z_span = span_of_box(xo, yo, 4, 8)
        rm_span = span_of_box(x, y, 4, 8)
        assert z_span < rm_span

    def test_string_columns_supported(self):
        values = np.array(["b", "a", "c"], dtype=object)
        codes = morton_codes([values])
        assert np.argsort(codes).tolist() == [1, 0, 2]

    def test_single_row(self):
        codes = morton_codes([np.array([42], dtype=np.int64)])
        assert codes.tolist() == [0]

    def test_permutation_orders_batch(self):
        batch = {
            "x": np.array([3, 1, 2], dtype=np.int64),
            "y": np.array([1, 1, 1], dtype=np.int64),
        }
        perm = zorder_permutation(batch, ["x", "y"])
        assert batch["x"][perm].tolist() == [1, 2, 3]


class TestCompositeSortKeys:
    @pytest.fixture
    def dw(self):
        return Warehouse(config=small_config(), auto_optimize=False)

    def test_create_with_composite_key(self, dw):
        session = dw.session()
        session.create_table(
            "grid",
            Schema.of(("x", "int64"), ("y", "int64"), ("v", "float64")),
            sort_column=["x", "y"],
        )
        n = 1024
        rng = np.random.default_rng(0)
        session.insert(
            "grid",
            {
                "x": rng.integers(0, 32, n).astype(np.int64),
                "y": rng.integers(0, 32, n).astype(np.int64),
                "v": np.zeros(n),
            },
        )
        out = session.query(
            TableScan(
                "grid", ("x", "y"),
                predicate=and_(
                    BinOp("<", Col("x"), Lit(8)), BinOp("<", Col("y"), Lit(8))
                ),
                prune=(("x", "<", 8), ("y", "<", 8)),
            )
        )
        assert (out["x"] < 8).all() and (out["y"] < 8).all()

    def test_zorder_improves_rowgroup_pruning(self):
        """With Z-order, a 2-D box overlaps fewer row-group zone maps."""
        from repro.pagefile.reader import PageFileReader

        config = small_config()
        config.row_group_size = 128  # fine zone-map granularity
        dw = Warehouse(config=config, auto_optimize=False)

        def overlapping_groups(sort_column, table):
            session = dw.session()
            session.create_table(
                table,
                Schema.of(("x", "int64"), ("y", "int64"), ("v", "float64")),
                sort_column=sort_column,
            )
            side = 64
            xs, ys = np.meshgrid(np.arange(side), np.arange(side))
            # Random arrival order: without a sort key, every row group
            # spans most of both dimensions.
            perm = np.random.default_rng(2).permutation(side * side)
            session.insert(
                table,
                {
                    "x": xs.ravel().astype(np.int64)[perm],
                    "y": ys.ravel().astype(np.int64)[perm],
                    "v": np.zeros(side * side),
                },
            )
            snapshot = session.table_snapshot(table)
            total = matching = 0
            for info in snapshot.files.values():
                reader = PageFileReader(dw.store.get(info.path).data)
                for group in reader.meta.row_groups:
                    total += 1
                    if group.chunks["x"].stats.may_contain("<", 8) and \
                            group.chunks["y"].stats.may_contain("<", 8):
                        matching += 1
            return matching, total

        z_match, z_total = overlapping_groups(["x", "y"], "zord")
        plain_match, plain_total = overlapping_groups(None, "plain")
        assert z_total == plain_total
        # The Z-curve confines an 8x8 box to a small fraction of groups;
        # the row-major layout leaves y unsorted within groups, so many
        # more groups overlap.
        assert z_match < plain_match

    def test_backup_roundtrips_composite_key(self, dw):
        session = dw.session()
        session.create_table(
            "grid", Schema.of(("x", "int64"), ("y", "int64")),
            sort_column=("x", "y"),
        )
        backup = dw.backup()
        dw.restore(backup)
        from repro.fe.catalog import describe_table
        txn = dw.context.sqldb.begin()
        row = describe_table(txn, "grid")
        txn.abort()
        assert row["sort_column"] == ["x", "y"]

    def test_too_many_sort_columns_rejected(self, dw):
        from repro.common.errors import CatalogError
        with pytest.raises(CatalogError, match="at most 3"):
            dw.session().create_table(
                "t", Schema.of(("a", "int64"), ("b", "int64"),
                               ("c", "int64"), ("d", "int64")),
                sort_column=["a", "b", "c", "d"],
            )
