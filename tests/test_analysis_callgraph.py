"""Call-graph tests on synthetic package fixtures.

Covers the resolver features the deep analyses depend on: call cycles,
re-exports through ``__init__``, decorated/nested functions, and method
dispatch via annotations, constructors, ``self.attr`` types, and
forward-reference string annotations without an import.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.callgraph import CALL, LEXICAL, REF, Program


def write_tree(root: Path, files: dict) -> Path:
    """Write ``{relpath: source}`` under ``root`` and return the package."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root / "pkg"


@pytest.fixture
def program(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "pkg/__init__.py": """
                from pkg.core import run
            """,
            "pkg/core.py": """
                from pkg.util import Owner, Pool, helper


                def deco(fn):
                    return fn


                @deco
                def decorated():
                    return helper()


                def run():
                    decorated()
                    return ping()


                def ping():
                    return pong()


                def pong():
                    return ping()


                def outer():
                    def inner():
                        return 1
                    return inner


                def uses_pool():
                    p = Pool()
                    return p.acquire()


                def uses_annotated(p: Pool):
                    return p.acquire()


                def uses_owner(o: Owner):
                    return o.use()
            """,
            "pkg/util.py": """
                def helper():
                    return 1


                class Pool:
                    def acquire(self):
                        return 1


                class SubPool(Pool):
                    pass


                class Owner:
                    def __init__(self, pool: Pool):
                        self.pool = pool

                    def use(self):
                        return self.pool.acquire()


                def uses_sub(p: SubPool):
                    return p.acquire()
            """,
            "pkg/fwd.py": """
                class Holder:
                    def __init__(self, engine: "Engine"):
                        self._engine = engine

                    def go(self):
                        return self._engine.start()
            """,
            "pkg/engine.py": """
                class Engine:
                    def start(self):
                        return 1
            """,
            "pkg/reexp.py": """
                from pkg import run


                def via_reexport():
                    return run()
            """,
        },
    )
    return Program.load([pkg])


def edges(program, caller, kind=CALL):
    return {s.callee for s in program.callees_of(caller) if s.kind == kind}


def test_plain_and_decorated_calls_resolve(program):
    assert "pkg.core.decorated" in edges(program, "pkg.core.run")
    assert "pkg.util.helper" in edges(program, "pkg.core.decorated")


def test_call_cycle_is_navigable_both_ways(program):
    assert "pkg.core.pong" in edges(program, "pkg.core.ping")
    assert "pkg.core.ping" in edges(program, "pkg.core.pong")
    reach = program.reachable_from(["pkg.core.ping"], kinds=(CALL,))
    assert {"pkg.core.ping", "pkg.core.pong"} <= reach
    callers = program.transitive_callers(["pkg.core.pong"], kinds=(CALL,))
    assert "pkg.core.run" in callers


def test_reexport_resolves_to_defining_module(program):
    assert "pkg.core.run" in edges(program, "pkg.reexp.via_reexport")


def test_nested_function_gets_lexical_edge(program):
    lex = edges(program, "pkg.core.outer", kind=LEXICAL)
    assert "pkg.core.outer.inner" in lex
    # The bare ``inner`` mention in return position is a REF edge.
    assert "pkg.core.outer.inner" in edges(program, "pkg.core.outer", kind=REF)


def test_constructor_inferred_local_dispatch(program):
    assert "pkg.util.Pool.acquire" in edges(program, "pkg.core.uses_pool")
    # Constructor call itself links to __init__ when one exists.
    assert "pkg.util.Owner.__init__" not in edges(program, "pkg.core.uses_pool")


def test_annotated_param_dispatch_and_base_walk(program):
    assert "pkg.util.Pool.acquire" in edges(program, "pkg.core.uses_annotated")
    # SubPool has no own acquire; dispatch walks to the base class.
    assert "pkg.util.Pool.acquire" in edges(program, "pkg.util.uses_sub")


def test_self_attr_type_from_annotated_param(program):
    # Owner.__init__ stores ``self.pool = pool`` (pool: Pool) and
    # Owner.use dispatches through it.
    assert "pkg.util.Pool.acquire" in edges(program, "pkg.util.Owner.use")
    assert "pkg.util.Owner.use" in edges(program, "pkg.core.uses_owner")


def test_forward_reference_annotation_without_import(program):
    # "Engine" is a string annotation with no import anywhere in fwd.py;
    # the unique-class fallback still types self._engine.
    assert "pkg.engine.Engine.start" in edges(program, "pkg.fwd.Holder.go")


def test_unresolved_calls_record_trailing_name(program):
    program_unresolved = program.unresolved.get("pkg.core.run", set())
    assert "decorated" not in program_unresolved
