"""Documentation enforcement: every public item carries a docstring.

This is now a thin wrapper over the ``docstring-coverage`` rule of the
:mod:`repro.analysis` lint framework — the same check runs via
``python -m repro.analysis`` in CI, so a failure here reproduces exactly
at the command line.  The test is kept so documentation debt still shows
up as a dedicated test failure, not just a lint report.
"""

from pathlib import Path

import repro
from repro.analysis import format_findings, get_rule, lint_paths


def test_every_public_item_documented():
    rule = get_rule("docstring-coverage")
    package_root = Path(repro.__file__).parent
    findings = lint_paths([package_root], rules=[rule])
    assert not findings, (
        "undocumented public items:\n" + format_findings(findings)
    )
