"""Documentation enforcement: every public item carries a docstring.

Deliverable hygiene: the library's public surface — modules, classes,
functions and methods not prefixed with an underscore — must be
documented.  This test walks every module under :mod:`repro` and fails on
any undocumented public item, so documentation debt cannot accumulate
silently.
"""

import inspect
import pkgutil
import importlib

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        yield importlib.import_module(info.name)


def is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def test_every_module_has_docstring():
    missing = [m.__name__ for m in iter_modules() if not inspect.getdoc(m)]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if inspect.isclass(obj) and is_local(obj, module):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if (
                        inspect.isfunction(attr) or isinstance(attr, property)
                    ) and not inspect.getdoc(attr):
                        missing.append(f"{module.__name__}.{name}.{attr_name}")
            elif inspect.isfunction(obj) and is_local(obj, module):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"
