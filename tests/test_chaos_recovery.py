"""Tests for the restart RecoveryManager over injected-crash states."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.chaos import (
    ChaosController,
    RecoveryError,
    RecoveryManager,
    SimulatedCrash,
)
from repro.sqldb import system_tables as catalog
from repro.storage import paths

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def batch(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


@pytest.fixture
def dw(config):
    wh = Warehouse(config=config, auto_optimize=False)
    wh.sto.auto_publish = True
    return wh


@pytest.fixture
def loaded(dw):
    session = dw.session()
    table_id = session.create_table("t", SCHEMA, distribution_column="id")
    session.insert("t", batch(0, 100))
    return dw, session, table_id


def crash_at(dw, site, thunk, hits=1):
    """Run ``thunk`` with ``site`` armed; assert the crash fired."""
    controller = ChaosController(seed=0).arm(site, hits=hits)
    with controller:
        with pytest.raises(SimulatedCrash):
            thunk()
    return controller


class TestInDoubtResolution:
    def test_crash_before_sqldb_commit_aborts(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "fe.commit.after_writesets",
            lambda: session.insert("t", batch(100, 50)),
        )
        assert dw.context.sqldb.active_transactions
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.in_doubt_aborted >= 1
        assert report.in_doubt_committed == 0
        assert not dw.context.sqldb.active_transactions
        assert dw.session().table_snapshot("t").live_rows == 100

    def test_crash_after_install_commits(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "sqldb.commit.after_install",
            lambda: session.insert("t", batch(100, 50)),
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.in_doubt_committed == 1
        assert not dw.context.sqldb.active_transactions
        assert dw.session().table_snapshot("t").live_rows == 150

    def test_crash_after_sqldb_commit_loses_nothing(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "fe.commit.after_sqldb_commit",
            lambda: session.insert("t", batch(100, 50)),
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.in_doubt_aborted == 0
        assert dw.session().table_snapshot("t").live_rows == 150
        assert report.publishes_completed >= 1


class TestStagedBlocks:
    def test_staged_blocks_discarded(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "fe.write.before_manifest_flush",
            lambda: session.insert("t", batch(100, 50)),
        )
        assert dw.store.staged_paths()
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.staged_blocks_discarded >= 1
        assert not dw.store.staged_paths()


class TestCheckpointReconciliation:
    def test_orphan_checkpoint_blob_deleted_and_rerun_succeeds(self, loaded):
        dw, session, table_id = loaded
        crash_at(
            dw,
            "sto.checkpoint.after_blob_put",
            lambda: dw.sto.run_checkpoint(table_id),
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert len(report.orphan_checkpoint_blobs_deleted) == 1
        # The deterministic path is free again: the checkpoint re-runs.
        result = dw.sto.run_checkpoint(table_id)
        assert result is not None

    def test_checkpoint_row_without_blob_dropped(self, loaded):
        dw, session, table_id = loaded
        result = dw.sto.run_checkpoint(table_id)
        dw.store.delete(result.path)
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.checkpoint_rows_dropped == [result.path]
        txn = dw.context.sqldb.begin()
        try:
            assert not catalog.checkpoints_for_table(txn, table_id)
        finally:
            txn.abort()


class TestPublishCompletion:
    def test_missed_publish_completed(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "sto.publish.before_log_write",
            lambda: session.insert("t", batch(100, 50)),
        )
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.publishes_completed >= 1
        log_prefix = paths.published_root(dw.context.database, "t") + "/_delta_log/"
        versions = [blob.path for blob in dw.store.list(log_prefix)]
        assert len(versions) == 2  # the original load plus the recovered one

    def test_publish_versions_continue_after_resync(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "sto.publish.after_log_write",
            lambda: session.insert("t", batch(100, 50)),
        )
        RecoveryManager(dw.context, sto=dw.sto).recover()
        session2 = dw.session()
        session2.insert("t", batch(200, 10))
        log_prefix = paths.published_root(dw.context.database, "t") + "/_delta_log/"
        names = sorted(
            blob.path.rsplit("/", 1)[1] for blob in dw.store.list(log_prefix)
        )
        versions = [int(name.split(".", 1)[0]) for name in names]
        assert versions == list(range(len(versions)))


class TestStrictMode:
    def test_missing_manifest_raises_in_strict_mode(self, loaded):
        dw, session, table_id = loaded
        txn = dw.context.sqldb.begin()
        try:
            rows = catalog.manifests_for_table(txn, table_id)
        finally:
            txn.abort()
        dw.store.delete(rows[-1]["manifest_path"])
        with pytest.raises(RecoveryError):
            RecoveryManager(dw.context, sto=dw.sto).recover()

    def test_missing_manifest_reported_when_lenient(self, loaded):
        dw, session, table_id = loaded
        txn = dw.context.sqldb.begin()
        try:
            rows = catalog.manifests_for_table(txn, table_id)
        finally:
            txn.abort()
        dw.store.delete(rows[-1]["manifest_path"])
        report = RecoveryManager(dw.context, sto=dw.sto, strict=False).recover()
        assert report.missing_manifests == [rows[-1]["manifest_path"]]


class TestIdempotence:
    def test_second_recovery_is_clean(self, loaded):
        dw, session, _ = loaded
        crash_at(
            dw,
            "fe.write.before_manifest_flush",
            lambda: session.insert("t", batch(100, 50)),
        )
        RecoveryManager(dw.context, sto=dw.sto).recover()
        second = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert second.clean

    def test_second_recovery_is_a_byte_level_noop(self, loaded):
        """The baseline for crash-re-entrant recovery: running a second
        pass over an already-recovered deployment repairs nothing and
        leaves every stored blob byte-identical."""
        dw, session, table_id = loaded
        crash_at(
            dw,
            "sto.checkpoint.after_blob_put",
            lambda: dw.sto.run_checkpoint(table_id),
        )
        RecoveryManager(dw.context, sto=dw.sto).recover()
        before = {b.path: b.data for b in dw.store.list("")}
        second = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert second.clean
        after = {b.path: b.data for b in dw.store.list("")}
        assert after == before

    def test_crashed_recovery_passes_converge(self, loaded):
        """Recovery can die at any of its own crashpoints; the next pass
        finishes the job and ends clean."""
        from repro.chaos.harness import RECOVERY_SITES

        dw, session, _ = loaded
        crash_at(
            dw,
            "fe.write.before_manifest_flush",
            lambda: session.insert("t", batch(100, 50)),
        )
        manager = RecoveryManager(dw.context, sto=dw.sto)
        for site in RECOVERY_SITES:
            controller = ChaosController(seed=0).arm(site)
            with controller:
                with pytest.raises(SimulatedCrash):
                    manager.recover()
            assert controller.crashes == [site]
        assert manager.recover().clean

    def test_recovery_on_healthy_warehouse_is_clean(self, loaded):
        dw, session, _ = loaded
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.in_doubt_committed == 0
        assert report.in_doubt_aborted == 0
        assert report.staged_blocks_discarded == 0
        assert not report.missing_manifests

    def test_recovery_emits_bus_event_and_metrics(self, loaded):
        dw, session, _ = loaded
        events = []
        dw.context.bus.subscribe(
            "recovery.completed", lambda event: events.append(event)
        )
        RecoveryManager(dw.context, sto=dw.sto).recover()
        assert len(events) == 1
        assert dw.telemetry.metrics.value("recovery.runs") == 1
