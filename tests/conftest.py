"""Shared fixtures: small deterministic deployments for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PolarisConfig, Schema, Warehouse
from repro.analysis.si import HistoryRecorder, check_history, format_violations


def small_config() -> PolarisConfig:
    """A configuration scaled for unit tests: few cells, tiny thresholds."""
    config = PolarisConfig()
    config.distributions = 4
    config.rows_per_cell = 1_000
    config.sto.min_healthy_rows_per_file = 10
    config.sto.max_deleted_fraction = 0.25
    config.sto.checkpoint_manifest_threshold = 5
    config.sto.poll_interval_s = 1.0
    config.sto.retention_period_s = 3600.0
    config.dcp.fixed_nodes = 2
    return config


@pytest.fixture
def config() -> PolarisConfig:
    return small_config()


@pytest.fixture
def warehouse(config) -> Warehouse:
    """A fresh warehouse with autonomous optimization disabled (tests drive
    the STO explicitly unless they opt in)."""
    return Warehouse(config=config, auto_optimize=False)


@pytest.fixture
def session(warehouse):
    return warehouse.session()


@pytest.fixture
def si_sanitizer():
    """Opt-in snapshot-isolation history sanitizer (repro.analysis.si).

    Yields an ``attach(warehouse)`` callable; every attached warehouse's
    transaction history is verified against the SI axioms (first-committer
    wins, reads-from-snapshot, no lost updates) at teardown — any
    violation fails the test that opted in.
    """
    recorders = []

    def attach(warehouse) -> HistoryRecorder:
        recorder = HistoryRecorder().attach(warehouse.context.bus)
        recorders.append(recorder)
        return recorder

    yield attach
    for recorder in recorders:
        recorder.detach()
        violations = check_history(recorder.history())
        assert not violations, (
            "SI history sanitizer found violations:\n"
            + format_violations(violations)
        )


@pytest.fixture
def simple_table(session):
    """A table ``t(id int64, v float64)`` loaded with 100 rows."""
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")), distribution_column="id"
    )
    session.insert(
        "t", {"id": np.arange(100, dtype=np.int64), "v": np.arange(100) * 1.0}
    )
    return "t"
