"""Coverage for the supporting modules: retry, channels, paths, cost model,
catalog helpers, and session edge cases."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.common.clock import SimulatedClock
from repro.common.config import DcpConfig, PolarisConfig, StorageConfig
from repro.common.errors import CatalogError, TransientStorageError
from repro.dcp.channels import ChannelStats, estimate_batch_bytes
from repro.dcp.costmodel import CostModel
from repro.fe import catalog as ddl
from repro.storage import paths
from repro.storage.retry import with_retries
from tests.conftest import small_config


class TestRetry:
    def test_success_first_try(self):
        assert with_retries(lambda: 42) == 42

    def test_retries_until_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError("try again")
            return "done"

        assert with_retries(flaky, attempts=5) == "done"
        assert calls["n"] == 3

    def test_exhausted_reraises(self):
        def always():
            raise TransientStorageError("no luck")

        with pytest.raises(TransientStorageError):
            with_retries(always, attempts=2)

    def test_non_transient_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("bug")

        with pytest.raises(ValueError):
            with_retries(broken)
        assert calls["n"] == 1


class TestChannels:
    def test_numeric_batch_bytes(self):
        batch = {"a": np.zeros(100, dtype=np.int64)}
        assert estimate_batch_bytes(batch) == 800

    def test_string_batch_bytes_estimated(self):
        batch = {"s": np.array(["hello"] * 10, dtype=object)}
        size = estimate_batch_bytes(batch)
        assert 50 <= size <= 200

    def test_empty_batch(self):
        assert estimate_batch_bytes({}) == 0
        assert estimate_batch_bytes({"s": np.empty(0, dtype=object)}) == 0

    def test_channel_stats_accumulate(self):
        stats = ChannelStats()
        stats.record("shuffle", 100)
        stats.record("shuffle", 50)
        stats.record("result", 10)
        assert stats.transfers == {"shuffle": 150, "result": 10}
        assert stats.total_bytes == 160


class TestPaths:
    def test_layout_is_table_scoped(self):
        root = paths.table_root("db", 1001)
        assert paths.data_file_path("db", 1001, "f.rpf").startswith(root)
        assert paths.dv_file_path("db", 1001, "d.rdv").startswith(root)
        assert paths.manifest_path("db", 1001, "m").startswith(root)
        assert paths.checkpoint_path("db", 1001, 5).startswith(root)

    def test_checkpoint_paths_sort_by_sequence(self):
        a = paths.checkpoint_path("db", 1, 9)
        b = paths.checkpoint_path("db", 1, 10)
        assert a < b  # zero-padded

    def test_published_paths_are_user_visible(self):
        assert paths.published_root("db", "t").startswith("published/")
        assert "_delta_log" in paths.published_delta_log_path("db", "t", 0)

    def test_delta_log_versions_sort(self):
        assert paths.published_delta_log_path("db", "t", 2) < \
            paths.published_delta_log_path("db", "t", 10)


class TestCostModel:
    def setup_method(self):
        self.model = CostModel(DcpConfig(), StorageConfig())

    def test_zero_work_is_overhead_only(self):
        assert self.model.task_duration(0, 0, 0) == DcpConfig().task_overhead_s

    def test_rows_dominate_at_scale(self):
        small = self.model.task_duration(1_000, 1, 0)
        big = self.model.task_duration(10_000_000, 1, 0)
        assert big > small * 10

    def test_files_add_fixed_cost(self):
        one = self.model.task_duration(0, 1, 0)
        ten = self.model.task_duration(0, 10, 0)
        assert ten > one

    def test_bytes_add_transfer_cost(self):
        assert self.model.task_duration(0, 0, 100 * 1024 * 1024) > \
            self.model.task_duration(0, 0, 0)


class TestCatalogHelpers:
    @pytest.fixture
    def dw(self):
        return Warehouse(config=small_config(), auto_optimize=False)

    def test_describe_unknown_table(self, dw):
        txn = dw.context.sqldb.begin()
        with pytest.raises(CatalogError, match="unknown table"):
            ddl.describe_table(txn, "ghost")
        txn.abort()

    def test_duplicate_create_rejected(self, dw):
        session = dw.session()
        schema = Schema.of(("id", "int64"))
        session.create_table("t", schema)
        with pytest.raises(CatalogError, match="already exists"):
            session.create_table("t", schema)

    def test_unknown_distribution_column_rejected(self, dw):
        session = dw.session()
        with pytest.raises(CatalogError, match="distribution column"):
            session.create_table("t", Schema.of(("id", "int64")),
                                 distribution_column="nope")

    def test_failed_create_rolls_back(self, dw):
        session = dw.session()
        with pytest.raises(CatalogError):
            session.create_table("t", Schema.of(("id", "int64")),
                                 distribution_column="nope")
        # The failed auto-commit statement left nothing behind.
        assert session.table_names() == []

    def test_table_names_sorted(self, dw):
        session = dw.session()
        for name in ("zeta", "alpha", "mid"):
            session.create_table(name, Schema.of(("id", "int64")))
        assert session.table_names() == ["alpha", "mid", "zeta"]

    def test_table_schema_roundtrip(self, dw):
        session = dw.session()
        schema = Schema.of(("id", "int64"), ("s", "string"))
        session.create_table("t", schema)
        txn = dw.context.sqldb.begin()
        row = ddl.describe_table(txn, "t")
        txn.abort()
        assert ddl.table_schema(row) == schema


class TestSessionEdgeCases:
    @pytest.fixture
    def dw(self):
        return Warehouse(config=small_config(), auto_optimize=False)

    def test_failed_statement_rolls_back_autocommit(self, dw):
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        with pytest.raises(Exception):
            session.insert("t", {"bogus": np.arange(3)})
        # No half-applied statement: table still empty and session healthy.
        session.insert("t", {"id": np.arange(3, dtype=np.int64),
                             "v": np.zeros(3)})
        snapshot = session.table_snapshot("t")
        assert snapshot.live_rows == 3

    def test_failed_statement_poisons_nothing_in_explicit_txn(self, dw):
        session = dw.session()
        session.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        session.begin()
        session.insert("t", {"id": np.arange(3, dtype=np.int64), "v": np.zeros(3)})
        with pytest.raises(Exception):
            session.insert("t", {"bogus": np.arange(3)})
        # Statement failed before any physical writes: txn still usable.
        session.commit()
        assert session.table_snapshot("t").live_rows == 3

    def test_in_transaction_flag(self, dw):
        session = dw.session()
        assert not session.in_transaction
        session.begin()
        assert session.in_transaction
        session.rollback()
        assert not session.in_transaction

    def test_two_sessions_are_independent(self, dw):
        a, b = dw.session(), dw.session()
        a.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        a.begin()
        a.insert("t", {"id": np.arange(2, dtype=np.int64), "v": np.zeros(2)})
        # b is not inside a's transaction.
        assert not b.in_transaction
        b.insert("t", {"id": np.arange(10, 12, dtype=np.int64), "v": np.zeros(2)})
        a.commit()
        assert dw.session().table_snapshot("t").live_rows == 4


class TestWarehouseFacade:
    def test_passthrough_properties(self):
        dw = Warehouse(config=small_config(), auto_optimize=False)
        assert isinstance(dw.clock, SimulatedClock)
        assert dw.store is dw.context.store
        assert isinstance(dw.config, PolarisConfig)

    def test_isolated_deployments(self):
        a = Warehouse(config=small_config())
        b = Warehouse(config=small_config())
        a.session().create_table("t", Schema.of(("id", "int64")))
        assert b.session().table_names() == []
