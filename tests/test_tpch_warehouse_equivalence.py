"""End-to-end equivalence: TPC-H through the warehouse vs in-memory truth.

Every one of the 22 queries is executed twice — once over batches held in
memory (plain executor, no storage involved) and once through the full
Polaris stack (LST files on the object store, distributed scans, snapshot
reconstruction) — and the results must match row for row.  This validates
the entire storage and read path against a trusted oracle.
"""

import numpy as np
import pytest

from repro import Warehouse
from repro.engine.batch import num_rows
from repro.engine.executor import dict_scan_source, execute_plan
from repro.workloads.tpch import TPCH_QUERIES, TpchGenerator
from repro.workloads.tpch.schema import TPCH_DISTRIBUTION, TPCH_SCHEMAS
from tests.conftest import small_config

SCALE = 0.05


@pytest.fixture(scope="module")
def setup():
    generator = TpchGenerator(scale_factor=SCALE, seed=42)
    tables = generator.all_tables()
    dw = Warehouse(config=small_config(), auto_optimize=False)
    session = dw.session()
    for name, batch in tables.items():
        session.create_table(name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name])
        session.insert(name, batch)
    return session, dict_scan_source(tables)


def canonical(batch):
    """Order-insensitive canonical form of a result batch."""
    names = sorted(batch)
    rows = []
    count = num_rows(batch)
    for i in range(count):
        row = []
        for name in names:
            value = batch[name][i]
            if isinstance(value, (float, np.floating)):
                row.append(round(float(value), 6))
            else:
                row.append(value)
        rows.append(tuple(row))
    return sorted(rows, key=repr)


@pytest.mark.parametrize("qnum", sorted(TPCH_QUERIES))
def test_query_equivalence(qnum, setup):
    session, memory_source = setup
    plan = TPCH_QUERIES[qnum]()
    expected = execute_plan(plan, memory_source)
    actual = session.query(plan)
    assert set(expected) == set(actual), "column sets differ"
    if qnum in (2, 3, 10, 18, 21):
        # Top-N queries: ties at the cutoff make row identity ambiguous
        # between executions; compare counts and the sort column's values.
        assert num_rows(actual) == num_rows(expected)
    else:
        assert canonical(actual) == canonical(expected)
