"""Tests for the DCP: cells, DAGs, scheduling, retry, elasticity, WLM."""

import numpy as np
import pytest

from repro.common.clock import SimulatedClock
from repro.common.config import DcpConfig, PolarisConfig
from repro.common.errors import DcpError, TaskFailedError, TopologyError
from repro.dcp import (
    Autoscaler,
    Scheduler,
    Task,
    Topology,
    WorkflowDag,
    WorkloadManager,
    cells_for_snapshot,
)
from repro.dcp.cells import distribution_of
from repro.dcp.costmodel import CostModel
from repro.lst import AddDataFile, DataFileInfo, TableSnapshot
from repro.storage import ObjectStore


def df(name, rows=10, dist=0):
    return DataFileInfo(name=name, path=f"p/{name}", num_rows=rows,
                        size_bytes=rows * 8, distribution=dist)


def make_scheduler(config=None):
    cfg = config or PolarisConfig()
    clock = SimulatedClock()
    store = ObjectStore(clock=clock, config=cfg.storage)
    return Scheduler(clock, store, CostModel(cfg.dcp, cfg.storage), cfg.dcp), clock


class TestCells:
    def test_files_grouped_by_distribution(self):
        snap = TableSnapshot().apply_manifest(
            [AddDataFile(df("a", dist=0)), AddDataFile(df("b", dist=1)),
             AddDataFile(df("c", dist=0))],
            1, 0.0,
        )
        cells = cells_for_snapshot(7, snap, distributions=2)
        assert len(cells) == 2
        assert [f.name for f in cells[0].files] == ["a", "c"]
        assert [f.name for f in cells[1].files] == ["b"]

    def test_empty_distributions_present(self):
        cells = cells_for_snapshot(7, TableSnapshot(), distributions=4)
        assert len(cells) == 4
        assert all(not c.files for c in cells)

    def test_cell_metrics(self):
        snap = TableSnapshot().apply_manifest(
            [AddDataFile(df("a", rows=5)), AddDataFile(df("b", rows=7))], 1, 0.0
        )
        cell = cells_for_snapshot(7, snap, 1)[0]
        assert cell.num_rows == 12
        assert cell.total_bytes == 96

    def test_distribution_of_ints_deterministic(self):
        values = np.arange(1000)
        a = distribution_of(values, 16)
        b = distribution_of(values, 16)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 16
        # Roughly uniform: every bucket populated.
        assert len(set(a.tolist())) == 16

    def test_distribution_of_strings(self):
        values = np.array([f"k{i}" for i in range(200)], dtype=object)
        out = distribution_of(values, 8)
        assert out.min() >= 0 and out.max() < 8


class TestDag:
    def test_topological_order_respects_edges(self):
        dag = WorkflowDag()
        dag.add_task(Task("a", lambda c: None))
        dag.add_task(Task("b", lambda c: None), depends_on=["a"])
        dag.add_task(Task("c", lambda c: None), depends_on=["a", "b"])
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_duplicate_task_rejected(self):
        dag = WorkflowDag()
        dag.add_task(Task("a", lambda c: None))
        with pytest.raises(DcpError, match="duplicate"):
            dag.add_task(Task("a", lambda c: None))

    def test_unknown_dependency_rejected(self):
        dag = WorkflowDag()
        with pytest.raises(DcpError, match="unknown producer"):
            dag.add_task(Task("b", lambda c: None), depends_on=["ghost"])

    def test_cycle_detected(self):
        dag = WorkflowDag()
        dag.add_task(Task("a", lambda c: None))
        dag.add_task(Task("b", lambda c: None), depends_on=["a"])
        dag.add_edge("b", "a")
        with pytest.raises(DcpError, match="cycle"):
            dag.topological_order()


class TestScheduler:
    def test_results_and_inputs_flow(self):
        scheduler, _ = make_scheduler()
        wlm = WorkloadManager(DcpConfig())
        dag = WorkflowDag()
        dag.add_task(Task("x", lambda c: 10))
        dag.add_task(Task("y", lambda c: c.inputs["x"] + 5), depends_on=["x"])
        result = scheduler.execute(dag, wlm=wlm)
        assert result.result_of("y") == 15

    def test_parallel_tasks_overlap_in_time(self):
        cfg = PolarisConfig()
        scheduler, clock = make_scheduler(cfg)
        wlm = WorkloadManager(cfg.dcp)
        dag = WorkflowDag()
        for i in range(8):
            dag.add_task(Task(f"t{i}", lambda c: None, est_rows=1_000_000))
        result = scheduler.execute(dag, wlm=wlm)
        serial = 8 * (cfg.dcp.task_overhead_s + cfg.dcp.seconds_per_million_rows)
        assert result.makespan < serial / 2  # 8 slots available

    def test_clock_advances_to_makespan(self):
        scheduler, clock = make_scheduler()
        wlm = WorkloadManager(DcpConfig())
        dag = WorkflowDag()
        dag.add_task(Task("t", lambda c: None, est_rows=1_000_000))
        result = scheduler.execute(dag, wlm=wlm)
        assert clock.now == pytest.approx(result.finished_at)

    def test_advance_clock_false_leaves_clock(self):
        scheduler, clock = make_scheduler()
        wlm = WorkloadManager(DcpConfig())
        dag = WorkflowDag()
        dag.add_task(Task("t", lambda c: None, est_rows=1_000_000))
        before = clock.now
        scheduler.execute(dag, wlm=wlm, advance_clock=False)
        assert clock.now == before

    def test_needs_exactly_one_target(self):
        scheduler, _ = make_scheduler()
        with pytest.raises(ValueError):
            scheduler.execute(WorkflowDag())
        with pytest.raises(ValueError):
            scheduler.execute(
                WorkflowDag(), wlm=WorkloadManager(DcpConfig()), topology=Topology()
            )

    def test_retry_on_planned_failure(self):
        scheduler, _ = make_scheduler()
        wlm = WorkloadManager(DcpConfig())
        dag = WorkflowDag()
        dag.add_task(Task("flaky", lambda c: c.attempt, fail_on_attempts=frozenset({1})))
        result = scheduler.execute(dag, wlm=wlm)
        assert result.result_of("flaky") == 2
        assert result.retries == 1

    def test_retry_budget_exhausted(self):
        cfg = DcpConfig(max_task_retries=1)
        scheduler, _ = make_scheduler(PolarisConfig(dcp=cfg))
        wlm = WorkloadManager(cfg)
        dag = WorkflowDag()
        dag.add_task(Task("dead", lambda c: None, fail_on_attempts=frozenset({1, 2, 3})))
        with pytest.raises(TaskFailedError):
            scheduler.execute(dag, wlm=wlm)

    def test_failed_attempt_burns_time(self):
        scheduler, _ = make_scheduler()
        wlm = WorkloadManager(DcpConfig())
        flaky = WorkflowDag()
        flaky.add_task(Task("t", lambda c: None, est_rows=2_000_000,
                            fail_on_attempts=frozenset({1})))
        r_flaky = scheduler.execute(flaky, wlm=wlm, advance_clock=False)

        scheduler2, _ = make_scheduler()
        clean = WorkflowDag()
        clean.add_task(Task("t", lambda c: None, est_rows=2_000_000))
        r_clean = scheduler2.execute(clean, wlm=WorkloadManager(DcpConfig()))
        assert r_flaky.makespan > r_clean.makespan

    def test_pool_routing(self):
        cfg = DcpConfig(fixed_nodes=1, slots_per_node=1)
        scheduler, _ = make_scheduler(PolarisConfig(dcp=cfg))
        wlm = WorkloadManager(cfg, separate_pools=True)
        dag = WorkflowDag()
        dag.add_task(Task("r", lambda c: None, est_rows=1_000_000, pool="read"))
        dag.add_task(Task("w", lambda c: None, est_rows=1_000_000, pool="write"))
        result = scheduler.execute(dag, wlm=wlm)
        # Separate single-slot pools: the two tasks overlap.
        runs = result.runs
        assert runs["r"].node_id != runs["w"].node_id


class TestTopology:
    def test_resize_grows_and_shrinks(self):
        topo = Topology()
        topo.resize(5)
        assert topo.size == 5
        topo.resize(2)
        assert topo.size == 2

    def test_remove_unknown_node(self):
        with pytest.raises(TopologyError):
            Topology().remove_node(99)

    def test_removed_node_marked_dead(self):
        topo = Topology()
        node = topo.add_node()
        topo.remove_node(node.node_id)
        assert not node.alive

    def test_total_slots(self):
        topo = Topology()
        topo.add_nodes(3, slots=4)
        assert topo.total_slots == 12


class TestAutoscaler:
    def test_more_files_more_nodes(self):
        scaler = Autoscaler(DcpConfig())
        few = scaler.nodes_for_load(100_000_000, source_files=4)
        many = scaler.nodes_for_load(100_000_000, source_files=400)
        assert many > few

    def test_file_count_caps_parallelism(self):
        """Reading within a source file does not scale out (Section 7.1)."""
        scaler = Autoscaler(DcpConfig(slots_per_node=2))
        assert scaler.nodes_for_load(10**9, source_files=2) == 1

    def test_elastic_cap_respected(self):
        scaler = Autoscaler(DcpConfig(elastic_max_nodes=3))
        assert scaler.nodes_for_load(10**9, source_files=1000) <= 3
        assert scaler.nodes_for_query(10**9) <= 3

    def test_minimum_one_node(self):
        scaler = Autoscaler(DcpConfig())
        assert scaler.nodes_for_load(1, 1) == 1
        assert scaler.nodes_for_query(0) == 1


class TestWlm:
    def test_separate_pools_are_disjoint(self):
        wlm = WorkloadManager(DcpConfig(fixed_nodes=2), separate_pools=True)
        read_ids = {n.node_id for n in wlm.pool("read").nodes}
        write_ids = {n.node_id for n in wlm.pool("write").nodes}
        assert not (read_ids & write_ids)

    def test_shared_pool_is_same_object(self):
        wlm = WorkloadManager(DcpConfig(), separate_pools=False)
        assert wlm.pool("read") is wlm.pool("write")

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError):
            WorkloadManager(DcpConfig()).pool("etl")

    def test_resize_pool(self):
        wlm = WorkloadManager(DcpConfig(fixed_nodes=2))
        wlm.resize_pool("write", 6)
        assert wlm.pool("write").size == 6
        assert wlm.pool("read").size == 2
