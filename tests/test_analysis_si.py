"""Tests for the snapshot-isolation history sanitizer (repro.analysis.si).

Synthetic histories exercise each axiom in both directions (violating and
clean), and a live-recorder section proves the sanitizer sees real engine
histories through the EventBus — including that a genuine write-write
conflict is *aborted* by the engine and therefore never shows up as a
first-committer-wins violation.
"""

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, Warehouse
from repro.analysis.si import (
    HistoryRecorder,
    TxnRecord,
    check_history,
    format_violations,
    load_history_jsonl,
)
from repro.common.errors import WriteConflictError
from tests.conftest import small_config


def committed(txid, begin_seq, commit_seq, units=(), tables=(), reads=(),
              isolation="snapshot"):
    """A committed TxnRecord with the given snapshot window."""
    return TxnRecord(
        txid=txid,
        begin_seq=begin_seq,
        commit_seq=commit_seq,
        committed=True,
        units=tuple(units),
        tables=tuple(tables),
        reads=list(reads),
        isolation=isolation,
    )


class TestFirstCommitterWins:
    def test_concurrent_double_commit_same_unit_flagged(self):
        history = [
            committed(1, begin_seq=5, commit_seq=10, units=("table:1001",)),
            committed(2, begin_seq=5, commit_seq=11, units=("table:1001",)),
        ]
        violations = check_history(history)
        assert [v.check for v in violations if v.check == "first-committer-wins"]

    def test_sequential_commits_same_unit_clean(self):
        # Txn 2 began after txn 1 committed: not concurrent.
        history = [
            committed(1, begin_seq=5, commit_seq=10, units=("table:1001",)),
            committed(2, begin_seq=10, commit_seq=11, units=("table:1001",)),
        ]
        assert check_history(history) == []

    def test_concurrent_commits_disjoint_units_clean(self):
        history = [
            committed(1, begin_seq=5, commit_seq=10, units=("table:1001",)),
            committed(2, begin_seq=5, commit_seq=11, units=("table:1002",)),
        ]
        assert check_history(history) == []

    def test_file_granularity_disjoint_files_clean(self):
        history = [
            committed(1, 5, 10, units=("file:1001/a.page",)),
            committed(2, 5, 11, units=("file:1001/b.page",)),
        ]
        assert check_history(history) == []

    def test_aborted_loser_clean(self):
        # The engine's actual behavior: the loser aborts, no violation.
        history = [
            committed(1, begin_seq=5, commit_seq=10, units=("table:1001",)),
            TxnRecord(txid=2, begin_seq=5, aborted=True,
                      abort_reason="WriteConflictError"),
        ]
        assert check_history(history) == []


class TestReadsFromSnapshot:
    def test_read_past_snapshot_flagged(self):
        record = committed(1, begin_seq=5, commit_seq=9,
                           reads=[(1001, 7)])  # 7 > begin 5
        violations = check_history([record])
        assert [v for v in violations if v.check == "reads-from-snapshot"]

    def test_non_repeatable_read_flagged(self):
        record = committed(1, begin_seq=9, commit_seq=12,
                           reads=[(1001, 5), (1001, 7)])
        violations = check_history([record])
        assert any(
            "non-repeatable" in v.message for v in violations
        )

    def test_pinned_reads_clean(self):
        record = committed(1, begin_seq=9, commit_seq=12,
                           reads=[(1001, 5), (1001, 5), (1002, 9)])
        assert check_history([record]) == []

    def test_rcsi_exempt_from_read_checks(self):
        # RCSI re-snapshots per statement: moving reads are legal.
        record = committed(1, begin_seq=5, commit_seq=12, isolation="rcsi",
                           reads=[(1001, 5), (1001, 7)])
        assert check_history([record]) == []

    def test_record_without_begin_skipped(self):
        # Recorder attached mid-run: no begin event, nothing to judge.
        record = TxnRecord(txid=1, committed=True, commit_seq=9,
                           reads=[(1001, 7)])
        assert check_history([record]) == []


class TestNoLostUpdates:
    def test_update_over_stale_read_flagged(self):
        # Txn 1 read table 1001 at its snapshot, txn 2 committed to the
        # same unit in between, txn 1 still committed its update: lost
        # update (the engine would really have aborted txn 1).
        history = [
            committed(1, begin_seq=5, commit_seq=12,
                      units=("table:1001",), reads=[(1001, 5)]),
            committed(2, begin_seq=5, commit_seq=8, units=("table:1001",)),
        ]
        violations = check_history(history)
        assert any(v.check == "no-lost-updates" for v in violations)

    def test_no_read_of_the_table_not_a_lost_update(self):
        # Blind writes to disjoint files can interleave without loss.
        history = [
            committed(1, begin_seq=5, commit_seq=12,
                      units=("file:1001/a.page",)),
            committed(2, begin_seq=5, commit_seq=8,
                      units=("file:1001/b.page",)),
        ]
        assert check_history(history) == []

    def test_intermediate_commit_outside_window_clean(self):
        history = [
            committed(1, begin_seq=8, commit_seq=12,
                      units=("table:1001",), reads=[(1001, 8)]),
            committed(2, begin_seq=3, commit_seq=7, units=("table:1001",)),
        ]
        # Txn 2 committed before txn 1's snapshot: visible, not lost.
        assert check_history(history) == []


class TestViolationRendering:
    def test_render_and_format(self):
        history = [
            committed(1, 5, 10, units=("table:1001",)),
            committed(2, 5, 11, units=("table:1001",)),
        ]
        violations = check_history(history)
        text = format_violations(violations)
        assert "first-committer-wins" in text
        assert "(txns 1, 2)" in text


class TestRecorderLive:
    """The recorder against a real warehouse: events arrive via the bus."""

    @staticmethod
    def _warehouse():
        dw = Warehouse(config=small_config(), auto_optimize=False)
        recorder = HistoryRecorder().attach(dw.context.bus)
        return dw, recorder

    @staticmethod
    def _ids(n, start=0):
        return {
            "id": np.arange(start, start + n, dtype=np.int64),
            "v": np.zeros(n),
        }

    def test_autocommit_history_records_commits(self):
        dw, recorder = self._warehouse()
        s = dw.session()
        s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                       distribution_column="id")
        s.insert("t", self._ids(10))
        history = recorder.history()
        assert any(r.committed and r.commit_seq is not None for r in history)
        assert check_history(history) == []

    def test_real_conflict_aborts_loser_and_history_stays_clean(self):
        dw, recorder = self._warehouse()
        setup = dw.session()
        setup.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                           distribution_column="id")
        setup.insert("t", self._ids(50))

        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.update("t", BinOp("<", Col("id"), Lit(50)), {"v": Lit(1.0)})
        b.update("t", BinOp("<", Col("id"), Lit(10)), {"v": Lit(2.0)})
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()

        recorder.detach()
        history = recorder.history()
        aborted = [r for r in history if r.aborted]
        assert aborted and aborted[0].abort_reason == "WriteConflictError"
        assert check_history(history) == []

    def test_tampered_history_is_caught(self):
        # Force the loser to "commit" anyway: the sanitizer must object.
        dw, recorder = self._warehouse()
        setup = dw.session()
        setup.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                           distribution_column="id")
        setup.insert("t", self._ids(50))
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.update("t", BinOp("<", Col("id"), Lit(50)), {"v": Lit(1.0)})
        b.update("t", BinOp("<", Col("id"), Lit(10)), {"v": Lit(2.0)})
        a.commit()
        with pytest.raises(WriteConflictError):
            b.commit()
        recorder.detach()

        history = recorder.history()
        winner = max(
            (r for r in history if r.committed and r.units),
            key=lambda r: r.commit_seq,
        )
        loser = next(r for r in history if r.aborted)
        loser.committed = True
        loser.commit_seq = winner.commit_seq + 1
        loser.units = winner.units
        violations = check_history(history)
        assert any(v.check == "first-committer-wins" for v in violations)

    def test_detach_stops_recording(self):
        dw, recorder = self._warehouse()
        recorder.detach()
        s = dw.session()
        s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")))
        s.insert("t", self._ids(5))
        assert recorder.history() == []

    def test_double_attach_rejected(self):
        dw, recorder = self._warehouse()
        with pytest.raises(RuntimeError):
            recorder.attach(dw.context.bus)


class TestJsonlRoundTrip:
    def test_dump_and_reload_rebuilds_records(self, tmp_path):
        dw = Warehouse(config=small_config(), auto_optimize=False)
        recorder = HistoryRecorder().attach(dw.context.bus)
        s = dw.session()
        s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                       distribution_column="id")
        s.insert("t", {"id": np.arange(20, dtype=np.int64),
                       "v": np.zeros(20)})
        recorder.detach()

        path = tmp_path / "history.jsonl"
        recorder.dump_jsonl(path)
        reloaded = load_history_jsonl(path)

        original = recorder.history()
        assert [r.txid for r in reloaded] == [r.txid for r in original]
        assert [r.commit_seq for r in reloaded] == [
            r.commit_seq for r in original
        ]
        assert check_history(reloaded) == []

    def test_unknown_topics_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"topic": "txn.begin", "txid": 1, "begin_seq": 3}\n'
            '{"topic": "table.created", "table_id": 1001}\n'
            '{"topic": "txn.finished", "txid": 1, "commit_seq": 4,'
            ' "units": ["table:1001"], "tables": [1001]}\n',
            encoding="utf-8",
        )
        records = load_history_jsonl(path)
        assert len(records) == 1
        assert records[0].committed and records[0].commit_seq == 4
