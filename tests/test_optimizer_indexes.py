"""Secondary indexes: build format, catalog rows, pruning, staleness safety."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.optimizer.indexes import (
    FILE_COLUMN,
    SortedRunIndex,
    build_index_bytes,
    index_schema,
)
from repro.pagefile.schema import Field
from repro.sqldb import system_tables as catalog

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def rows(start, count):
    ids = np.arange(start, start + count, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


class TestSortedRunFormat:
    def test_round_trip_sorted_and_deduplicated(self):
        field = Field(name="k", type="int64")
        pairs = [(3, "b"), (1, "a"), (3, "b"), (2, "a"), (3, "a")]
        data, entries = build_index_bytes(field, pairs, row_group_size=2)
        assert entries == 4  # the duplicate (3, "b") collapses
        index = SortedRunIndex.from_bytes("k", data, ["a", "b"])
        assert index.keys == [1, 2, 3, 3]
        assert index.files == ["a", "a", "a", "b"]

    def test_schema_pairs_key_with_file_column(self):
        schema = index_schema(Field(name="k", type="string"))
        assert [f.name for f in schema.fields] == ["k", FILE_COLUMN]

    def test_files_for_equality(self):
        field = Field(name="k", type="int64")
        data, _ = build_index_bytes(
            field, [(1, "a"), (1, "b"), (2, "b")], row_group_size=8
        )
        index = SortedRunIndex.from_bytes("k", data, ["a", "b"])
        assert index.files_for_equality(1) == {"a", "b"}
        assert index.files_for_equality(2) == {"b"}
        assert index.files_for_equality(9) == set()

    def test_prunable_files_respects_coverage(self):
        field = Field(name="k", type="int64")
        data, _ = build_index_bytes(field, [(1, "a")], row_group_size=8)
        index = SortedRunIndex.from_bytes("k", data, ["a"])
        # "new" was committed after the build: never prunable, even
        # though the index has no entry for it.
        assert index.prunable_files(2, {"a", "new"}) == {"a"}
        assert index.prunable_files(1, {"a", "new"}) == set()


class TestCreateIndex:
    def test_create_index_writes_blob_and_catalog_row(self, warehouse, session):
        table_id = session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 100))
        payload = session.create_index("t", "idx_t_id", "id")
        assert payload["column"] == "id"
        assert payload["entries"] > 0
        assert "/_indexes/" in payload["path"]
        blob = warehouse.context.store.get(payload["path"])
        assert len(blob.data) == payload["size_bytes"]
        txn = warehouse.context.sqldb.begin()
        try:
            listed = catalog.indexes_for_table(txn, table_id)
        finally:
            txn.abort()
        assert [r["index_name"] for r in listed] == ["idx_t_id"]
        assert sorted(listed[0]["covered_files"]) == sorted(
            session.table_snapshot("t").files
        )

    def test_unknown_column_rejected(self, session):
        from repro.common.errors import CatalogError

        session.create_table("t", SCHEMA, distribution_column="id")
        with pytest.raises(CatalogError):
            session.create_index("t", "idx", "nope")

    def test_rebuild_replaces_catalog_row(self, warehouse, session):
        table_id = session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 50))
        first = session.create_index("t", "idx", "id")
        session.insert("t", rows(50, 50))
        second = session.create_index("t", "idx", "id")
        assert second["sequence_id"] > first["sequence_id"]
        assert second["path"] != first["path"]
        txn = warehouse.context.sqldb.begin()
        try:
            listed = catalog.indexes_for_table(txn, table_id)
        finally:
            txn.abort()
        assert len(listed) == 1
        assert listed[0]["path"] == second["path"]

    def test_sql_create_index_statement(self, session):
        session.sql("CREATE TABLE t (id bigint, v double)")
        session.sql("INSERT INTO t (id, v) VALUES (1, 1.0), (2, 2.0)")
        assert session.sql("CREATE INDEX idx_t_id ON t (id)") > 0
        dmv = session.sql(
            "SELECT index_name, column_name, entries FROM sys.dm_index_stats"
        )
        assert list(dmv["index_name"]) == ["idx_t_id"]
        assert str(dmv["column_name"][0]) == "id"


class TestIndexPruning:
    @pytest.fixture
    def indexed(self, warehouse, session):
        session.create_table("t", SCHEMA, distribution_column="id")
        # Several inserts so the snapshot holds many files; with a
        # hash-distributed key, zone maps cannot prune equality probes.
        for start in range(0, 400, 100):
            session.insert("t", rows(start, 100))
        session.create_index("t", "idx", "id")
        return warehouse, session

    def test_equality_probe_prunes_files(self, indexed):
        warehouse, session = indexed
        assert len(session.table_snapshot("t").files) > 1
        out = session.sql("SELECT v FROM t WHERE id = 123")
        assert list(out["v"]) == [123.0]
        text = session.sql("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 123")
        assert "files_pruned=" in text
        usage = warehouse.context.optimizer.index_usage(
            self_table_id(warehouse), "idx"
        )
        assert usage["lookups"] >= 1
        assert usage["files_pruned"] >= 1

    def test_pruning_disabled_by_config(self, config):
        config.optimizer.index_pruning = False
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(0, 100))
        session.create_index("t", "idx", "id")
        out = session.sql("SELECT v FROM t WHERE id = 7")
        assert list(out["v"]) == [7.0]
        usage = dw.context.optimizer.index_usage(self_table_id(dw), "idx")
        assert usage["lookups"] == 0

    def test_stale_index_never_hides_rows(self, indexed):
        _, session = indexed
        # Rows committed after the build are uncovered: always scanned.
        session.insert("t", rows(400, 10))
        out = session.sql("SELECT v FROM t WHERE id = 405")
        assert list(out["v"]) == [405.0]
        # And covered keys still answer correctly alongside them.
        out = session.sql("SELECT v FROM t WHERE id = 42")
        assert list(out["v"]) == [42.0]

    def test_pruned_scan_matches_full_scan(self, indexed):
        _, session = indexed
        for key in (0, 123, 250, 399, 9999):
            pruned = session.sql(f"SELECT id, v FROM t WHERE id = {key}")
            expected = [float(key)] if 0 <= key < 400 else []
            assert list(pruned["v"]) == expected

    def test_deleted_rows_stay_deleted_under_pruning(self, indexed):
        _, session = indexed
        session.sql("DELETE FROM t WHERE id = 123")
        out = session.sql("SELECT v FROM t WHERE id = 123")
        assert list(out["v"]) == []


def self_table_id(dw, name="t"):
    txn = dw.context.sqldb.begin()
    try:
        return catalog.find_table_by_name(txn, name)["table_id"]
    finally:
        txn.abort()
