"""CFG construction and dataflow tests on synthetic functions.

Exercises the edge model the leak analysis depends on: normal vs
exception edges, the ``exc-base`` classification (``except Exception``
cannot catch ``SimulatedCrash``), ``finally`` duplication, and the
forward gen/kill solver.
"""

import ast
import textwrap

from repro.analysis.cfg import EXC, EXC_BASE, NORMAL, build_cfg, completion
from repro.analysis.dataflow import GenKill, drop_exc_base


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        n for n in tree.body if isinstance(n, ast.FunctionDef)
    )
    return build_cfg(func)


def edge_kinds(cfg):
    return {kind for block in cfg.blocks for _, kind in block.succs}


def blocks_matching(cfg, predicate):
    return [b for b in cfg.blocks if b.stmt is not None and predicate(b.stmt)]


def test_straight_line_has_only_normal_and_exc_edges():
    cfg = cfg_of(
        """
        def f():
            a = g()
            return a
        """
    )
    kinds = edge_kinds(cfg)
    assert NORMAL in kinds
    assert EXC_BASE not in kinds


def test_except_exception_leaves_exc_base_escape():
    cfg = cfg_of(
        """
        def f():
            try:
                work()
            except Exception:
                handle()
        """
    )
    # SimulatedCrash subclasses BaseException: the unmatched edge out of
    # a try whose handlers stop at Exception is crash-only.
    assert EXC_BASE in edge_kinds(cfg)


def test_bare_except_catches_everything():
    cfg = cfg_of(
        """
        def f():
            try:
                work()
            except:
                handle()
        """
    )
    assert EXC_BASE not in edge_kinds(cfg)


def test_while_true_without_break_has_no_normal_exit():
    cfg = cfg_of(
        """
        def f():
            while True:
                work()
        """
    )
    preds = cfg.preds()
    normal_exit_preds = [
        b for b, kind in preds.get(cfg.exit_block.bid, []) if kind == NORMAL
    ]
    assert not normal_exit_preds


def test_finally_release_clears_both_paths():
    cfg = cfg_of(
        """
        def f():
            x = acquire()
            try:
                work()
            finally:
                release(x)
        """
    )
    gen = {}
    kill = {}
    for block in cfg.blocks:
        if isinstance(block.stmt, ast.Assign):
            gen.setdefault(block.bid, set()).add("x")
        src = ast.dump(block.stmt) if block.stmt is not None else ""
        if "release" in src:
            kill.setdefault(block.bid, set()).add("x")
    in_states = GenKill(gen=gen, kill=kill).solve(cfg)
    assert "x" not in in_states[cfg.exit_block.bid]
    assert "x" not in in_states[cfg.raise_block.bid]


def test_missing_release_reaches_exit_held():
    cfg = cfg_of(
        """
        def f():
            x = acquire()
            work(x)
            return None
        """
    )
    gen = {}
    for block in cfg.blocks:
        if isinstance(block.stmt, ast.Assign):
            gen.setdefault(block.bid, set()).add("x")
    in_states = GenKill(gen=gen, kill={}).solve(cfg)
    assert "x" in in_states[cfg.exit_block.bid]
    assert "x" in in_states[cfg.raise_block.bid]


def test_drop_exc_base_filter_hides_crash_only_paths():
    cfg = cfg_of(
        """
        def f():
            x = acquire()
            try:
                work(x)
            except Exception as error:
                release(x)
                raise
            release(x)
        """
    )
    gen, kill = {}, {}
    for block in cfg.blocks:
        if isinstance(block.stmt, ast.Assign) and isinstance(
            block.stmt.value, ast.Call
        ):
            gen.setdefault(block.bid, set()).add("x")
        src = ast.dump(block.stmt) if block.stmt is not None else ""
        if "'release'" in src:
            kill.setdefault(block.bid, set()).add("x")
    # With crash edges included, the exc-base escape holds x at raise.
    full = GenKill(gen=gen, kill=kill).solve(cfg)
    assert "x" in full[cfg.raise_block.bid]
    # The leak analysis drops exc-base: recovery scavenges crash leftovers.
    filtered = GenKill(gen=gen, kill=kill).solve(cfg, edge_filter=drop_exc_base)
    assert "x" not in filtered[cfg.raise_block.bid]
    assert "x" not in filtered[cfg.exit_block.bid]


def test_safe_statements_have_no_exc_edges():
    cfg = cfg_of(
        """
        def f(tel):
            data = {}
            items = []
            flag = tel is not None
            return data, items, flag
        """
    )
    for block in blocks_matching(
        cfg, lambda s: isinstance(s, (ast.Assign, ast.AnnAssign))
    ):
        kinds = {kind for _, kind in block.succs}
        assert EXC not in kinds and EXC_BASE not in kinds


def parse_stmts(source):
    return ast.parse(textwrap.dedent(source)).body


def test_completion_return_and_raise():
    assert completion(parse_stmts("return 1")) == (False, True)
    assert completion(parse_stmts("raise ValueError()")) == (False, False)
    assert completion(parse_stmts("x = 1")) == (True, False)


def test_completion_branches():
    both_raise = """
    if cond:
        raise ValueError()
    else:
        raise KeyError()
    """
    assert completion(parse_stmts(both_raise)) == (False, False)
    one_falls = """
    if cond:
        raise ValueError()
    """
    assert completion(parse_stmts(one_falls)) == (True, False)
    body_returns = """
    if cond:
        return 1
    raise ValueError()
    """
    assert completion(parse_stmts(body_returns)) == (False, True)
