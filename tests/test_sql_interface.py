"""Tests for the SQL text interface: lexer, parser, binder, runner."""

import numpy as np
import pytest

from repro import Warehouse
from repro.sql import SqlSession
from repro.sql.ast_nodes import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse
from tests.conftest import small_config


@pytest.fixture
def sql():
    dw = Warehouse(config=small_config(), auto_optimize=False)
    session = SqlSession(dw.session())
    session.execute(
        "CREATE TABLE items (item_id bigint, label varchar, price double, "
        "day bigint) WITH (distribution = item_id, sort = item_id)"
    )
    session.execute(
        "INSERT INTO items (item_id, label, price, day) VALUES "
        "(1, 'alpha', 10.0, 728659), (2, 'beta', 20.0, 728659), "
        "(3, 'alpha', 30.0, 728660), (4, 'gamma', 40.0, 728661)"
    )
    return session


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("SELECT a1, 'it''s', 3.5 FROM t -- comment")
        kinds = [(t.kind, t.value) for t in tokens]
        assert ("keyword", "SELECT") in kinds
        assert ("ident", "a1") in kinds
        assert ("string", "it's") in kinds
        assert ("number", "3.5") in kinds
        assert kinds[-1][0] == "eof"

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].value == "SELECT"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("SELECT 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @")

    def test_multichar_operators(self):
        values = [t.value for t in tokenize("a <> b <= c >= d")]
        assert "<>" in values and "<=" in values and ">=" in values


class TestParser:
    def test_select_shape(self):
        stmt = parse(
            "SELECT a, SUM(b) AS total FROM t JOIN u ON x = y "
            "WHERE a > 1 AND b < 2 GROUP BY a HAVING SUM(b) > 0 "
            "ORDER BY total DESC LIMIT 5"
        )
        assert isinstance(stmt, SelectStatement)
        assert stmt.table == "t"
        assert stmt.joins[0].table == "u"
        assert [c.name for c in stmt.group_by] == ["a"]
        assert stmt.order_by == [("total", False)]
        assert stmt.limit == 5

    def test_insert_shape(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ["a", "b"]
        assert stmt.rows == [[1, "x"], [2, "y"]]

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlSyntaxError, match="expected 2"):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_delete_update_shapes(self):
        assert isinstance(parse("DELETE FROM t WHERE a = 1"), DeleteStatement)
        stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE a < 5")
        assert isinstance(stmt, UpdateStatement)
        assert [c for c, __ in stmt.assignments] == ["a", "b"]

    def test_negative_literals(self):
        stmt = parse("INSERT INTO t (a) VALUES (-5)")
        assert stmt.rows == [[-5]]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse("SELECT a FROM t extra garbage ;")

    def test_date_literal(self):
        import datetime
        stmt = parse("SELECT a FROM t WHERE d >= DATE '1994-01-01'")
        literal = stmt.where.right
        assert literal.value == datetime.date(1994, 1, 1).toordinal()

    def test_qualified_columns(self):
        stmt = parse("SELECT t.a FROM t JOIN u ON t.k = u.k")
        assert stmt.items[0].expr.qualifier == "t"

    def test_operator_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a + 1 * 2 = 3")
        # 1 * 2 binds tighter than +.
        comparison = stmt.where
        assert comparison.op == "=="
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"


class TestRunner:
    def test_select_filter_order(self, sql):
        out = sql.execute(
            "SELECT item_id, price FROM items WHERE price > 15 ORDER BY price DESC"
        )
        assert out["item_id"].tolist() == [4, 3, 2]

    def test_select_star(self, sql):
        out = sql.execute("SELECT * FROM items ORDER BY item_id LIMIT 2")
        assert list(out) == ["item_id", "label", "price", "day"]
        assert len(out["item_id"]) == 2

    def test_aggregates(self, sql):
        out = sql.execute(
            "SELECT label, SUM(price) AS total, COUNT(*) AS n, AVG(price) AS avg_p "
            "FROM items GROUP BY label ORDER BY label"
        )
        assert out["label"].tolist() == ["alpha", "beta", "gamma"]
        assert out["total"].tolist() == [40.0, 20.0, 40.0]
        assert out["n"].tolist() == [2, 1, 1]

    def test_global_aggregate(self, sql):
        out = sql.execute("SELECT COUNT(*) AS n, MIN(price) AS lo FROM items")
        assert out["n"][0] == 4 and out["lo"][0] == 10.0

    def test_count_distinct(self, sql):
        out = sql.execute("SELECT COUNT(DISTINCT label) AS d FROM items")
        assert out["d"][0] == 3

    def test_having(self, sql):
        out = sql.execute(
            "SELECT label, SUM(price) AS total FROM items "
            "GROUP BY label HAVING SUM(price) > 25"
        )
        assert sorted(out["label"].tolist()) == ["alpha", "gamma"]

    def test_expression_over_aggregates(self, sql):
        out = sql.execute("SELECT SUM(price) / COUNT(*) AS mean FROM items")
        assert out["mean"][0] == pytest.approx(25.0)

    def test_like_in_between_not(self, sql):
        out = sql.execute("SELECT item_id FROM items WHERE label LIKE 'a%'")
        assert sorted(out["item_id"].tolist()) == [1, 3]
        out = sql.execute("SELECT item_id FROM items WHERE label IN ('beta', 'gamma')")
        assert sorted(out["item_id"].tolist()) == [2, 4]
        out = sql.execute("SELECT item_id FROM items WHERE price BETWEEN 15 AND 35")
        assert sorted(out["item_id"].tolist()) == [2, 3]
        out = sql.execute("SELECT item_id FROM items WHERE NOT label = 'alpha'")
        assert sorted(out["item_id"].tolist()) == [2, 4]

    def test_case_expression(self, sql):
        out = sql.execute(
            "SELECT item_id, CASE WHEN price >= 30 THEN 'high' ELSE 'low' END "
            "AS tier FROM items ORDER BY item_id"
        )
        assert out["tier"].tolist() == ["low", "low", "high", "high"]

    def test_join(self, sql):
        sql.execute("CREATE TABLE tags (tag_item bigint, tag varchar)")
        sql.execute(
            "INSERT INTO tags (tag_item, tag) VALUES (1, 'new'), (3, 'sale')"
        )
        out = sql.execute(
            "SELECT label, tag FROM items JOIN tags ON item_id = tag_item "
            "ORDER BY label"
        )
        assert out["tag"].tolist() == ["new", "sale"]
        assert out["label"].tolist() == ["alpha", "alpha"]

    def test_delete_and_update(self, sql):
        assert sql.execute("DELETE FROM items WHERE label = 'beta'") == 1
        assert sql.execute(
            "UPDATE items SET price = price + 1 WHERE item_id = 1"
        ) == 1
        out = sql.execute("SELECT SUM(price) AS s, COUNT(*) AS n FROM items")
        assert out["n"][0] == 3
        assert out["s"][0] == pytest.approx(11.0 + 30.0 + 40.0)

    def test_delete_without_where(self, sql):
        assert sql.execute("DELETE FROM items") == 4
        assert sql.execute("SELECT COUNT(*) AS n FROM items")["n"][0] == 0

    def test_transactions(self, sql):
        sql.execute("BEGIN")
        sql.execute(
            "INSERT INTO items (item_id, label, price, day) "
            "VALUES (9, 'tx', 1.0, 728662)"
        )
        assert sql.execute("SELECT COUNT(*) AS n FROM items")["n"][0] == 5
        sql.execute("ROLLBACK")
        assert sql.execute("SELECT COUNT(*) AS n FROM items")["n"][0] == 4
        sql.execute("BEGIN TRANSACTION")
        sql.execute("DELETE FROM items WHERE item_id = 1")
        sql.execute("COMMIT")
        assert sql.execute("SELECT COUNT(*) AS n FROM items")["n"][0] == 3

    def test_insert_requires_all_columns(self, sql):
        with pytest.raises(SqlSyntaxError, match="every column"):
            sql.execute("INSERT INTO items (item_id) VALUES (9)")

    def test_unknown_table(self, sql):
        from repro.common.errors import CatalogError
        with pytest.raises(CatalogError, match="unknown table"):
            sql.execute("SELECT a FROM ghost")

    def test_unknown_column(self, sql):
        with pytest.raises(SqlSyntaxError, match="unknown column"):
            sql.execute("SELECT ghost FROM items")

    def test_non_grouped_column_rejected(self, sql):
        with pytest.raises(SqlSyntaxError, match="GROUP BY"):
            sql.execute("SELECT label, price, COUNT(*) AS n FROM items GROUP BY label")

    def test_order_by_must_be_output(self, sql):
        with pytest.raises(SqlSyntaxError, match="select list"):
            sql.execute("SELECT label FROM items ORDER BY price")

    def test_create_with_options(self, sql):
        sql.execute(
            "CREATE TABLE opts (a bigint, b bigint, c varchar) "
            "WITH (distribution = a, sort = (a, b), unique = a)"
        )
        sql.execute("INSERT INTO opts (a, b, c) VALUES (1, 2, 'x')")
        from repro.fe.constraints import UniqueConstraintViolation
        with pytest.raises(UniqueConstraintViolation):
            sql.execute("INSERT INTO opts (a, b, c) VALUES (1, 3, 'y')")

    def test_year_function(self, sql):
        out = sql.execute(
            "SELECT item_id FROM items WHERE YEAR(day) = 1996"
        )
        assert len(out["item_id"]) == 4  # 728659.. are all in 1996

    def test_substring_function(self, sql):
        out = sql.execute(
            "SELECT SUBSTRING(label, 1, 2) AS pre FROM items ORDER BY pre"
        )
        assert out["pre"].tolist() == ["al", "al", "be", "ga"]

    def test_group_by_computed_column_rejected(self, sql):
        """Grouping is by base columns only; aliases are not group keys."""
        with pytest.raises(SqlSyntaxError):
            sql.execute(
                "SELECT SUBSTRING(label, 1, 2) AS pre, COUNT(*) AS n "
                "FROM items GROUP BY pre"
            )


class TestPushdown:
    def test_where_pushdown_prunes_files(self, sql):
        dw_store = sql.session._context.store
        # Sorted, range-partitioned inserts give tight file zone maps.
        for start in (100, 200, 300):
            values = ", ".join(
                f"({i}, 'bulk', 1.0, 728659)" for i in range(start, start + 20)
            )
            sql.execute(
                f"INSERT INTO items (item_id, label, price, day) VALUES {values}"
            )
        # Warm the snapshot cache so both measurements below count only
        # data-file IO, not the first query's manifest loads.
        sql.execute("SELECT item_id FROM items WHERE item_id >= 300")
        before = dw_store.meter.snapshot()
        out = sql.execute("SELECT item_id FROM items WHERE item_id >= 300")
        selective = dw_store.meter.delta(before).bytes_read
        before = dw_store.meter.snapshot()
        sql.execute("SELECT item_id FROM items WHERE price = 1.0")
        full = dw_store.meter.delta(before).bytes_read
        assert len(out["item_id"]) == 20
        assert selective < full


class TestDistinct:
    def test_select_distinct_single(self, sql):
        out = sql.execute("SELECT DISTINCT label FROM items ORDER BY label")
        assert out["label"].tolist() == ["alpha", "beta", "gamma"]

    def test_select_distinct_multi(self, sql):
        sql.execute(
            "INSERT INTO items (item_id, label, price, day) VALUES "
            "(5, 'alpha', 10.0, 728659)"
        )
        out = sql.execute("SELECT DISTINCT label, price FROM items ORDER BY label, price")
        pairs = list(zip(out["label"].tolist(), out["price"].tolist()))
        assert pairs == [
            ("alpha", 10.0), ("alpha", 30.0), ("beta", 20.0), ("gamma", 40.0)
        ]
