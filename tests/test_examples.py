"""The examples are part of the product: each must run cleanly."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # tpch_analytics accepts an optional scale argument; keep it tiny here.
    monkeypatch.setattr(sys, "argv", [str(path), "0.02"])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"
    assert "Traceback" not in out
