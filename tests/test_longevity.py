"""Longevity: the self-healing claim over many WP1 rounds.

Section 8: "Polaris implements automated self-healing optimizations ...
This ensures the system's resilience and robustness."  Concretely, over an
extended mixed workload the autonomous machinery must keep the system in a
steady state: file counts bounded (compaction), manifest replay bounded
(checkpoints), storage bounded (GC), and the data always correct.
"""

import numpy as np
import pytest

from repro import Aggregate, Col, Schema, TableScan, Warehouse
from repro.workloads.lst_bench import LstBenchRunner
from tests.conftest import small_config


@pytest.mark.parametrize("rounds", [4])
def test_wp1_longevity_reaches_steady_state(rounds):
    config = small_config()
    config.distributions = 4
    config.sto.min_healthy_rows_per_file = 50
    config.sto.checkpoint_manifest_threshold = 10
    config.sto.retention_period_s = 200.0
    dw = Warehouse(config=config, auto_optimize=True)
    dw.sto.schedule_periodic_gc(interval_s=100.0)
    runner = LstBenchRunner(dw, scale_factor=0.1, source_files_per_table=2)
    runner.setup()

    file_counts = []
    for round_index in range(rounds):
        runner.run_single_user(f"SU{round_index}")
        runner.run_data_maintenance(f"DM{round_index}")
        dw.clock.advance(config.sto.poll_interval_s + 1)
        dw.sto.tick()
        snapshot = runner.session.table_snapshot("store_sales")
        file_counts.append(len(snapshot.files))

    # Compaction keeps the file count from growing without bound: the last
    # round's count is within 2x of the first post-maintenance count.
    assert file_counts[-1] <= file_counts[0] * 2, file_counts

    # Checkpoints bound manifest replay: a cold rebuild of every table
    # replays at most the checkpoint threshold's worth of manifests each.
    dw.context.cache.invalidate()
    before = dw.context.cache.stats.manifests_replayed
    for name in runner.table_ids:
        runner.session.table_snapshot(name)
    replayed = dw.context.cache.stats.manifests_replayed - before
    assert replayed <= len(runner.table_ids) * (
        config.sto.checkpoint_manifest_threshold + 2
    )

    # GC bounds storage: internal files on disk stay within a small factor
    # of the files any snapshot can still reference.
    dw.clock.advance(config.sto.retention_period_s + 1)
    dw.sto.run_gc()
    on_disk = sum(1 for __ in dw.store.list("internal/"))
    referenced = 0
    for name in runner.table_ids:
        snapshot = runner.session.table_snapshot(name)
        referenced += len(snapshot.files) + len(snapshot.dvs)
    assert on_disk < referenced * 3 + 50, (on_disk, referenced)

    # And the data is still exactly right: totals match a full recount.
    plan = Aggregate(
        TableScan("store_sales", ("ss_quantity",)),
        (),
        {"n": ("count", None), "q": ("sum", Col("ss_quantity"))},
    )
    first = runner.session.query(plan)
    dw.context.cache.invalidate()
    second = dw.session().query(plan)
    assert first["n"][0] == second["n"][0]
    assert first["q"][0] == second["q"][0]
