"""Tests for automatic statement retry on commit conflicts."""

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, Warehouse, WriteConflictError
from tests.conftest import small_config


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


def make_dw(retries):
    config = small_config()
    config.txn.commit_retries = retries
    dw = Warehouse(config=config, auto_optimize=False)
    session = dw.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
    )
    session.insert("t", ids(100))
    return dw, session


class ConflictOnFirstAttempt:
    """A statement whose first execution races a conflicting committer.

    Models an autonomous compaction (or any system transaction) committing
    between the statement's writes and its commit — the scenario
    Section 5.1 warns about.
    """

    def __init__(self, dw):
        self.dw = dw
        self.calls = 0

    def __call__(self, txn):
        from repro.fe import write_path
        from repro.fe.catalog import describe_table

        self.calls += 1
        table_row = describe_table(txn.root, "t")
        deleted = write_path.execute_delete(
            self.dw.context, txn, table_row, BinOp("==", Col("id"), Lit(7))
        )
        if self.calls == 1:
            # A concurrent transaction updates the same table and commits
            # first; this statement's commit will hit the WriteSets row.
            rival = self.dw.session()
            rival.delete("t", BinOp("==", Col("id"), Lit(50)))
        return deleted


def test_autocommit_retries_conflicting_statement():
    dw, session = make_dw(retries=2)
    statement = ConflictOnFirstAttempt(dw)
    result = session._run(statement)
    assert result == 1
    assert statement.calls == 2  # first attempt conflicted, second won
    snapshot = session.table_snapshot("t")
    assert snapshot.live_rows == 98  # both the rival's and our delete


def test_no_retries_propagates_conflict():
    dw, session = make_dw(retries=0)
    statement = ConflictOnFirstAttempt(dw)
    with pytest.raises(WriteConflictError):
        session._run(statement)
    assert statement.calls == 1


def test_retry_budget_exhausted():
    dw, session = make_dw(retries=1)

    class AlwaysConflict(ConflictOnFirstAttempt):
        def __call__(self, txn):
            self.calls += 1
            from repro.fe import write_path
            from repro.fe.catalog import describe_table

            table_row = describe_table(txn.root, "t")
            deleted = write_path.execute_delete(
                self.dw.context, txn, table_row,
                BinOp("==", Col("id"), Lit(7 + self.calls)),
            )
            rival = self.dw.session()
            rival.delete("t", BinOp("==", Col("id"), Lit(40 + self.calls)))
            return deleted

    statement = AlwaysConflict(dw)
    with pytest.raises(WriteConflictError):
        session._run(statement)
    assert statement.calls == 2  # initial + one retry


def test_explicit_transactions_never_retried():
    dw, session = make_dw(retries=5)
    session.begin()
    session.delete("t", BinOp("==", Col("id"), Lit(1)))
    rival = dw.session()
    rival.delete("t", BinOp("==", Col("id"), Lit(2)))
    with pytest.raises(WriteConflictError):
        session.commit()


def test_retry_count_visible_on_transaction():
    dw, session = make_dw(retries=2)
    statement = ConflictOnFirstAttempt(dw)
    captured = []
    original = statement.__call__

    def wrapped(txn):
        captured.append(txn.retries)
        return original(txn)

    statement.__call__ = wrapped  # type: ignore[method-assign]
    session._run(statement.__call__)
    assert captured == [0, 1]
