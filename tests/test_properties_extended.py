"""Property-based tests for Z-ordering, the snapshot cache, and scheduling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimulatedClock
from repro.common.config import DcpConfig, PolarisConfig
from repro.dcp import Scheduler, Task, WorkflowDag, WorkloadManager
from repro.dcp.costmodel import CostModel
from repro.engine.zorder import morton_codes, zorder_permutation
from repro.lst import AddDataFile, DataFileInfo, SnapshotCache, replay
from repro.storage import ObjectStore

# -- z-ordering ---------------------------------------------------------------

int_columns = st.lists(
    st.integers(min_value=-(10**6), max_value=10**6), min_size=1, max_size=200
)


@given(int_columns)
def test_zorder_single_column_preserves_value_order(values):
    arr = np.array(values, dtype=np.int64)
    codes = morton_codes([arr])
    # Codes are a monotone function of the value: sorting by code sorts
    # the values.
    by_code = arr[np.argsort(codes, kind="stable")]
    assert by_code.tolist() == sorted(values)


@given(int_columns, st.integers(min_value=1, max_value=3))
def test_zorder_permutation_is_a_permutation(values, dims):
    batch = {
        f"c{d}": np.roll(np.array(values, dtype=np.int64), d)
        for d in range(dims)
    }
    perm = zorder_permutation(batch, sorted(batch))
    assert sorted(perm.tolist()) == list(range(len(values)))


@given(int_columns)
def test_zorder_deterministic(values):
    arrs = [np.array(values, dtype=np.int64), np.array(values[::-1], dtype=np.int64)]
    np.testing.assert_array_equal(morton_codes(arrs), morton_codes(arrs))


@given(st.lists(st.sampled_from([0, 1, 2]), min_size=2, max_size=100))
def test_zorder_constant_column_is_neutral(other):
    """A constant key column must not perturb the order of the others."""
    arr = np.array(other, dtype=np.int64)
    constant = np.zeros(len(arr), dtype=np.int64)
    with_const = morton_codes([arr, constant])
    alone = morton_codes([arr])
    np.testing.assert_array_equal(
        np.argsort(with_const, kind="stable"), np.argsort(alone, kind="stable")
    )


# -- snapshot cache ≡ direct replay ------------------------------------------------


def _df(name):
    return DataFileInfo(name=name, path=f"p/{name}", num_rows=1, size_bytes=8,
                        distribution=0)


@given(
    st.integers(min_value=1, max_value=12),
    st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=20),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_cache_any_access_pattern_matches_replay(total, accesses, max_versions):
    history = [
        (seq, float(seq), [AddDataFile(_df(f"f{seq}"))])
        for seq in range(1, total + 1)
    ]

    def load_manifests(table_id, lo, hi):
        return [h for h in history if lo < h[0] <= hi]

    cache = SnapshotCache(
        load_manifests, lambda t, s: None, max_versions_per_table=max_versions
    )
    for seq in accesses:
        seq = min(seq, total)
        got = cache.get(1, seq)
        expected = replay(history[:seq])
        assert got.files == expected.files
        assert got.sequence_id == expected.sequence_id


# -- scheduler determinism -------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5_000_000),  # est rows
            st.integers(min_value=0, max_value=4),  # depends on task i-k
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_scheduler_deterministic_and_respects_dependencies(specs, nodes):
    def build_and_run():
        config = PolarisConfig()
        config.dcp.fixed_nodes = nodes
        clock = SimulatedClock()
        store = ObjectStore(clock=clock, config=config.storage)
        scheduler = Scheduler(
            clock, store, CostModel(config.dcp, config.storage), config.dcp
        )
        wlm = WorkloadManager(config.dcp)
        dag = WorkflowDag()
        for index, (rows, back) in enumerate(specs):
            deps = []
            if back and index - back >= 0:
                deps = [f"t{index - back}"]
            dag.add_task(
                Task(f"t{index}", lambda c: None, est_rows=rows), depends_on=deps
            )
        result = scheduler.execute(dag, wlm=wlm)
        return result

    first = build_and_run()
    second = build_and_run()
    assert first.finished_at == second.finished_at
    for task_id, run in first.runs.items():
        assert second.runs[task_id].start == run.start
        assert second.runs[task_id].finish == run.finish
    # Dependencies respected: a task starts at or after its upstream ends.
    for index, (rows, back) in enumerate(specs):
        if back and index - back >= 0:
            upstream = first.runs[f"t{index - back}"]
            downstream = first.runs[f"t{index}"]
            assert downstream.finish >= upstream.finish
