"""The join-algorithm zoo: equivalence, cost model, and plan choice."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.engine import operators
from repro.engine.batch import num_rows
from repro.engine.explain import JOIN_ALGORITHM_LABELS
from repro.engine.operators import JOIN_ALGORITHMS
from repro.optimizer.cost import (
    HASH_SPILL_ROWS,
    choose_join_algorithm,
    join_algorithm_cost,
)
from repro.workloads.tpch import TPCH_SQL_QUERIES, TpchGenerator
from repro.workloads.tpch.schema import TPCH_DISTRIBUTION, TPCH_SCHEMAS
from tests.conftest import small_config


def canonical(batch):
    names = sorted(batch)
    return sorted(
        tuple(batch[name][i] for name in names)
        for i in range(num_rows(batch))
    )


def left_batch(rng, n):
    return {
        "a": rng.integers(0, 40, size=n).astype(np.int64),
        "la": rng.random(n),
    }


def right_batch(rng, n):
    return {
        "b": rng.integers(0, 40, size=n).astype(np.int64),
        "rb": rng.random(n),
    }


class TestAlgorithmEquivalence:
    @pytest.mark.parametrize("how", ["inner", "left-semi", "left-anti"])
    @pytest.mark.parametrize("algorithm", sorted(JOIN_ALGORITHMS))
    def test_every_algorithm_matches_hash(self, algorithm, how):
        rng = np.random.default_rng(7)
        left = left_batch(rng, 200)
        right = right_batch(rng, 120)
        reference = operators.join(
            left, right, ("a",), ("b",), how, algorithm="hash"
        )
        candidate = operators.join(
            left, right, ("a",), ("b",), how, algorithm=algorithm
        )
        assert canonical(candidate) == canonical(reference)

    @pytest.mark.parametrize("algorithm", sorted(JOIN_ALGORITHMS))
    def test_empty_inputs(self, algorithm):
        rng = np.random.default_rng(3)
        left = left_batch(rng, 50)
        empty = {"b": np.array([], dtype=np.int64), "rb": np.array([])}
        out = operators.join(
            left, empty, ("a",), ("b",), "inner", algorithm=algorithm
        )
        assert num_rows(out) == 0
        anti = operators.join(
            left, empty, ("a",), ("b",), "left-anti", algorithm=algorithm
        )
        assert num_rows(anti) == 50

    @pytest.mark.parametrize("algorithm", sorted(JOIN_ALGORITHMS))
    def test_multi_key_join(self, algorithm):
        rng = np.random.default_rng(11)
        left = {
            "a": rng.integers(0, 6, size=80).astype(np.int64),
            "c": rng.integers(0, 4, size=80).astype(np.int64),
        }
        right = {
            "b": rng.integers(0, 6, size=60).astype(np.int64),
            "d": rng.integers(0, 4, size=60).astype(np.int64),
        }
        reference = operators.join(
            left, right, ("a", "c"), ("b", "d"), "inner", algorithm="hash"
        )
        candidate = operators.join(
            left, right, ("a", "c"), ("b", "d"), "inner", algorithm=algorithm
        )
        assert canonical(candidate) == canonical(reference)


class TestCostModel:
    def test_every_algorithm_is_priced(self):
        for algorithm in JOIN_ALGORITHMS:
            cost = join_algorithm_cost(algorithm, 1000.0, 1000.0, 500.0)
            assert cost > 0.0

    def test_unknown_algorithm_raises(self):
        from repro.common.errors import PlanError

        with pytest.raises(PlanError):
            join_algorithm_cost("merge_hash", 1.0, 1.0, 1.0)

    def test_tiny_build_side_prefers_block_nl(self):
        algorithm, _ = choose_join_algorithm(
            1000.0, 2.0, 1000.0, right_index=False
        )
        assert algorithm == "block_nl"

    def test_spilling_build_side_prefers_sort_merge(self):
        # Just past the spill threshold the hash join pays the re-read
        # penalty while n·log2(n) is still cheap: sort-merge wins there.
        big = float(HASH_SPILL_ROWS) * 1.5
        spilled = join_algorithm_cost("hash", big, big, big)
        sorted_cost = join_algorithm_cost("sort_merge", big, big, big)
        assert sorted_cost < spilled
        algorithm, _ = choose_join_algorithm(big, big, big, right_index=False)
        assert algorithm == "sort_merge"

    def test_index_nl_needs_an_index(self):
        # A tiny probe side over a huge indexed build side: index_nl wins,
        # but only when the catalog actually has the index.
        args = (10.0, 1.0e6, 10.0)
        with_index, _ = choose_join_algorithm(*args, right_index=True)
        without, _ = choose_join_algorithm(*args, right_index=False)
        assert with_index == "index_nl"
        assert without != "index_nl"

    def test_choice_is_deterministic(self):
        picks = {
            choose_join_algorithm(500.0, 500.0, 400.0, right_index=True)
            for _ in range(10)
        }
        assert len(picks) == 1

    def test_labels_cover_the_zoo(self):
        assert set(JOIN_ALGORITHM_LABELS) == set(JOIN_ALGORITHMS)


@pytest.fixture(scope="module")
def tpch():
    dw = Warehouse(config=small_config(), auto_optimize=False)
    session = dw.session()
    generator = TpchGenerator(scale_factor=0.05, seed=42)
    for name, batch in generator.all_tables().items():
        session.create_table(name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name])
        session.insert(name, batch)
    return dw, session


JOIN_QUERIES = [q for q in sorted(TPCH_SQL_QUERIES) if q in (3, 10, 12)]


class TestPlanChoiceOnTpch:
    def test_explain_switches_algorithm_with_stats(self, tpch):
        """ISSUE acceptance: at least one TPC-H join query plans a
        different join algorithm once statistics exist."""
        _, session = tpch
        tables = session.table_names()
        before = {
            q: session.sql("EXPLAIN " + TPCH_SQL_QUERIES[q])
            for q in JOIN_QUERIES
        }
        for query_text in before.values():
            assert "HashJoin" in query_text  # stats-free default
        for table in tables:
            session.sql(f"ANALYZE {table}")
        after = {
            q: session.sql("EXPLAIN " + TPCH_SQL_QUERIES[q])
            for q in JOIN_QUERIES
        }
        switched = [
            q
            for q in JOIN_QUERIES
            if any(
                label in after[q]
                for name, label in JOIN_ALGORITHM_LABELS.items()
                if name != "hash"
            )
        ]
        assert switched, "no TPC-H join query changed algorithm with stats"

    def test_results_unchanged_by_optimization(self, tpch):
        """The rewritten plans return the same rows (module fixture has
        stats by now thanks to the test above running first)."""
        dw, session = tpch
        baseline = Warehouse(config=small_config(), auto_optimize=False)
        vanilla = baseline.session()
        generator = TpchGenerator(scale_factor=0.05, seed=42)
        for name, batch in generator.all_tables().items():
            vanilla.create_table(
                name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name]
            )
            vanilla.insert(name, batch)
        for qnum in JOIN_QUERIES:
            optimized = session.sql(TPCH_SQL_QUERIES[qnum])
            plain = vanilla.sql(TPCH_SQL_QUERIES[qnum])
            assert canonical(optimized) == canonical(plain)

    def test_explain_analyze_annotates_cost_and_provenance(self, tpch):
        _, session = tpch
        text = session.sql("EXPLAIN ANALYZE " + TPCH_SQL_QUERIES[3])
        assert "est=" in text and "ratio=" in text
        assert "stats=stats" in text
        assert "cost=" in text


class TestOptimizerOffIsIdentity:
    def test_disabled_optimizer_keeps_hash_plans(self, config):
        config.optimizer.enabled = False
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.sql("CREATE TABLE a (x bigint, ax double)")
        session.sql("CREATE TABLE b (y bigint, by_v double)")
        session.insert(
            "a",
            {"x": np.arange(100, dtype=np.int64), "ax": np.zeros(100)},
        )
        session.insert("b", {"y": np.arange(2, dtype=np.int64), "by_v": np.zeros(2)})
        session.sql("ANALYZE a")
        session.sql("ANALYZE b")
        text = session.sql(
            "EXPLAIN SELECT ax, by_v FROM a JOIN b ON x = y"
        )
        assert "HashJoin" in text
        for label in ("SortMergeJoin", "BlockNLJoin", "IndexNLJoin"):
            assert label not in text
