"""Wait statistics end to end: recording, attribution, DMVs, the commit
lock's busy horizon, crash hygiene, and the zero-cost disabled path.

The collector is exercised both directly (unit tests over a bare
``SimulatedClock``) and the way a user reaches it — SQL statements in,
``sys.dm_wait_stats`` / ``sys.dm_exec_query_waits`` rows out — plus the
contention model that motivates the whole subsystem: concurrent commits
queueing on the commit lock's busy horizon (``txn.commit_hold_s``).
"""

import json

import pytest

from repro import PolarisConfig, Warehouse
from repro.chaos import RecoveryManager, SimulatedCrash
from repro.common.clock import SimulatedClock
from repro.sql.runner import SqlSession
from repro.sqldb.locks import CommitLock
from repro.telemetry import WAIT_NAMES, WaitStats, fingerprint
from repro.telemetry.names import NAME_RE


def waits_config(**overrides):
    config = PolarisConfig()
    config.telemetry.wait_stats_enabled = True
    for key, value in overrides.items():
        section, __, attr = key.partition("__")
        if attr:
            setattr(getattr(config, section), attr, value)
        else:
            setattr(config.telemetry, key, value)
    return config


class TestTaxonomy:
    def test_wait_names_are_well_formed(self):
        assert WAIT_NAMES, "the taxonomy must not be empty"
        for kind, meaning in WAIT_NAMES.items():
            assert NAME_RE.match(kind), kind
            assert meaning.strip(), f"{kind} has no meaning"

    def test_unregistered_kind_rejected(self):
        stats = WaitStats(SimulatedClock())
        with pytest.raises(ValueError):
            stats.record_wait("made_up_kind", 1.0)
        with pytest.raises(ValueError):
            stats.waiting("made_up_kind")

    def test_negative_wait_rejected(self):
        stats = WaitStats(SimulatedClock())
        with pytest.raises(ValueError):
            stats.record_wait("commit_lock", -0.1)


class TestRecording:
    def test_record_wait_folds_immediately(self):
        stats = WaitStats(SimulatedClock())
        stats.record_wait("commit_lock", 0.5)
        stats.record_wait("commit_lock", 1.5)
        assert stats.wait_count("commit_lock") == 2
        assert stats.total_wait_s("commit_lock") == 2.0
        (row,) = stats.wait_stats_rows()
        assert row["wait_kind"] == "commit_lock"
        assert row["max_wait_s"] == 1.5
        assert row["mean_wait_s"] == 1.0

    def test_waiting_scope_charges_clock_delta(self):
        clock = SimulatedClock()
        stats = WaitStats(clock)
        with stats.waiting("storage_retry"):
            clock.advance(2.5)
        assert stats.wait_count("storage_retry") == 1
        assert stats.total_wait_s("storage_retry") == 2.5
        assert stats.inflight_count == 0

    def test_waiting_scope_folds_on_ordinary_exception(self):
        clock = SimulatedClock()
        stats = WaitStats(clock)
        with pytest.raises(RuntimeError):
            with stats.waiting("storage_retry"):
                clock.advance(1.0)
                raise RuntimeError("retry gave up")
        # The time was genuinely spent stalled: it still counts.
        assert stats.total_wait_s("storage_retry") == 1.0
        assert stats.inflight_count == 0

    def test_attribution_stacks(self):
        stats = WaitStats(SimulatedClock())
        stats.push_attribution("acme", "etl")
        stats.push_query("deadbeef")
        stats.record_wait("commit_lock", 1.0)
        stats.pop_query()
        stats.pop_attribution()
        stats.record_wait("commit_lock", 2.0)  # unattributed
        (row,) = stats.wait_stats_rows()
        assert row["tenants"] == "acme"
        assert row["workload_classes"] == "etl"
        (qrow,) = stats.query_waits_rows()
        assert qrow["query_hash"] == "deadbeef"
        assert qrow["waits"] == 1
        assert qrow["total_wait_s"] == 1.0

    def test_explicit_attribution_overrides_stack(self):
        stats = WaitStats(SimulatedClock())
        stats.push_attribution("acme", "etl")
        stats.record_wait(
            "queue_deadline", 3.0, tenant="other", workload_class="adhoc"
        )
        (row,) = stats.wait_stats_rows()
        assert row["tenants"] == "other"
        assert row["workload_classes"] == "adhoc"

    def test_snapshot_is_deterministic_across_same_seed_runs(self):
        def run(seed):
            clock = SimulatedClock()
            stats = WaitStats(clock, seed=seed)
            for i in range(200):
                stats.record_wait("commit_lock", 0.01 * (i % 17))
                stats.record_wait("dcp_dispatch", 0.02 * (i % 5))
            return json.dumps(stats.snapshot(), sort_keys=True)

        assert run(7) == run(7)


class TestCommitLockHorizon:
    def test_hold_zero_never_waits(self):
        clock = SimulatedClock()
        stats = WaitStats(clock)
        lock = CommitLock(clock=clock)
        lock.configure(hold_s=0.0, waits=stats)
        for txid in range(1, 5):
            with lock.held(txid):
                pass
        assert stats.wait_count("commit_lock") == 0
        assert lock.total_wait_s == 0.0

    def test_back_to_back_commits_queue_on_the_hold(self):
        clock = SimulatedClock()
        stats = WaitStats(clock)
        lock = CommitLock(clock=clock)
        lock.configure(hold_s=0.5, waits=stats)
        with lock.held(1):
            pass
        # The second commit arrives inside the first's busy horizon and
        # must wait it out; the clock advances by the residual hold.
        before = clock.now
        with lock.held(2):
            pass
        assert clock.now - before == pytest.approx(0.5)
        assert stats.wait_count("commit_lock") == 1
        assert stats.total_wait_s("commit_lock") == pytest.approx(0.5)
        assert lock.acquisitions == 2
        assert lock.total_hold_s == pytest.approx(1.0)

    def test_spaced_commits_do_not_wait(self):
        clock = SimulatedClock()
        stats = WaitStats(clock)
        lock = CommitLock(clock=clock)
        lock.configure(hold_s=0.5, waits=stats)
        with lock.held(1):
            pass
        clock.advance(1.0)  # past the busy horizon
        with lock.held(2):
            pass
        assert stats.wait_count("commit_lock") == 0

    def test_holder_visible_while_held(self):
        lock = CommitLock(clock=SimulatedClock())
        assert not lock.is_held and lock.holder_txid is None
        with lock.held(42):
            assert lock.is_held
            assert lock.holder_txid == 42
        assert not lock.is_held


class TestEndToEnd:
    def test_sql_waits_reach_both_dmvs(self):
        """Commit contention from SQL lands in dm_wait_stats and joins
        dm_exec_query_stats through dm_exec_query_waits."""
        config = waits_config(
            telemetry__query_store_enabled=True, txn__commit_hold_s=0.5
        )
        dw = Warehouse(config=config, auto_optimize=False)
        sql = SqlSession(dw.session())
        sql.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        insert = "INSERT INTO t (id, v) VALUES (1, 1.0)"
        for _ in range(4):
            sql.execute(insert)

        session = dw.session()
        stats_rows = session.sql(
            "SELECT wait_kind, waits, total_wait_s FROM sys.dm_wait_stats"
        )
        kinds = list(stats_rows["wait_kind"])
        assert "commit_lock" in kinds
        idx = kinds.index("commit_lock")
        assert int(stats_rows["waits"][idx]) >= 3
        assert float(stats_rows["total_wait_s"][idx]) > 0

        query_rows = session.sql(
            "SELECT query_hash, wait_kind, waits FROM sys.dm_exec_query_waits"
        )
        insert_hash = fingerprint(insert)
        pairs = list(
            zip(query_rows["query_hash"], query_rows["wait_kind"])
        )
        assert (insert_hash, "commit_lock") in pairs
        # The fingerprint joins against the query store's aggregates.
        stats = session.sql(
            "SELECT query_hash, executions FROM sys.dm_exec_query_stats"
        )
        assert insert_hash in list(stats["query_hash"])

    def test_waits_metrics_mirrored(self):
        config = waits_config(
            metrics=True, txn__commit_hold_s=0.5
        )
        dw = Warehouse(config=config, auto_optimize=False)
        sql = SqlSession(dw.session())
        sql.execute("CREATE TABLE t (id BIGINT, v DOUBLE)")
        for _ in range(3):
            sql.execute("INSERT INTO t (id, v) VALUES (1, 1.0)")
        metrics = dw.telemetry.metrics
        recorded = metrics.value("waits.recorded", kind="commit_lock")
        assert recorded and recorded >= 2
        assert metrics.value("sqldb.commit_lock_acquisitions") >= 3

    def test_disabled_means_none_and_no_rows(self):
        dw = Warehouse(config=PolarisConfig(), auto_optimize=False)
        assert dw.telemetry.waits is None
        batch = dw.session().sql("SELECT * FROM sys.dm_wait_stats")
        assert len(batch["wait_kind"]) == 0


class TestCrashHygiene:
    def test_crash_leaves_scope_open_and_recovery_scavenges(self):
        dw = Warehouse(config=waits_config(metrics=True), auto_optimize=False)
        waits = dw.telemetry.waits
        clock = dw.context.clock
        with pytest.raises(SimulatedCrash):
            with waits.waiting("storage_retry"):
                clock.advance(1.0)
                raise SimulatedCrash("test.crash.site")
        # The dead process never closed the scope: nothing folded.
        assert waits.inflight_count == 1
        assert waits.wait_count("storage_retry") == 0

        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.open_waits_discarded == 1
        assert waits.inflight_count == 0
        # Discarded for good: the aggregates never saw the orphan.
        assert waits.wait_count("storage_retry") == 0
        assert (
            dw.telemetry.metrics.value("recovery.waits_discarded") == 1.0
        )

    def test_scavenged_scope_never_double_counts(self):
        clock = SimulatedClock()
        stats = WaitStats(clock)
        scope = stats.waiting("sto_schedule")
        scope.__enter__()
        clock.advance(1.0)
        assert stats.scavenge() == 1
        # Folding the stale scope after scavenge is a no-op.
        scope.__exit__(None, None, None)
        assert stats.wait_count("sto_schedule") == 0

    def test_clean_recovery_reports_zero(self):
        dw = Warehouse(config=waits_config(), auto_optimize=False)
        report = RecoveryManager(dw.context, sto=dw.sto).recover()
        assert report.open_waits_discarded == 0
