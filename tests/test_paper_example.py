"""The paper's worked example (Section 4.2, Figure 6), end to end.

Transactions X1–X4 over table T1(C1, C2); asserts the exact visibility
the paper walks through: X3's SUM(C2) = 6 throughout its life, the X3
commit conflict with X2, and X4's SUM(C2) = 14.
"""

import numpy as np
import pytest

from repro import (
    Aggregate,
    BinOp,
    Col,
    Lit,
    Schema,
    TableScan,
    Warehouse,
    WriteConflictError,
)
from tests.conftest import small_config

SUM_C2 = Aggregate(TableScan("T1", ("c2",)), (), {"total": ("sum", Col("c2"))})


@pytest.fixture
def dw():
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    session = warehouse.session()
    session.create_table("T1", Schema.of(("c1", "string"), ("c2", "int64")))
    return warehouse


def load_x1(dw):
    """Transaction X1 (t1): load (A,1), (B,2), (C,3) and commit."""
    session = dw.session()
    session.insert(
        "T1",
        {"c1": np.array(["A", "B", "C"], dtype=object), "c2": np.array([1, 2, 3])},
    )
    return session


def test_figure6_full_interleaving(dw):
    load_x1(dw)

    # t2: X2 and X3 start.
    s2, s3 = dw.session(), dw.session()
    s2.begin()
    s3.begin()

    # X3 reads: sees only X1's rows.
    assert s3.query(SUM_C2)["total"][0] == 6

    # X2 inserts (D,4),(E,5) and deletes (A,1).
    s2.insert(
        "T1", {"c1": np.array(["D", "E"], dtype=object), "c2": np.array([4, 5])}
    )
    s2.delete("T1", BinOp("==", Col("c1"), Lit("A")))

    # X2 sees its own changes (2+3+4+5); X3 still sees 6 (SI).
    assert s2.query(SUM_C2)["total"][0] == 14
    assert s3.query(SUM_C2)["total"][0] == 6

    # t3: X2 commits.
    s2.commit()

    # X3 still sees its snapshot after X2's commit.
    assert s3.query(SUM_C2)["total"][0] == 6

    # X3 deletes (B,2) — proceeds without blocking.
    deleted = s3.delete("T1", BinOp("==", Col("c1"), Lit("B")))
    assert deleted == 1
    assert s3.query(SUM_C2)["total"][0] == 4  # its own view: 6 - 2

    # t4: X3's commit detects the WriteSets conflict and rolls back.
    with pytest.raises(WriteConflictError):
        s3.commit()

    # Potential X4 at t4 sees all actions of X1 and X2 — and nothing of X3.
    s4 = dw.session()
    assert s4.query(SUM_C2)["total"][0] == 14


def test_figure6_x3_changes_leave_no_trace(dw):
    load_x1(dw)
    s2, s3 = dw.session(), dw.session()
    s2.begin()
    s3.begin()
    s2.insert("T1", {"c1": np.array(["D"], dtype=object), "c2": np.array([4])})
    s2.delete("T1", BinOp("==", Col("c1"), Lit("A")))
    s2.commit()
    s3.delete("T1", BinOp("==", Col("c1"), Lit("B")))
    with pytest.raises(WriteConflictError):
        s3.commit()
    # B is still present: the aborted delete reverted completely.
    rows = dw.session().query(TableScan("T1", ("c1", "c2")))
    assert "B" in set(rows["c1"])
    assert dw.session().query(SUM_C2)["total"][0] == 6 + 4 - 1


def test_figure6_insert_only_transactions_never_conflict(dw):
    """Inserts are append-only and avoid conflicts with other transactions."""
    load_x1(dw)
    s2, s3 = dw.session(), dw.session()
    s2.begin()
    s3.begin()
    s2.insert("T1", {"c1": np.array(["D"], dtype=object), "c2": np.array([4])})
    s3.insert("T1", {"c1": np.array(["E"], dtype=object), "c2": np.array([5])})
    s2.commit()
    s3.commit()  # no conflict: neither touched WriteSets
    assert dw.session().query(SUM_C2)["total"][0] == 15


def test_figure6_delete_vector_files_created(dw):
    """X2's delete creates a DV file and its Add entry (1DV.parquet analog)."""
    load_x1(dw)
    session = dw.session()
    session.delete("T1", BinOp("==", Col("c1"), Lit("A")))
    snapshot = session.table_snapshot("T1")
    assert len(snapshot.dvs) == 1
    dv_info = next(iter(snapshot.dvs.values()))
    assert dv_info.cardinality == 1
    assert dw.store.exists(dv_info.path)
