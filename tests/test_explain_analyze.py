"""EXPLAIN ANALYZE: executed, annotated operator trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregate,
    BinOp,
    Col,
    Lit,
    Schema,
    SqlSession,
    TableScan,
    Warehouse,
    and_,
)
from repro.engine.planner import Filter, Project
from tests.conftest import small_config


@pytest.fixture
def dw() -> Warehouse:
    config = small_config()
    return Warehouse(config=config, auto_optimize=False)


@pytest.fixture
def loaded(dw):
    session = dw.session()
    session.create_table(
        "t",
        Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
        sort_column="id",
    )
    # Several separate inserts -> several files, so file pruning can bite.
    for start in (0, 1000, 2000, 3000):
        session.insert(
            "t",
            {
                "id": np.arange(start, start + 100, dtype=np.int64),
                "v": np.arange(start, start + 100) * 1.0,
            },
        )
    return session


class TestExplainAnalyze:
    def plan(self):
        return Project(
            TableScan(
                "t",
                ("id", "v"),
                predicate=BinOp("<", Col("id"), Lit(50)),
                prune=(("id", "<", 50),),
            ),
            {"id": Col("id"), "v": Col("v")},
        )

    def test_batch_matches_plain_query(self, dw, loaded):
        plan = self.plan()
        expected = loaded.query(plan)
        result = loaded.explain_analyze(plan)
        np.testing.assert_array_equal(
            np.sort(result.batch["id"]), np.sort(expected["id"])
        )

    def test_text_reports_rows_time_and_pruning(self, dw, loaded):
        result = loaded.explain_analyze(self.plan())
        text = result.text
        assert "Scan t" in text
        assert "rows=50" in text
        assert "time=" in text
        # Each insert spread over 4 cells -> 16 files; only the first
        # insert's 4 files can contain id < 50.
        assert "files=4/16" in text
        assert "files_pruned=12" in text
        assert "row_groups=" in text

    def test_text_reports_estimates_and_misestimate_ratio(self, dw, loaded):
        plan = self.plan()
        result = loaded.explain_analyze(plan)
        # 400 live rows x 0.5 prune selectivity x 1/3 predicate
        # selectivity -> 67 estimated vs 50 actual, ratio 1.34x.
        assert "est=67" in result.text
        assert "ratio=1.34x" in result.text
        assert result.estimates[id(plan.child)] == 67
        assert result.estimates[id(plan)] == 67  # Project passes through

    def test_estimates_cover_every_operator(self, dw, loaded):
        plan = Aggregate(
            Filter(
                TableScan("t", ("id", "v")),
                BinOp(">", Col("v"), Lit(100.0)),
            ),
            (),
            {"n": ("count", None)},
        )
        result = loaded.explain_analyze(plan)
        assert result.estimates[id(plan.child.child)] == 400  # unfiltered scan
        assert result.estimates[id(plan.child)] == 133  # x 1/3 selectivity
        assert result.estimates[id(plan)] == 1  # global aggregate
        assert "est=1 " in result.text or "est=1)" in result.text

    def test_stats_per_operator(self, dw, loaded):
        plan = self.plan()
        result = loaded.explain_analyze(plan)
        scan_stats = result.stats_for(plan.child)
        assert scan_stats.rows == 50
        assert scan_stats.details["files_pruned"] == 12
        assert scan_stats.sim_time_s is not None and scan_stats.sim_time_s > 0
        project_stats = result.stats_for(plan)
        assert project_stats.rows == 50

    def test_aggregate_and_filter_annotated(self, dw, loaded):
        plan = Aggregate(
            Filter(
                TableScan("t", ("id", "v")),
                BinOp(">", Col("v"), Lit(100.0)),
            ),
            (),
            {"n": ("count", None)},
        )
        result = loaded.explain_analyze(plan)
        assert result.batch["n"][0] == 300
        assert "Aggregate" in result.text
        assert "Filter" in result.text
        filter_stats = result.stats_for(plan.child)
        assert filter_stats.rows == 300

    def test_clock_charged_like_query(self, dw, loaded):
        plan = self.plan()
        before = dw.clock.now
        loaded.explain_analyze(plan)
        analyzed_elapsed = dw.clock.now - before
        before = dw.clock.now
        loaded.query(plan)
        query_elapsed = dw.clock.now - before
        assert analyzed_elapsed == pytest.approx(query_elapsed, rel=0.2)


class TestSqlExplain:
    def test_explain_returns_plan_without_executing(self, dw, loaded):
        sql = SqlSession(loaded)
        before = dw.clock.now
        text = sql.execute("EXPLAIN SELECT id, v FROM t WHERE id < 50")
        assert dw.clock.now == before  # plan only, nothing ran
        assert "Scan t" in text
        assert "rows=" not in text

    def test_explain_analyze_runs_and_annotates(self, dw, loaded):
        sql = SqlSession(loaded)
        text = sql.execute("EXPLAIN ANALYZE SELECT id, v FROM t WHERE id < 50")
        assert "rows=50" in text
        assert "files_pruned=12" in text
        assert "est=" in text
        assert "ratio=" in text

    def test_explain_is_case_insensitive(self, dw, loaded):
        sql = SqlSession(loaded)
        text = sql.execute("explain analyze select id from t")
        assert "rows=400" in text

    def test_explain_rejects_non_select(self, dw, loaded):
        from repro.sql.lexer import SqlSyntaxError

        sql = SqlSession(loaded)
        with pytest.raises(SqlSyntaxError):
            sql.execute("EXPLAIN DELETE FROM t")
