"""The trace critical-path analyzer and its CLI.

Unit half: hand-built span forests with known critical paths, checking
self-time vs wait-time accounting, overlap handling, and the front-door
split (root wait spans are queueing, not serialization).  End-to-end
half: a 16x-concurrency commit workload traced through the service
gateway must rank ``commit_lock`` as the top serialization contributor —
the evidence the profiler exists to produce.
"""

import json

import pytest

from repro import PolarisConfig, Warehouse
from repro.service import Gateway
from repro.telemetry import (
    analyze_critical_path,
    format_critical_path_report,
    load_trace,
    top_serialization_kind,
)
from repro.telemetry.__main__ import main as telemetry_cli
from repro.workloads.service_load import ServiceLoadGenerator


def span(span_id, start, end, name="work", category="fe", parent=None, **attrs):
    return {
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "category": category,
        "start": start,
        "end": end,
        "attributes": attrs,
    }


class TestAnalyzer:
    def test_self_time_is_uncovered_time(self):
        spans = [
            span(1, 0.0, 10.0, name="request", category="service"),
            span(2, 2.0, 5.0, name="scan", category="storage", parent=1),
            span(3, 6.0, 9.0, name="scan", category="storage", parent=1),
        ]
        report = analyze_critical_path(spans)
        assert report["requests"] == 1
        assert report["critical_path_s"] == 10.0
        assert report["components"]["service"]["self_s"] == pytest.approx(4.0)
        assert report["components"]["storage"]["self_s"] == pytest.approx(6.0)

    def test_wait_spans_count_as_wait_not_self(self):
        spans = [
            span(1, 0.0, 10.0, name="request", category="service"),
            span(
                2, 3.0, 7.0,
                name="wait.commit_lock", category="wait", parent=1,
                kind="commit_lock",
            ),
        ]
        report = analyze_critical_path(spans)
        assert report["components"]["wait"]["wait_s"] == pytest.approx(4.0)
        assert report["components"]["service"]["self_s"] == pytest.approx(6.0)
        (ranked,) = report["serialization"]
        assert ranked["wait_kind"] == "commit_lock"
        assert ranked["wait_s"] == pytest.approx(4.0)
        assert top_serialization_kind(report) == "commit_lock"

    def test_overlapping_children_never_double_count(self):
        # Two children overlap [4, 6]; the chain takes the later-ending
        # one and skips the overlap, so covered time stays <= duration.
        spans = [
            span(1, 0.0, 10.0, name="request", category="service"),
            span(2, 2.0, 6.0, name="a", category="dcp", parent=1),
            span(3, 4.0, 9.0, name="b", category="dcp", parent=1),
        ]
        report = analyze_critical_path(spans)
        total = sum(
            bucket["self_s"] + bucket["wait_s"]
            for bucket in report["components"].values()
        )
        assert total <= 10.0 + 1e-9

    def test_root_wait_spans_are_front_door_not_serialization(self):
        spans = [
            span(
                1, 0.0, 8.0,
                name="wait.admission_queue", category="wait",
                kind="admission_queue",
            ),
            span(2, 8.0, 10.0, name="request", category="service"),
            span(
                3, 8.5, 9.5,
                name="wait.commit_lock", category="wait", parent=2,
                kind="commit_lock",
            ),
        ]
        report = analyze_critical_path(spans)
        assert report["requests"] == 1  # the wait root is not a request
        assert "admission_queue" in report["front_door"]
        kinds = [row["wait_kind"] for row in report["serialization"]]
        assert kinds == ["commit_lock"]

    def test_ranking_orders_by_stalled_seconds(self):
        spans = [
            span(1, 0.0, 20.0, name="request", category="service"),
            span(
                2, 1.0, 3.0,
                name="wait.storage_retry", category="wait", parent=1,
                kind="storage_retry",
            ),
            span(
                3, 5.0, 15.0,
                name="wait.commit_lock", category="wait", parent=1,
                kind="commit_lock",
            ),
        ]
        report = analyze_critical_path(spans)
        kinds = [row["wait_kind"] for row in report["serialization"]]
        assert kinds == ["commit_lock", "storage_retry"]

    def test_format_report_mentions_the_top_contributor(self):
        spans = [
            span(1, 0.0, 10.0, name="request", category="service"),
            span(
                2, 0.0, 6.0,
                name="wait.commit_lock", category="wait", parent=1,
                kind="commit_lock",
            ),
        ]
        text = format_critical_path_report(analyze_critical_path(spans))
        assert "critical-path bottleneck report" in text
        assert "commit_lock" in text


class TestLoadTrace:
    def test_skips_unfinished_spans_and_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        finished = span(1, 0.0, 1.0)
        unfinished = dict(span(2, 0.5, 1.0), end=None)
        path.write_text(
            json.dumps(finished) + "\n\n" + json.dumps(unfinished) + "\n"
        )
        spans = load_trace(str(path))
        assert [s["span_id"] for s in spans] == [1]


def run_commit_workload(transactional_clients):
    """A traced trickle-insert run with a real commit hold."""
    config = PolarisConfig()
    config.telemetry.enabled = True
    config.telemetry.wait_stats_enabled = True
    config.txn.commit_hold_s = 1.0
    dw = Warehouse(config=config, auto_optimize=False)
    gateway = Gateway(dw.context, seed=0)
    generator = ServiceLoadGenerator(
        gateway,
        seed=0,
        transactional_clients=transactional_clients,
        analytical_clients=0,
        mean_think_s=2.0,
    )
    report = generator.run()
    assert report.completed > 0
    return dw


class TestEndToEnd:
    def test_16x_commit_workload_ranks_commit_lock_top(self, tmp_path):
        dw = run_commit_workload(transactional_clients=16)
        trace = str(tmp_path / "trace.jsonl")
        dw.telemetry.export_jsonl(trace)
        report = analyze_critical_path(load_trace(trace))
        assert top_serialization_kind(report) == "commit_lock"
        # The stall is material, not a rounding artifact: a double-digit
        # share of all critical-path time under 16x commit concurrency.
        commit_row = report["serialization"][0]
        assert commit_row["wait_s"] > 0.1 * report["critical_path_s"]
        # Queueing ahead of execution shows up, but separately.
        assert "admission_queue" in report["front_door"]

    def test_cli_smoke(self, tmp_path, capsys):
        dw = run_commit_workload(transactional_clients=16)
        trace = str(tmp_path / "trace.jsonl")
        dw.telemetry.export_jsonl(trace)
        assert telemetry_cli(["--critical-path", trace]) == 0
        out = capsys.readouterr().out
        assert "serialization contributors" in out
        assert "1. commit_lock" in out

    def test_cli_json_mode(self, tmp_path, capsys):
        dw = run_commit_workload(transactional_clients=4)
        trace = str(tmp_path / "trace.jsonl")
        dw.telemetry.export_jsonl(trace)
        assert telemetry_cli(["--critical-path", trace, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "requests",
            "critical_path_s",
            "components",
            "serialization",
            "front_door",
        }

    def test_cli_empty_trace_exits_nonzero(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert telemetry_cli(["--critical-path", str(empty)]) == 1
