"""Tests for id generation."""

from repro.common.ids import GuidGenerator, MonotonicSequence


def test_guid_shape():
    guid = GuidGenerator(seed=1).next()
    parts = guid.split("-")
    assert [len(p) for p in parts] == [8, 4, 4, 4, 12]
    assert all(c in "0123456789abcdef-" for c in guid)


def test_guid_deterministic_per_seed():
    a = GuidGenerator(seed=3)
    b = GuidGenerator(seed=3)
    assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]


def test_guid_differs_across_seeds():
    assert GuidGenerator(seed=1).next() != GuidGenerator(seed=2).next()


def test_guid_unique_within_generator():
    gen = GuidGenerator(seed=0)
    guids = [gen.next() for _ in range(1000)]
    assert len(set(guids)) == 1000


def test_sequence_is_strictly_increasing():
    seq = MonotonicSequence()
    values = [seq.next() for _ in range(10)]
    assert values == list(range(10))


def test_sequence_start():
    seq = MonotonicSequence(start=100)
    assert seq.next() == 100
    assert seq.last == 100


def test_sequence_last_before_any_next():
    assert MonotonicSequence(start=5).last == 4
