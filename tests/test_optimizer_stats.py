"""ANALYZE statistics: collection, selectivity, versioning, feedback plumbing."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.optimizer.statistics import (
    ColumnStatistics,
    TableStatistics,
    collect_column_statistics,
    equi_depth_bounds,
)
from repro.pagefile.schema import Field
from repro.sqldb import system_tables as catalog


def int_field(name="id"):
    return Field(name=name, type="int64")


def float_field(name="v"):
    return Field(name=name, type="float64")


class TestEquiDepthHistogram:
    def test_bounds_cover_sorted_values(self):
        bounds = equi_depth_bounds(list(range(1, 101)), 4)
        assert bounds == [25, 50, 75, 100]

    def test_last_bound_is_maximum(self):
        for buckets in (1, 3, 7, 16):
            bounds = equi_depth_bounds(list(range(10)), buckets)
            assert bounds[-1] == 9
            assert len(bounds) == buckets

    def test_empty_and_degenerate(self):
        assert equi_depth_bounds([], 8) == []
        assert equi_depth_bounds([5], 0) == []
        assert equi_depth_bounds([5], 4) == [5, 5, 5, 5]

    def test_skew_narrows_hot_buckets(self):
        # 90% of values are 7: most bucket bounds collapse onto it.
        values = sorted([7] * 90 + list(range(10)))
        bounds = equi_depth_bounds(values, 10)
        assert bounds.count(7) >= 8


class TestColumnCollection:
    def test_int_column(self):
        values = np.arange(100, dtype=np.int64)
        stats = collect_column_statistics(int_field(), values, buckets=8)
        assert stats.ndv == 100
        assert stats.null_fraction == 0.0
        assert stats.minimum == 0 and stats.maximum == 99
        assert len(stats.histogram) == 8
        assert stats.histogram[-1] == 99

    def test_float_nan_counts_as_null(self):
        values = np.array([1.0, 2.0, np.nan, np.nan], dtype=np.float64)
        stats = collect_column_statistics(float_field(), values, buckets=4)
        assert stats.null_fraction == pytest.approx(0.5)
        assert stats.ndv == 2
        assert stats.minimum == 1.0 and stats.maximum == 2.0

    def test_all_null_column(self):
        values = np.full(5, np.nan, dtype=np.float64)
        stats = collect_column_statistics(float_field(), values, buckets=4)
        assert stats.ndv == 0
        assert stats.minimum is None
        assert stats.histogram == []
        assert stats.selectivity("==", 1.0) == 0.0

    def test_string_column(self):
        values = np.array(["b", "a", "c", "a"], dtype=object)
        stats = collect_column_statistics(
            Field(name="s", type="string"), values, buckets=2
        )
        assert stats.ndv == 3
        assert stats.minimum == "a" and stats.maximum == "c"


class TestSelectivity:
    @pytest.fixture
    def uniform(self):
        values = np.arange(1, 101, dtype=np.int64)
        return collect_column_statistics(int_field(), values, buckets=10)

    def test_equality_is_one_over_ndv(self, uniform):
        assert uniform.selectivity("==", 42) == pytest.approx(0.01)

    def test_equality_outside_range_is_zero(self, uniform):
        assert uniform.selectivity("==", 0) == 0.0
        assert uniform.selectivity("==", 1000) == 0.0

    def test_inequality_complements_equality(self, uniform):
        assert uniform.selectivity("!=", 42) == pytest.approx(0.99)

    def test_range_interpolates_through_histogram(self, uniform):
        # ~30% of values are < 31; the equi-depth estimate is close.
        est = uniform.selectivity("<", 31)
        assert est == pytest.approx(0.30, abs=0.05)
        assert uniform.selectivity(">=", 31) == pytest.approx(1.0 - est)

    def test_range_is_monotone(self, uniform):
        cuts = [uniform.selectivity("<", c) for c in (10, 30, 50, 90)]
        assert cuts == sorted(cuts)

    def test_range_saturates_at_bounds(self, uniform):
        assert uniform.selectivity("<", -5) == 0.0
        assert uniform.selectivity("<=", 100) == pytest.approx(1.0)
        assert uniform.selectivity(">", 100) == pytest.approx(0.0)

    def test_nulls_scale_every_estimate(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, np.nan], dtype=np.float64)
        stats = collect_column_statistics(float_field(), values, buckets=4)
        assert stats.selectivity("==", 2.0) == pytest.approx(0.8 / 4)
        assert stats.selectivity("<=", 4.0) == pytest.approx(0.8)

    def test_unknown_operator_raises(self, uniform):
        from repro.common.errors import PlanError

        with pytest.raises(PlanError):
            uniform.selectivity("~", 1)


class TestRowRoundTrip:
    def test_to_row_from_row_is_identity(self):
        values = np.arange(50, dtype=np.int64)
        col = collect_column_statistics(int_field(), values, buckets=4)
        stats = TableStatistics(
            table_id=7,
            table_name="t",
            sequence_id=3,
            row_count=50,
            analyzed_at=12.5,
            source="analyze",
            feedback_factor=2.0,
            columns={"id": col},
        )
        row = stats.to_row()
        row["table_id"] = 7
        row["sequence_id"] = 3
        back = TableStatistics.from_row(row)
        assert back == stats


class TestAnalyzeStatement:
    def test_analyze_persists_versioned_row(self, warehouse, session):
        table_id = session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert(
            "t",
            {"id": np.arange(100, dtype=np.int64), "v": np.arange(100) * 1.0},
        )
        stats = session.analyze_table("t")
        assert stats.row_count == 100
        assert stats.source == "analyze"
        sequence = session.table_snapshot("t").sequence_id
        txn = warehouse.context.sqldb.begin()
        try:
            row = catalog.latest_table_stats(txn, table_id, sequence)
        finally:
            txn.abort()
        assert row is not None
        assert row["row_count"] == 100
        assert row["sequence_id"] == stats.sequence_id

    def test_reanalyze_versions_by_sequence(self, warehouse, session):
        table_id = session.create_table(
            "t", Schema.of(("id", "int64"), ("v", "float64")),
            distribution_column="id",
        )
        session.insert(
            "t", {"id": np.arange(10, dtype=np.int64), "v": np.zeros(10)}
        )
        first = session.analyze_table("t")
        session.insert(
            "t",
            {"id": np.arange(10, 30, dtype=np.int64), "v": np.zeros(20)},
        )
        second = session.analyze_table("t")
        assert second.sequence_id > first.sequence_id
        assert second.row_count == 30
        # Versioned resolution: a reader at the old sequence still sees
        # the statistics that described the data it reads.
        txn = warehouse.context.sqldb.begin()
        try:
            old = catalog.latest_table_stats(txn, table_id, first.sequence_id)
            new = catalog.latest_table_stats(txn, table_id, second.sequence_id)
        finally:
            txn.abort()
        assert old["row_count"] == 10
        assert new["row_count"] == 30

    def test_sql_analyze_and_dmv_row(self, session):
        session.sql("CREATE TABLE t (id bigint, v double)")
        session.sql("INSERT INTO t (id, v) VALUES (1, 1.0), (2, 2.0)")
        assert session.sql("ANALYZE t") == 2
        dmv = session.sql(
            "SELECT table_name, row_count, source, feedback_factor "
            "FROM sys.dm_table_stats"
        )
        assert list(dmv["table_name"]) == ["t"]
        assert int(dmv["row_count"][0]) == 2
        assert str(dmv["source"][0]) == "analyze"
        assert float(dmv["feedback_factor"][0]) == pytest.approx(1.0)

    def test_analyze_metrics_registered(self, config):
        config.telemetry.metering_enabled = True
        dw = Warehouse(config=config, auto_optimize=False)
        session = dw.session()
        session.sql("CREATE TABLE t (id bigint, v double)")
        session.sql("INSERT INTO t (id, v) VALUES (1, 1.0)")
        session.sql("ANALYZE t")
        names = session.sql("SELECT name FROM sys.dm_metrics")["name"]
        assert "optimizer.analyze.runs" in set(str(n) for n in names)


class TestExplainProvenance:
    def test_estimates_flip_default_to_stats(self, session):
        session.sql("CREATE TABLE t (id bigint, v double)")
        session.insert(
            "t",
            {"id": np.arange(90, dtype=np.int64), "v": np.zeros(90)},
        )
        before = session.sql("EXPLAIN ANALYZE SELECT id FROM t WHERE id < 30")
        assert "stats=default" in before
        assert "stats=stats" not in before
        session.sql("ANALYZE t")
        after = session.sql("EXPLAIN ANALYZE SELECT id FROM t WHERE id < 30")
        assert "stats=stats" in after
        assert "cost=" in after
