"""Tests for the crashpoint registry and the chaos controller."""

import ast
import re
from pathlib import Path

import pytest

import repro
from repro.chaos import CRASHPOINTS, ChaosController, SimulatedCrash, crashpoint
from repro.chaos.crashpoints import active_controller

SRC_ROOT = Path(repro.__file__).resolve().parent

#: The layers a crashpoint may be instrumented in (mirrors the lint rule).
INSTRUMENTED_DIRS = ("fe", "sqldb", "sto", "service", "chaos")


def all_call_sites():
    """Every literal crashpoint("...") call site under src/repro.

    Returns a list of (site_name, posix_relpath) pairs.
    """
    sites = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(
                func, "id", None
            )
            if name != "crashpoint":
                continue
            assert node.args and isinstance(node.args[0], ast.Constant), (
                f"{path}: crashpoint() must take a string literal"
            )
            sites.append(
                (node.args[0].value, path.relative_to(SRC_ROOT).as_posix())
            )
    return sites


class TestRegistry:
    def test_at_least_twelve_sites(self):
        assert len(CRASHPOINTS) >= 12

    def test_names_follow_layer_convention(self):
        pattern = re.compile(
            r"^(fe|sqldb|sto|service|recovery)\.[a-z_]+\.[a-z_]+$"
        )
        for name in CRASHPOINTS:
            assert pattern.match(name), name

    def test_every_site_has_a_description(self):
        for name, description in CRASHPOINTS.items():
            assert description.strip(), name

    def test_every_registered_site_is_instrumented_exactly_once(self):
        sites = all_call_sites()
        names = [name for name, __ in sites]
        assert sorted(names) == sorted(set(names)), "duplicate crashpoint sites"
        assert set(names) == set(CRASHPOINTS), (
            "registry and instrumentation disagree: "
            f"unregistered={set(names) - set(CRASHPOINTS)} "
            f"uninstrumented={set(CRASHPOINTS) - set(names)}"
        )

    def test_sites_confined_to_instrumented_layers(self):
        for name, relpath in all_call_sites():
            top = relpath.split("/", 1)[0]
            assert top in INSTRUMENTED_DIRS, f"{name} instrumented in {relpath}"

    def test_covers_fe_sqldb_and_all_sto_jobs(self):
        prefixes = {name.split(".", 2)[0] + "." + name.split(".", 2)[1]
                    for name in CRASHPOINTS}
        for required in (
            "fe.write",
            "fe.commit",
            "sqldb.commit",
            "sto.compaction",
            "sto.checkpoint",
            "sto.gc",
            "sto.publish",
            "service.admit",
            "service.dispatch",
        ):
            assert required in prefixes, required


class TestController:
    def test_noop_without_installed_controller(self):
        assert active_controller() is None
        crashpoint("fe.commit.before_validation")  # must not raise

    def test_armed_site_crashes_at_first_hit(self):
        controller = ChaosController(seed=1).arm("fe.commit.before_validation")
        with controller:
            with pytest.raises(SimulatedCrash) as excinfo:
                crashpoint("fe.commit.before_validation")
        assert excinfo.value.site == "fe.commit.before_validation"
        assert controller.crashes == ["fe.commit.before_validation"]

    def test_armed_site_counts_down_hits(self):
        controller = ChaosController(seed=1).arm(
            "fe.commit.before_validation", hits=3
        )
        with controller:
            crashpoint("fe.commit.before_validation")
            crashpoint("fe.commit.before_validation")
            with pytest.raises(SimulatedCrash):
                crashpoint("fe.commit.before_validation")
        assert controller.hits["fe.commit.before_validation"] == 3

    def test_unarmed_sites_pass_through(self):
        controller = ChaosController(seed=1).arm("sqldb.commit.after_install")
        with controller:
            crashpoint("fe.commit.before_validation")
        assert controller.hits["fe.commit.before_validation"] == 1
        assert controller.crashes == []

    def test_arm_rejects_unregistered_site(self):
        with pytest.raises(KeyError):
            ChaosController(seed=1).arm("no.such.site")

    def test_hit_rejects_unregistered_site(self):
        with ChaosController(seed=1):
            with pytest.raises(KeyError):
                crashpoint("no.such.site")

    def test_random_schedule_is_deterministic(self):
        def crash_indices(seed):
            controller = ChaosController(seed=seed, crash_rate=0.3)
            out = []
            with controller:
                for index in range(50):
                    try:
                        crashpoint("fe.commit.before_validation")
                    except SimulatedCrash:
                        out.append(index)
            return out

        first = crash_indices(42)
        assert first == crash_indices(42)
        assert first != crash_indices(43)
        assert first, "rate 0.3 over 50 hits must crash at least once"

    def test_only_one_controller_installs(self):
        with ChaosController(seed=1):
            with pytest.raises(RuntimeError):
                ChaosController(seed=2).install()

    def test_uninstall_clears_active(self):
        controller = ChaosController(seed=1)
        with controller:
            assert active_controller() is controller
        assert active_controller() is None

    def test_disarm(self):
        controller = ChaosController(seed=1).arm("fe.commit.before_validation")
        controller.disarm("fe.commit.before_validation")
        with controller:
            crashpoint("fe.commit.before_validation")
        assert controller.crashes == []

    def test_simulated_crash_is_not_a_polaris_error(self):
        from repro.common.errors import PolarisError

        assert not issubclass(SimulatedCrash, Exception)
        assert not issubclass(SimulatedCrash, PolarisError)
