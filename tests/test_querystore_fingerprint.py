"""Fingerprint semantics: what must collide, what must never collide.

The query store keys everything on ``fingerprint(text)`` — a hash of the
literal-stripped token stream.  Two properties carry the feature:

* **Equivalence** — the same statement shape with different literals,
  whitespace, casing, or IN-list arity maps to one fingerprint, so
  repeated parameterized workloads aggregate into one profile.
* **Separation** — distinct shapes never share a fingerprint across the
  corpora we actually run (TPC-H SQL twins, DMV queries), so profiles
  never mix unrelated plans.

Plus the determinism contract: same seed, same workload -> byte-identical
store snapshots and JSONL exports.
"""

import json

import pytest

from repro import PolarisConfig, Warehouse
from repro.sql.runner import SqlSession
from repro.telemetry.introspection import Introspector
from repro.telemetry.querystore import (
    HASH_LENGTH,
    fingerprint,
    normalize_sql,
    plan_fingerprint,
)
from repro.workloads.tpch import TPCH_SQL_QUERIES


class TestEquivalence:
    """Shapes that must map to the same fingerprint."""

    def test_number_literals_collapse(self):
        assert fingerprint("SELECT a FROM t WHERE b > 10") == fingerprint(
            "SELECT a FROM t WHERE b > 999"
        )

    def test_string_literals_collapse(self):
        assert fingerprint(
            "SELECT a FROM t WHERE c = 'BUILDING'"
        ) == fingerprint("SELECT a FROM t WHERE c = 'AUTOMOBILE'")

    def test_float_and_integer_literals_collapse(self):
        assert fingerprint("SELECT a FROM t WHERE b < 0.05") == fingerprint(
            "SELECT a FROM t WHERE b < 24"
        )

    def test_whitespace_is_insignificant(self):
        assert fingerprint(
            "SELECT a,\n       b\nFROM t\nWHERE c = 1"
        ) == fingerprint("select a, b from t where c = 1")

    def test_keyword_and_identifier_case_folds(self):
        assert fingerprint("SELECT A FROM T WHERE B = 'x'") == fingerprint(
            "select a from t where b = 'X'"
        )

    def test_in_list_arity_collapses(self):
        two = fingerprint("SELECT a FROM t WHERE m IN ('MAIL', 'SHIP')")
        four = fingerprint(
            "SELECT a FROM t WHERE m IN ('MAIL', 'SHIP', 'AIR', 'RAIL')"
        )
        one = fingerprint("SELECT a FROM t WHERE m IN ('MAIL')")
        assert two == four == one

    def test_values_row_count_collapses(self):
        short = fingerprint("INSERT INTO t VALUES (1, 'a')")
        long = fingerprint("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        assert short == long

    def test_normalized_text_is_parameterized(self):
        normalized = normalize_sql(
            "SELECT a FROM t WHERE m IN ('MAIL', 'SHIP') AND b > 10"
        )
        assert "'MAIL'" not in normalized
        assert "10" not in normalized
        assert "?" in normalized

    def test_date_literals_collapse(self):
        assert fingerprint(
            "SELECT a FROM t WHERE d < DATE '1995-03-15'"
        ) == fingerprint("SELECT a FROM t WHERE d < DATE '1998-09-02'")


class TestSeparation:
    """Shapes that must never share a fingerprint."""

    def test_different_tables_differ(self):
        assert fingerprint("SELECT a FROM t") != fingerprint("SELECT a FROM u")

    def test_different_columns_differ(self):
        assert fingerprint("SELECT a FROM t") != fingerprint("SELECT b FROM t")

    def test_different_operators_differ(self):
        assert fingerprint("SELECT a FROM t WHERE b > 1") != fingerprint(
            "SELECT a FROM t WHERE b < 1"
        )

    def test_statement_kinds_differ(self):
        assert fingerprint("SELECT a FROM t WHERE b = 1") != fingerprint(
            "DELETE FROM t WHERE b = 1"
        )

    def test_hash_shape(self):
        value = fingerprint("SELECT a FROM t")
        assert len(value) == HASH_LENGTH
        assert set(value) <= set("0123456789abcdef")

    def test_corpus_has_no_collisions(self):
        """TPC-H twins + one SELECT * per DMV: all pairwise distinct."""
        corpus = dict(TPCH_SQL_QUERIES)
        for view in sorted(Introspector.VIEWS):
            corpus[view] = f"SELECT * FROM {view}"
        hashes = {name: fingerprint(text) for name, text in corpus.items()}
        assert len(set(hashes.values())) == len(hashes), hashes

    def test_plan_fingerprint_strips_literals_only(self):
        base = plan_fingerprint("Filter l_shipdate <= 10000\n  Scan lineitem")
        shifted = plan_fingerprint(
            "Filter l_shipdate <= 9000\n  Scan lineitem"
        )
        other = plan_fingerprint("Filter l_shipdate <= 10000\n  Scan orders")
        assert base == shifted
        assert base != other


def _run_workload(seed):
    config = PolarisConfig(seed=seed)
    config.telemetry.query_store_enabled = True
    dw = Warehouse(config=config, auto_optimize=False)
    sql = SqlSession(dw.session())
    sql.execute("CREATE TABLE t (id BIGINT, grp STRING, val DOUBLE)")
    sql.execute(
        "INSERT INTO t (id, grp, val) "
        "VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'a', 3.5)"
    )
    for bound in (0.0, 1.0, 2.0, 1.0, 0.5):
        sql.execute(f"SELECT grp, SUM(val) FROM t WHERE val > {bound} GROUP BY grp")
    sql.execute("SELECT * FROM sys.dm_exec_query_stats")
    return dw.telemetry.querystore


class TestDeterminism:
    def test_same_seed_snapshots_are_byte_identical(self):
        first = _run_workload(seed=7)
        second = _run_workload(seed=7)
        dump_a = json.dumps(first.snapshot(), sort_keys=True)
        dump_b = json.dumps(second.snapshot(), sort_keys=True)
        assert dump_a == dump_b

    def test_same_seed_jsonl_exports_are_byte_identical(self, tmp_path):
        first = _run_workload(seed=11)
        second = _run_workload(seed=11)
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        first.export_jsonl(str(path_a))
        second.export_jsonl(str(path_b))
        assert path_a.read_bytes() == path_b.read_bytes()
        text_a = first.export_jsonl()
        assert text_a == second.export_jsonl()
        assert path_a.read_text(encoding="utf-8") == text_a
        # Every line is valid JSON keyed by the fingerprint.
        for line in text_a.strip().splitlines():
            record = json.loads(line)
            assert len(record["query_hash"]) == HASH_LENGTH

    def test_different_workload_changes_snapshot(self):
        first = _run_workload(seed=7)
        probe = fingerprint("SELECT grp, SUM(val) FROM t WHERE val > 0 GROUP BY grp")
        assert first.profile(probe) is not None
        assert first.profile(probe).executions == 5
