"""Tests for the simulated clock."""

import pytest

from repro.common.clock import SimulatedClock


def test_starts_at_given_time():
    assert SimulatedClock(5.0).now == 5.0


def test_defaults_to_zero():
    assert SimulatedClock().now == 0.0


def test_advance_moves_forward():
    clock = SimulatedClock()
    clock.advance(2.5)
    assert clock.now == 2.5
    clock.advance(0.5)
    assert clock.now == 3.0


def test_advance_rejects_negative():
    clock = SimulatedClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_advance_zero_is_noop():
    clock = SimulatedClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_advance_to_is_monotonic():
    clock = SimulatedClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0
    clock.advance_to(4.0)  # past instants are ignored
    assert clock.now == 10.0


def test_call_at_fires_on_advance():
    clock = SimulatedClock()
    fired = []
    clock.call_at(5.0, fired.append)
    clock.advance(4.0)
    assert fired == []
    clock.advance(2.0)
    assert fired == [6.0]


def test_call_at_fires_once():
    clock = SimulatedClock()
    fired = []
    clock.call_at(1.0, fired.append)
    clock.advance(2.0)
    clock.advance(2.0)
    assert len(fired) == 1


def test_call_at_multiple_watchers_fire_in_deadline_order():
    clock = SimulatedClock()
    fired = []
    clock.call_at(3.0, lambda now: fired.append("b"))
    clock.call_at(1.0, lambda now: fired.append("a"))
    clock.advance(5.0)
    assert fired == ["a", "b"]


def test_call_at_in_past_fires_on_next_advance():
    clock = SimulatedClock(10.0)
    fired = []
    clock.call_at(5.0, fired.append)
    clock.advance(0.1)
    assert fired == [10.1]
