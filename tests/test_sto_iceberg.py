"""Tests for the Iceberg-format publisher and its external reader."""

import json

import numpy as np
import pytest

from repro import BinOp, Col, Lit, Schema, Warehouse
from repro.sto.publisher_iceberg import read_iceberg_table
from tests.conftest import small_config


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


@pytest.fixture
def dw():
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    warehouse.sto.auto_publish = True
    warehouse.sto.publish_formats = {"delta", "iceberg"}
    session = warehouse.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id",
    )
    return warehouse


def test_unpublished_table_is_none(dw):
    dw.sto.publish_formats = set()
    dw.session().insert("t", ids(5))
    assert read_iceberg_table(dw.context, "t") is None


def test_snapshot_chain_matches_warehouse(dw):
    session = dw.session()
    session.insert("t", ids(100))
    session.insert("t", ids(50, start=200))
    files, dvs = read_iceberg_table(dw.context, "t")
    snapshot = session.table_snapshot("t")
    assert set(files) == {f.path for f in snapshot.files.values()}
    assert dvs == {}
    assert len(dw.sto.iceberg.published) == 2
    assert dw.sto.iceberg.published[-1].version == 1


def test_deletes_become_positional_delete_files(dw):
    session = dw.session()
    session.insert("t", ids(100))
    session.delete("t", BinOp("<", Col("id"), Lit(10)))
    files, dvs = read_iceberg_table(dw.context, "t")
    snapshot = session.table_snapshot("t")
    assert set(dvs) == set(snapshot.dvs)
    assert set(dvs.values()) == {dv.path for dv in snapshot.dvs.values()}


def test_compaction_snapshot_is_overwrite(dw):
    session = dw.session()
    session.insert("t", ids(100))
    session.delete("t", BinOp("<", Col("id"), Lit(60)))
    dw.sto.run_compaction(1001)
    files, dvs = read_iceberg_table(dw.context, "t")
    snapshot = session.table_snapshot("t")
    assert set(files) == {f.path for f in snapshot.files.values()}
    assert dvs == {}
    # Metadata labels the rewriting snapshot an "overwrite".
    latest = dw.sto.iceberg.published[-1]
    metadata = json.loads(dw.store.get(latest.metadata_path).data)
    assert metadata["snapshots"][-1]["summary"]["operation"] == "overwrite"


def test_both_formats_published_together(dw):
    session = dw.session()
    session.insert("t", ids(10))
    assert dw.sto.publisher.published  # Delta
    assert dw.sto.iceberg.published  # Iceberg
    delta_files = {
        blob.path
        for blob in dw.store.list("published/dw/t/_delta_log/")
    }
    iceberg_files = {
        blob.path
        for blob in dw.store.list("published/dw/t/iceberg/metadata/")
    }
    assert delta_files and iceberg_files


def test_metadata_chain_versions_increase(dw):
    session = dw.session()
    for i in range(3):
        session.insert("t", ids(5, start=i * 10))
    versions = [p.version for p in dw.sto.iceberg.published]
    assert versions == [0, 1, 2]
    files, __ = read_iceberg_table(dw.context, "t")
    assert len(files) == len(session.table_snapshot("t").files)
