"""Seeded-violation fixtures for each whole-program analysis.

Every analysis gets a fixture that must fire and a variant (fix or
suppression) that must stay quiet, proving both halves of the detector.
"""

import textwrap
from pathlib import Path

from repro.analysis.callgraph import Program
from repro.analysis.deep_rules import (
    DEEP_RULES,
    check_crash_unwind,
    check_determinism_taint,
    check_lock_order,
    check_resource_leaks,
    run_deep,
)


def write_tree(root: Path, files: dict) -> Path:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root / "pkg"


def load(tmp_path, files):
    return Program.load([write_tree(tmp_path, files)])


def rules_of(findings):
    return [f.rule for f in findings]


# -- lock-order ----------------------------------------------------------------


def test_lock_order_cycle_detected(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/locks.py": """
                def take_ab(a_lock, b_lock):
                    with a_lock.held():
                        with b_lock.held():
                            pass


                def take_ba(a_lock, b_lock):
                    with b_lock.held():
                        with a_lock.held():
                            pass
            """,
        },
    )
    findings = check_lock_order(program)
    assert any("cycle" in f.message for f in findings)
    assert all(f.rule == "lock-order" for f in findings)


def test_lock_order_reentrant_and_inversion(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/locks.py": """
                def reentrant(commit_lock):
                    with commit_lock.held():
                        with commit_lock.held():
                            pass


                def inverted(pool_lock, gateway_lock):
                    with pool_lock.held():
                        with gateway_lock.held():
                            pass
            """,
        },
    )
    messages = [f.message for f in check_lock_order(program)]
    assert any("already held" in m for m in messages)
    assert any("inverts the canonical lock order" in m for m in messages)


def test_lock_order_interprocedural_edge(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/a.py": """
                from pkg.b import grab_inner


                def outer(commit_lock, other_lock):
                    with commit_lock.held():
                        grab_inner(other_lock)
            """,
            "pkg/b.py": """
                def grab_inner(other_lock):
                    with other_lock.held():
                        pass


                def reverse(other_lock, commit_lock):
                    with other_lock.held():
                        with commit_lock.held():
                            pass
            """,
        },
    )
    # commit_lock -> other_lock (via the call) and other_lock ->
    # commit_lock (direct) close a cycle only visible interprocedurally.
    findings = check_lock_order(program)
    assert any("cycle" in f.message for f in findings)


def test_lock_order_consistent_order_clean(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/locks.py": """
                def one(gateway_lock, pool_lock):
                    with gateway_lock.held():
                        with pool_lock.held():
                            pass


                def two(gateway_lock, pool_lock):
                    with gateway_lock.held():
                        with pool_lock.held():
                            pass
            """,
        },
    )
    assert check_lock_order(program) == []


# -- crash-unwind --------------------------------------------------------------

_SWALLOWER = """
    def risky():
        try:
            crashpoint("x")
            return work()
        except BaseException:{suppress}
            return None
"""


def test_crash_unwind_swallow_detected(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/engine.py": _SWALLOWER.format(suppress=""),
        },
    )
    findings = check_crash_unwind(program)
    assert rules_of(findings) == ["crash-unwind"]
    assert "returns" in findings[0].message


def test_crash_unwind_caller_of_crashpoint_also_checked(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/inner.py": """
                def unsafe_op():
                    crashpoint("deep.site")
            """,
            "pkg/outer.py": """
                from pkg.inner import unsafe_op


                def caller():
                    try:
                        unsafe_op()
                    except:
                        pass
            """,
        },
    )
    findings = check_crash_unwind(program)
    assert any(f.path.endswith("outer.py") for f in findings)


def test_crash_unwind_reraise_and_exception_handler_clean(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/engine.py": """
                def reraises():
                    try:
                        crashpoint("x")
                    except BaseException:
                        cleanup()
                        raise


                def exception_only():
                    try:
                        crashpoint("x")
                    except Exception:
                        return None
            """,
        },
    )
    # ``except Exception`` cannot catch SimulatedCrash, so only an
    # actually-catching handler that fails to re-raise is a violation.
    assert check_crash_unwind(program) == []


def test_crash_unwind_suppression_honoured(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/engine.py": _SWALLOWER.format(
                suppress="  # repro: ignore[crash-unwind]"
            ),
        },
    )
    assert run_deep([pkg], checks=["crash-unwind"]) == []


# -- resource-leak -------------------------------------------------------------


def test_resource_leak_missing_release(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                def leaky(pool):
                    session = pool.acquire("tenant")
                    return None
            """,
        },
    )
    findings = check_resource_leaks(program)
    assert rules_of(findings) == ["resource-leak"]
    assert "gateway-session" in findings[0].message


def test_resource_leak_error_path_only(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                def err(pool):
                    session = pool.acquire("tenant")
                    work(session)
                    pool.release(session)
            """,
        },
    )
    findings = check_resource_leaks(program)
    assert len(findings) == 1
    assert "error path" in findings[0].message


def test_resource_leak_finally_release_clean(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                def safe(pool):
                    session = pool.acquire("tenant")
                    try:
                        return work(session)
                    finally:
                        pool.release(session)
            """,
        },
    )
    assert check_resource_leaks(program) == []


def test_resource_leak_released_through_helper(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                def finish_up(pool, session):
                    pool.release(session)


                def delegates(pool):
                    session = pool.acquire("tenant")
                    try:
                        return work(session)
                    finally:
                        finish_up(pool, session)
            """,
        },
    )
    # finish_up's summary says it releases its ``session`` parameter, so
    # the hand-off in the finally counts as the release.
    assert check_resource_leaks(program) == []


def test_resource_leak_passing_to_non_releasing_helper_still_leaks(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                def observe(pool, session):
                    return session


                def still_leaky(pool):
                    session = pool.acquire("tenant")
                    observe(pool, session)
                    return None
            """,
        },
    )
    assert rules_of(check_resource_leaks(program)) == ["resource-leak"]


def test_resource_leak_discarded_acquire(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": """
                def drops(store):
                    store.start("SELECT 1", "select")
            """,
        },
    )
    findings = check_resource_leaks(program)
    assert len(findings) == 1
    assert "immediately" in findings[0].message


def test_resource_leak_suppression_honoured(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/svc.py": textwrap.dedent(
                """
                def leaky(pool):
                    session = pool.acquire("t")  # repro: ignore[resource-leak]
                    return None
                """
            ),
        },
    )
    assert run_deep([pkg], checks=["resource-leak"]) == []


# -- determinism-taint ---------------------------------------------------------


def test_wallclock_taint_across_module_boundary(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/telemetry/__init__.py": "",
            "pkg/telemetry/helpers.py": """
                import time


                def stamp():
                    return time.time()
            """,
            "pkg/engine.py": """
                from pkg.telemetry.helpers import stamp


                def work():
                    return stamp()
            """,
        },
    )
    findings = check_determinism_taint(program)
    assert any(
        f.rule == "determinism-taint" and "wall-clock" in f.message
        for f in findings
    )
    assert any(f.path.endswith("engine.py") for f in findings)


def test_randomness_taint_transitive(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/util.py": """
                import random


                def roll():
                    return random.random()


                def wrapper():
                    return roll()
            """,
            "pkg/engine.py": """
                from pkg.util import wrapper


                def work():
                    return wrapper()
            """,
        },
    )
    findings = check_determinism_taint(program)
    assert any(
        "transitively uses unseeded" in f.message
        and f.path.endswith("engine.py")
        for f in findings
    )


def test_seeded_randomness_not_tainted(tmp_path):
    program = load(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/util.py": """
                import random


                def seeded():
                    return random.Random(42).random()
            """,
            "pkg/engine.py": """
                from pkg.util import seeded


                def work():
                    return seeded()
            """,
        },
    )
    assert check_determinism_taint(program) == []


# -- crashpoint-reachability ---------------------------------------------------


def test_crashpoint_reachability_with_injected_registry(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/entry.py": """
                from pkg.impl import do


                def public_entry():
                    return do()
            """,
            "pkg/impl.py": """
                def do():
                    crashpoint("covered.site")


                def orphan():
                    crashpoint("orphan.site")
            """,
        },
    )
    findings = run_deep(
        [pkg],
        checks=["crashpoint-reachability"],
        crashpoint_registry={
            "covered.site": "reached from the entrypoint",
            "orphan.site": "instrumented but unreachable",
        },
        entry_suffixes=("entry.py",),
    )
    assert rules_of(findings) == ["crashpoint-reachability"]
    assert "orphan.site" in findings[0].message
    assert findings[0].path.endswith("impl.py")


def test_crashpoint_reachability_skipped_without_registry(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/impl.py": """
                def orphan():
                    crashpoint("orphan.site")
            """,
        },
    )
    # No chaos/crashpoints.py in tree and no injected registry: the
    # check cannot know the registry and stays quiet.
    assert run_deep([pkg], checks=["crashpoint-reachability"]) == []


# -- runner behaviour ----------------------------------------------------------


def test_run_deep_strict_flags_useless_deep_suppression(tmp_path):
    pkg = write_tree(
        tmp_path,
        {
            "pkg/__init__.py": "",
            "pkg/clean.py": textwrap.dedent(
                """
                def fine():
                    return 1  # repro: ignore[lock-order]
                """
            ),
        },
    )
    findings = run_deep([pkg], strict=True)
    assert rules_of(findings) == ["useless-suppression"]
    # Non-strict runs tolerate the stale comment.
    assert run_deep([pkg], strict=False) == []


def test_deep_rule_names_are_registered():
    assert set(DEEP_RULES) == {
        "lock-order",
        "crash-unwind",
        "resource-leak",
        "determinism-taint",
        "crashpoint-reachability",
    }
