"""Cross-table snapshot consistency: the bank-transfer invariant.

A multi-table transaction moves value between two tables; under SI every
reader — whenever it starts, whatever interleaving — must see the total
conserved.  A reader observing a partial transfer would be a violation of
atomic multi-table visibility (Section 4.1's "covers multi-table write
transactions as well").
"""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from tests.conftest import small_config

TOTAL = 1000.0


def balance(table):
    return Aggregate(TableScan(table, ("amount",)), (), {"s": ("sum", Col("amount"))})


@pytest.fixture
def dw():
    warehouse = Warehouse(config=small_config(), auto_optimize=False)
    session = warehouse.session()
    for table in ("checking", "savings"):
        session.create_table(
            table,
            Schema.of(("slot", "int64"), ("amount", "float64")),
            distribution_column="slot",
        )
    session.insert(
        "checking",
        {"slot": np.arange(10, dtype=np.int64), "amount": np.full(10, TOTAL / 10)},
    )
    session.insert(
        "savings",
        {"slot": np.arange(10, dtype=np.int64), "amount": np.zeros(10)},
    )
    return warehouse


def read_total(session):
    return float(session.query(balance("checking"))["s"][0]) + float(
        session.query(balance("savings"))["s"][0]
    )


def transfer(dw, slot):
    """Atomically move one slot's checking balance into savings."""
    session = dw.session()
    session.begin()
    moved = TOTAL / 10
    session.update(
        "checking", BinOp("==", Col("slot"), Lit(slot)), {"amount": Lit(0.0)}
    )
    session.update(
        "savings",
        BinOp("==", Col("slot"), Lit(slot)),
        {"amount": Lit(moved)},
    )
    return session


def test_committed_transfers_conserve_total(dw):
    for slot in range(5):
        transfer(dw, slot).commit()
    assert read_total(dw.session()) == pytest.approx(TOTAL)


def test_reader_never_sees_partial_transfer(dw):
    writer = transfer(dw, 0)  # open: checking debited, savings credited

    # A reader starting mid-transfer sees the pre-transfer state entirely.
    reader = dw.session()
    reader.begin()
    assert read_total(reader) == pytest.approx(TOTAL)

    writer.commit()

    # Still the old snapshot inside the reader's transaction...
    assert read_total(reader) == pytest.approx(TOTAL)
    assert float(reader.query(balance("savings"))["s"][0]) == 0.0
    reader.commit()

    # ...and the new, also-conserved state afterwards.
    fresh = dw.session()
    assert read_total(fresh) == pytest.approx(TOTAL)
    assert float(fresh.query(balance("savings"))["s"][0]) == pytest.approx(100.0)


def test_aborted_transfer_invisible_everywhere(dw):
    writer = transfer(dw, 3)
    writer.rollback()
    fresh = dw.session()
    assert read_total(fresh) == pytest.approx(TOTAL)
    assert float(fresh.query(balance("savings"))["s"][0]) == 0.0


def test_interleaved_transfers_and_readers(dw):
    totals = []
    for slot in range(10):
        writer = transfer(dw, slot)
        totals.append(read_total(dw.session()))  # mid-transfer reader
        if slot % 3 == 2:
            writer.rollback()
        else:
            writer.commit()
        totals.append(read_total(dw.session()))  # post-decision reader
    assert all(t == pytest.approx(TOTAL) for t in totals)


def test_time_travel_sees_conserved_totals_at_every_point(dw):
    times = [dw.clock.now]
    for slot in range(4):
        transfer(dw, slot).commit()
        times.append(dw.clock.now)
    session = dw.session()
    for t in times:
        total = float(
            session.query(balance("checking"), as_of=t)["s"][0]
        ) + float(session.query(balance("savings"), as_of=t)["s"][0])
        assert total == pytest.approx(TOTAL)
