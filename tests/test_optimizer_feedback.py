"""Query-store cardinality feedback and plan-choice determinism."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.optimizer import cardinality
from repro.optimizer.statistics import collect_column_statistics
from repro.engine.planner import TableScan
from repro.pagefile.schema import Field

SCHEMA = Schema.of(("id", "int64"), ("v", "float64"))


def rows(n):
    ids = np.arange(n, dtype=np.int64)
    return {"id": ids, "v": ids.astype(np.float64)}


#: ``WHERE id >= 0`` matches every row but the default estimator prices
#: it as prune (1/2) times predicate (1/3): est ~ rows/6, so the store
#: records a ~6x misestimate on the scan.
EXPECTED_FACTOR = 100 / 17


def feedback_warehouse(config):
    config.telemetry.query_store_enabled = True
    return Warehouse(config=config, auto_optimize=False)


class TestFeedbackFactor:
    def test_misestimates_fold_into_next_analyze(self, config):
        dw = feedback_warehouse(config)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(100))
        for _ in range(4):
            out = session.sql("SELECT v FROM t WHERE id >= 0")
            assert len(out["v"]) == 100
        stats = session.analyze_table("t")
        assert stats.feedback_factor == pytest.approx(EXPECTED_FACTOR, rel=0.05)
        dmv = session.sql("SELECT feedback_factor FROM sys.dm_table_stats")
        assert float(dmv["feedback_factor"][0]) == pytest.approx(
            stats.feedback_factor
        )

    def test_factor_stays_one_below_threshold(self, config):
        config.optimizer.misestimate_threshold = 10.0  # ~6x doesn't qualify
        dw = feedback_warehouse(config)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(100))
        for _ in range(4):
            session.sql("SELECT v FROM t WHERE id >= 0")
        stats = session.analyze_table("t")
        assert stats.feedback_factor == 1.0

    def test_factor_stays_one_without_query_store(self, session):
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(100))
        session.sql("SELECT v FROM t WHERE id >= 0")
        stats = session.analyze_table("t")
        assert stats.feedback_factor == 1.0

    def test_factor_is_clamped_by_cap(self, config):
        config.optimizer.feedback_factor_cap = 1.5
        dw = feedback_warehouse(config)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(100))
        for _ in range(4):
            session.sql("SELECT v FROM t WHERE id >= 0")
        stats = session.analyze_table("t")
        assert stats.feedback_factor == pytest.approx(1.5)

    def test_factor_scales_scan_estimates(self):
        values = np.arange(100, dtype=np.int64)
        col = collect_column_statistics(
            Field(name="id", type="int64"), values, buckets=8
        )
        scan = TableScan(table="t", columns=("id",))
        plain = cardinality.scan_estimate(
            scan, _stats(col, feedback_factor=1.0)
        )
        corrected = cardinality.scan_estimate(
            scan, _stats(col, feedback_factor=3.0)
        )
        assert corrected == pytest.approx(plain * 3.0)

    def test_corrected_stats_change_explain_estimates(self, config):
        from tests.conftest import small_config

        dw = feedback_warehouse(config)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(100))
        for _ in range(4):
            session.sql("SELECT v FROM t WHERE id >= 0")
        session.analyze_table("t")  # folds the ~6x misestimate in
        corrected = session.sql(
            "EXPLAIN ANALYZE SELECT v FROM t WHERE id >= 0"
        )
        # Control: identical data analyzed with no misestimate history.
        control_dw = feedback_warehouse(small_config())
        control = control_dw.session()
        control.create_table("t", SCHEMA, distribution_column="id")
        control.insert("t", rows(100))
        control.analyze_table("t")
        baseline = control.sql("EXPLAIN ANALYZE SELECT v FROM t WHERE id >= 0")
        assert "stats=stats" in corrected and "stats=stats" in baseline
        assert _scan_est(baseline) == 100
        assert _scan_est(corrected) > 100  # feedback factor scaled it

    def test_converged_stats_accumulate_no_new_feedback(self, config):
        dw = feedback_warehouse(config)
        session = dw.session()
        session.create_table("t", SCHEMA, distribution_column="id")
        session.insert("t", rows(100))
        session.analyze_table("t")
        for _ in range(4):
            session.sql("SELECT v FROM t WHERE id >= 0")  # est is accurate
        stats = session.analyze_table("t")
        assert stats.feedback_factor == 1.0


def _stats(col, feedback_factor):
    from repro.optimizer.statistics import TableStatistics

    return TableStatistics(
        table_id=1,
        table_name="t",
        sequence_id=0,
        row_count=100,
        analyzed_at=0.0,
        source="analyze",
        feedback_factor=feedback_factor,
        columns={"id": col},
    )


def _scan_est(text):
    """The ``est=`` annotation on the plan's ``Scan t`` line."""
    import re

    for line in text.splitlines():
        if line.strip().startswith("Scan t"):
            match = re.search(r"est=(\d+)", line)
            assert match, line
            return int(match.group(1))
    raise AssertionError(f"no scan line in:\n{text}")


class TestDeterminism:
    def _build(self, seed_rows=200):
        from tests.conftest import small_config

        dw = Warehouse(config=small_config(), auto_optimize=False)
        session = dw.session()
        session.create_table("big", SCHEMA, distribution_column="id")
        session.insert("big", rows(seed_rows))
        session.create_table(
            "small", Schema.of(("sid", "int64"), ("w", "float64")),
            distribution_column="sid",
        )
        session.insert(
            "small",
            {"sid": np.arange(4, dtype=np.int64), "w": np.zeros(4)},
        )
        session.analyze_table("big")
        session.analyze_table("small")
        session.create_index("big", "idx_big_id", "id")
        return session

    def test_same_catalog_state_same_plan_text(self):
        query = "EXPLAIN SELECT v, w FROM big JOIN small ON id = sid"
        first = self._build().sql(query)
        second = self._build().sql(query)
        assert first == second

    def test_repeated_explain_is_stable(self):
        session = self._build()
        query = "EXPLAIN SELECT v, w FROM big JOIN small ON id = sid"
        texts = {session.sql(query) for _ in range(5)}
        assert len(texts) == 1
