"""Tests for opt-in unique-key enforcement (Section 4.4.3)."""

import numpy as np
import pytest

from repro import Schema, Warehouse
from repro.common.errors import CatalogError
from repro.fe.constraints import UniqueConstraintViolation
from tests.conftest import small_config


def ids(values):
    arr = np.asarray(values, dtype=np.int64)
    return {"id": arr, "v": np.zeros(len(arr))}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")),
        distribution_column="id", unique_column="id",
    )
    return s


class TestUniqueEnforcement:
    def test_clean_inserts_pass(self, session):
        assert session.insert("t", ids(range(100))) == 100
        assert session.insert("t", ids(range(100, 200))) == 100

    def test_intra_batch_duplicates_rejected(self, session):
        with pytest.raises(UniqueConstraintViolation, match="duplicate"):
            session.insert("t", ids([1, 2, 2]))

    def test_cross_statement_duplicates_rejected(self, session):
        session.insert("t", ids(range(50)))
        with pytest.raises(UniqueConstraintViolation, match="already exist"):
            session.insert("t", ids([10]))

    def test_rejected_insert_leaves_no_rows(self, dw, session):
        session.insert("t", ids(range(10)))
        with pytest.raises(UniqueConstraintViolation):
            session.insert("t", ids([5, 100]))
        assert session.table_snapshot("t").live_rows == 10

    def test_deleted_keys_reusable(self, dw, session):
        from repro import BinOp, Col, Lit
        session.insert("t", ids(range(10)))
        session.delete("t", BinOp("==", Col("id"), Lit(3)))
        session.insert("t", ids([3]))  # key freed by the delete
        assert session.table_snapshot("t").live_rows == 10

    def test_check_sees_same_transaction_inserts(self, session):
        session.begin()
        session.insert("t", ids([1]))
        with pytest.raises(UniqueConstraintViolation):
            session.insert("t", ids([1]))
        session.rollback()

    def test_bulk_load_cross_file_duplicates_rejected(self, session):
        with pytest.raises(UniqueConstraintViolation):
            session.bulk_load("t", [ids([1, 2]), ids([2, 3])])

    def test_concurrent_si_inserts_can_both_commit(self, dw, session):
        """The paper's other objection: SI cannot see a concurrent insert,
        so enforcement is not airtight without extra conflict machinery."""
        session.insert("t", ids(range(10)))
        a, b = dw.session(), dw.session()
        a.begin()
        b.begin()
        a.insert("t", ids([500]))
        b.insert("t", ids([500]))
        a.commit()
        b.commit()  # both commit: a documented SI limitation
        assert dw.session().table_snapshot("t").live_rows == 12

    def test_unknown_unique_column_rejected(self, dw):
        with pytest.raises(CatalogError, match="unique column"):
            dw.session().create_table(
                "u", Schema.of(("id", "int64")), unique_column="nope"
            )

    def test_tables_without_constraint_unaffected(self, dw):
        s = dw.session()
        s.create_table("free", Schema.of(("id", "int64"), ("v", "float64")))
        s.insert("free", ids([1, 1, 1]))  # duplicates fine
        assert s.table_snapshot("free").live_rows == 3
