"""The service load generator, and WLM/autoscaler driven through it."""

import pytest

from repro import PolarisConfig, Warehouse
from repro.dcp import Autoscaler
from repro.service import Gateway
from repro.workloads.service_load import ServiceLoadGenerator
from repro.workloads.tpch.queries import q6


def load_warehouse(seed=0, elastic=False, separate_pools=True, service=None):
    config = PolarisConfig()
    config.seed = seed
    for key, value in (service or {}).items():
        setattr(config.service, key, value)
    return Warehouse(
        config=config,
        elastic=elastic,
        separate_pools=separate_pools,
        auto_optimize=False,
    )


def run_load(
    seed=0, elastic=False, separate_pools=True, service=None, **generator_kwargs
):
    generator_kwargs.setdefault("transactional_clients", 2)
    generator_kwargs.setdefault("analytical_clients", 1)
    generator_kwargs.setdefault("requests_per_client", 2)
    generator_kwargs.setdefault("scale_factor", 0.02)
    dw = load_warehouse(seed, elastic, separate_pools, service)
    gateway = Gateway(dw.context, seed=seed)
    generator = ServiceLoadGenerator(gateway, seed=seed, **generator_kwargs)
    report = generator.run()
    return dw, gateway, generator, report


class TestLoadGenerator:
    def test_report_accounting_is_consistent(self):
        __, gateway, __, report = run_load()
        assert report.submitted == report.admitted + report.shed
        assert report.admitted == (
            report.completed + report.failed + report.timed_out
        )
        assert report.completed > 0
        assert report.elapsed_s > 0
        assert report.goodput == pytest.approx(
            report.completed / report.elapsed_s
        )
        assert not gateway.requests_with_status("queued", "running")

    def test_same_seed_reproduces_the_run_exactly(self):
        def witness():
            __, gateway, generator, report = run_load(seed=5)
            return (
                report.as_dict(),
                list(gateway.admission.decision_log),
                generator.admitted_latencies(),
            )

        assert witness() == witness()

    def test_overload_sheds_and_clients_honor_retry_after(self):
        __, gateway, __, report = run_load(
            service={"tokens_per_s": 0.5, "token_burst": 2.0},
            transactional_clients=6,
            analytical_clients=3,
            requests_per_client=3,
            mean_think_s=0.05,
        )
        assert report.shed > 0
        assert report.retries > 0  # shed clients slept the hint and retried
        shed_rows = gateway.requests_with_status("shed")
        assert shed_rows and all(r.retry_after_s > 0 for r in shed_rows)

    def test_accounting_survives_ledger_eviction(self):
        """Totals stay exact when terminal requests outnumber the ledger cap."""
        __, gateway, __, report = run_load(
            service={"finished_history_cap": 3},
            transactional_clients=3,
            analytical_clients=1,
            requests_per_client=3,
        )
        terminal = report.completed + report.failed + report.timed_out
        assert report.admitted == terminal
        assert terminal > 3  # more finishers than the ledger retains
        assert len(gateway.request_rows()) <= 3
        assert gateway.finished_count("completed") == report.completed
        assert report.goodput == pytest.approx(
            report.completed / report.elapsed_s
        )

    def test_latencies_come_from_completed_requests_only(self):
        __, __, generator, report = run_load()
        latencies = generator.admitted_latencies()
        assert len(latencies) == report.completed
        assert latencies == sorted(latencies)
        assert all(l >= 0 for l in latencies)


class TestWlmThroughGateway:
    """WP3 separation under gateway traffic: reads and writes land on
    disjoint WLM pools, sized by the autoscaler."""

    def test_mixed_load_exercises_both_pools(self):
        dw, __, __, report = run_load(separate_pools=True)
        assert report.completed > 0
        tasks = dw.context.telemetry.metrics.values("dcp.tasks")
        pools = {key for key in tasks if "pool=" in key}
        assert any("pool=read" in key for key in pools), pools
        assert any("pool=write" in key for key in pools), pools
        wlm = dw.context.wlm
        assert wlm.separate_pools
        assert wlm.pool("read") is not wlm.pool("write")
        read_ids = {n.node_id for n in wlm.pool("read").nodes}
        write_ids = {n.node_id for n in wlm.pool("write").nodes}
        assert not read_ids & write_ids

    def test_shared_pool_ablation_contends_on_one_topology(self):
        dw, __, __, __ = run_load(separate_pools=False)
        wlm = dw.context.wlm
        assert not wlm.separate_pools
        assert wlm.pool("read") is wlm.pool("write")

    def test_elastic_read_pool_sized_by_the_autoscaler(self):
        dw, gateway, __, report = run_load(elastic=True)
        assert report.completed > 0
        # One final controlled scan with no concurrent mutations: the read
        # pool must end up at exactly the autoscaler's choice for the
        # table's current size.
        probe = gateway.submit(
            "tenant_a", "analytical", lambda s: s.query(q6())
        )
        gateway.run()
        assert probe.status == "completed"
        live_rows = dw.session().table_snapshot("lineitem").live_rows
        expected = dw.context.autoscaler.nodes_for_query(live_rows)
        assert dw.context.wlm.pool("read").size == expected


class TestAutoscalerUnit:
    def autoscaler(self, **overrides):
        config = PolarisConfig().dcp
        for key, value in overrides.items():
            setattr(config, key, value)
        return Autoscaler(config)

    def test_load_parallelism_capped_by_source_files(self):
        scaler = self.autoscaler(
            rows_per_node_million=1.0, slots_per_node=2, elastic_max_nodes=None
        )
        # CPU cost alone would ask for 10 nodes; 4 files cap it at 2.
        assert scaler.nodes_for_load(10_000_000, source_files=4) == 2
        assert scaler.nodes_for_load(10_000_000, source_files=40) == 10

    def test_query_parallelism_tracks_rows(self):
        scaler = self.autoscaler(
            rows_per_node_million=1.0, elastic_max_nodes=None
        )
        assert scaler.nodes_for_query(100) == 1
        assert scaler.nodes_for_query(3_500_000) == 4

    def test_elastic_max_nodes_caps_both_paths(self):
        scaler = self.autoscaler(rows_per_node_million=1.0, elastic_max_nodes=3)
        assert scaler.nodes_for_query(50_000_000) == 3
        assert scaler.nodes_for_load(50_000_000, source_files=100) == 3
