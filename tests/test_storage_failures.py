"""Tests for fault injection and the block-blob client."""

import pytest

from repro.common.config import StorageConfig
from repro.common.errors import TransientStorageError
from repro.common.ids import GuidGenerator
from repro.storage import BlockBlobClient, ObjectStore


class TestFaultInjection:
    def test_armed_fault_fires_once(self):
        store = ObjectStore()
        store.faults.arm("target")
        with pytest.raises(TransientStorageError):
            store.put("a/target/b", b"x")
        store.put("a/target/b", b"x")  # second attempt succeeds

    def test_armed_fault_matches_operation(self):
        store = ObjectStore()
        store.faults.arm("f", operation="get")
        store.put("f", b"x")  # put unaffected
        with pytest.raises(TransientStorageError):
            store.get("f")

    def test_armed_fault_ignores_other_paths(self):
        store = ObjectStore()
        store.faults.arm("xyz")
        store.put("abc", b"1")
        assert store.exists("abc")

    def test_random_faults_follow_rate(self):
        config = StorageConfig(transient_failure_rate=1.0)
        store = ObjectStore(config=config)
        with pytest.raises(TransientStorageError):
            store.put("a", b"x")

    def test_zero_rate_never_fails(self):
        store = ObjectStore(config=StorageConfig(transient_failure_rate=0.0))
        for i in range(100):
            store.put(f"p{i}", b"x")

    def test_random_faults_deterministic_per_seed(self):
        def failures(seed: int) -> list:
            store = ObjectStore(
                config=StorageConfig(transient_failure_rate=0.5, failure_seed=seed)
            )
            out = []
            for i in range(50):
                try:
                    store.put(f"p{i}", b"")
                    out.append(False)
                except TransientStorageError:
                    out.append(True)
            return out

        assert failures(5) == failures(5)
        assert failures(5) != failures(6)


class TestBlockBlobClient:
    def test_write_block_stages_and_remembers(self):
        store = ObjectStore()
        client = BlockBlobClient(store, "m", GuidGenerator(seed=0))
        bid = client.write_block(b"data")
        assert client.written_block_ids == [bid]
        store.commit_block_list("m", [bid])
        assert store.get("m").data == b"data"

    def test_two_clients_do_not_interfere(self):
        """Two BE nodes staging concurrently against one manifest."""
        store = ObjectStore()
        guids = GuidGenerator(seed=0)
        a = BlockBlobClient(store, "m", guids)
        b = BlockBlobClient(store, "m", guids)
        ida = a.write_block(b"A")
        idb = b.write_block(b"B")
        store.commit_block_list("m", [ida, idb])
        assert store.get("m").data == b"AB"

    def test_abandoned_attempt_blocks_discarded(self):
        """A restarted task's first-attempt blocks never become visible."""
        store = ObjectStore()
        guids = GuidGenerator(seed=0)
        attempt1 = BlockBlobClient(store, "m", guids)
        attempt1.write_block(b"garbage")
        attempt2 = BlockBlobClient(store, "m", guids)
        good = attempt2.write_block(b"good")
        store.commit_block_list("m", [good])
        assert store.get("m").data == b"good"
