"""Tests for the TPC-DS subset generator and LST-Bench drivers."""

import numpy as np
import pytest

from repro import Warehouse
from repro.workloads.lst_bench import LstBenchRunner
from repro.workloads.tpcds import TPCDS_SCHEMAS, TpcdsGenerator
from repro.workloads.tpcds.schema import TPCDS_FAMILIES
from tests.conftest import small_config


class TestTpcdsGenerator:
    def test_schemas_match(self):
        gen = TpcdsGenerator(scale_factor=0.1)
        for name, batch in gen.all_tables().items():
            assert set(batch) == set(TPCDS_SCHEMAS[name].names)

    def test_returns_subset_of_sales(self):
        gen = TpcdsGenerator(scale_factor=0.1)
        sales = gen.table("store_sales")
        returns = gen.table("store_returns")
        tickets = set(
            zip(sales["ss_ticket_number"].tolist(), sales["ss_item_sk"].tolist())
        )
        returned = set(
            zip(returns["sr_ticket_number"].tolist(), returns["sr_item_sk"].tolist())
        )
        assert returned <= tickets

    def test_store_is_largest_channel(self):
        gen = TpcdsGenerator(scale_factor=0.5)
        assert gen.rows("store_sales") > gen.rows("catalog_sales") > gen.rows("web_sales")

    def test_incremental_batches_shape(self):
        gen = TpcdsGenerator(scale_factor=0.1)
        batch = gen.incremental_sales("web_sales", 25)
        assert len(batch["ws_sold_date_sk"]) == 25
        ret = gen.incremental_returns("web_returns", 10)
        assert len(ret["wr_returned_date_sk"]) == 10

    def test_deterministic(self):
        a = TpcdsGenerator(scale_factor=0.1, seed=3).table("catalog_sales")
        b = TpcdsGenerator(scale_factor=0.1, seed=3).table("catalog_sales")
        np.testing.assert_array_equal(a["cs_sales_price"], b["cs_sales_price"])


@pytest.fixture
def runner():
    config = small_config()
    config.sto.min_healthy_rows_per_file = 50
    dw = Warehouse(config=config, auto_optimize=False)
    r = LstBenchRunner(dw, scale_factor=0.05, source_files_per_table=2)
    r.setup()
    return r


class TestLstBenchRunner:
    def test_setup_loads_all_tables(self, runner):
        names = runner.session.table_names()
        for sales, returns in TPCDS_FAMILIES:
            assert sales in names and returns in names
        assert "item" in names

    def test_su_runs_nine_queries(self, runner):
        result = runner.run_single_user()
        assert len(result.query_times) == 9
        assert result.elapsed > 0

    def test_dm_statement_mix(self, runner):
        statements = runner.dm_statements()
        labels = [label for label, __ in statements]
        # Per table: 2 inserts + 6 deletes + 2 compactions = 10 statements.
        per_table = [l for l in labels if l.startswith("store_sales:")]
        assert len(per_table) == 10
        assert sum(1 for l in per_table if "insert" in l) == 2
        assert sum(1 for l in per_table if "delete" in l) == 6
        assert sum(1 for l in per_table if "compact" in l) == 2

    def test_dm_order_catalog_store_web(self, runner):
        labels = [label for label, __ in runner.dm_statements()]
        first_catalog = next(i for i, l in enumerate(labels) if "catalog" in l)
        first_store = next(i for i, l in enumerate(labels) if "store" in l)
        first_web = next(i for i, l in enumerate(labels) if l.startswith("web"))
        assert first_catalog < first_store < first_web

    def test_dm_phase_runs(self, runner):
        result = runner.run_data_maintenance()
        assert result.statements == 60  # 6 tables × 10 statements
        assert result.elapsed > 0

    def test_dm_rounds_target_different_slices(self, runner):
        first = {l for l, __ in runner.dm_statements()}
        runner.run_data_maintenance()
        # Round counter advanced: new deletes hit different date ranges, so
        # the second DM still finds rows to delete.
        result2 = runner.run_data_maintenance()
        assert result2.statements == 60

    def test_optimize_phase(self, runner):
        runner.run_data_maintenance()
        result = runner.run_optimize()
        assert result.statements == 14  # 7 tables × (compact + checkpoint)

    def test_wp3_phase_structure(self, runner):
        phases = runner.run_wp3()
        names = [p.name for p in phases]
        assert names == ["SU-alone", "SU+DM", "SU-between", "SU+Optimize"]
        by_name = {p.name: p for p in phases}
        # Concurrency slows the SU phase down (Figure 12's shape).
        assert by_name["SU+DM"].elapsed > by_name["SU-alone"].elapsed
