"""Tests for Query As Of, Clone As Of, and lineage independence (Section 6)."""

import numpy as np
import pytest

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse
from repro.common.errors import (
    CatalogError,
    RetentionViolationError,
    SnapshotNotFoundError,
)
from repro.fe.timetravel import sequence_as_of, snapshot_as_of
from tests.conftest import small_config


def count(table):
    return Aggregate(TableScan(table, ("id",)), (), {"n": ("count", None)})


def ids(n, start=0):
    return {"id": np.arange(start, start + n, dtype=np.int64), "v": np.zeros(n)}


@pytest.fixture
def dw():
    return Warehouse(config=small_config(), auto_optimize=False)


@pytest.fixture
def session(dw):
    s = dw.session()
    s.create_table("t", Schema.of(("id", "int64"), ("v", "float64")),
                   distribution_column="id")
    return s


class TestQueryAsOf:
    def test_reads_historic_state(self, dw, session):
        session.insert("t", ids(10))
        t1 = dw.clock.now
        session.insert("t", ids(10, start=100))
        t2 = dw.clock.now
        session.delete("t", BinOp("<", Col("id"), Lit(5)))
        assert session.query(count("t"))["n"][0] == 15
        assert session.query(count("t"), as_of=t2)["n"][0] == 20
        assert session.query(count("t"), as_of=t1)["n"][0] == 10

    def test_before_first_insert_is_empty(self, dw, session):
        t0 = dw.clock.now
        session.insert("t", ids(10))
        assert session.query(count("t"), as_of=t0)["n"][0] == 0

    def test_before_table_creation_rejected(self, dw, session):
        with pytest.raises(SnapshotNotFoundError):
            session.query(count("t"), as_of=-1.0)

    def test_unknown_table_rejected(self, dw):
        with pytest.raises(SnapshotNotFoundError):
            sequence_as_of(dw.context, 9999, dw.clock.now)

    def test_beyond_retention_rejected(self, dw, session):
        session.insert("t", ids(1))
        t1 = dw.clock.now
        dw.clock.advance(dw.config.sto.retention_period_s + 100.0)
        with pytest.raises(RetentionViolationError):
            session.query(count("t"), as_of=t1)

    def test_snapshot_as_of_defaults_to_now(self, dw, session):
        session.insert("t", ids(7))
        snap = snapshot_as_of(dw.context, 1001)
        assert snap.live_rows == 7


class TestCloneAsOf:
    def test_clone_matches_source_now(self, dw, session):
        session.insert("t", ids(10))
        session.clone_table("t", "t2")
        assert dw.session().query(count("t2"))["n"][0] == 10

    def test_clone_as_of_historic_point(self, dw, session):
        session.insert("t", ids(10))
        t1 = dw.clock.now
        session.insert("t", ids(5, start=100))
        session.clone_table("t", "t_old", as_of=t1)
        assert dw.session().query(count("t_old"))["n"][0] == 10

    def test_clone_shares_data_files(self, dw, session):
        """Zero copy: clone references the source's physical files."""
        session.insert("t", ids(10))
        before = dw.store.meter.bytes_written
        session.clone_table("t", "t2")
        # Cloning writes no data files (only catalog rows, not metered).
        assert dw.store.meter.bytes_written == before
        src = session.table_snapshot("t")
        cln = session.table_snapshot("t2")
        assert set(f.path for f in src.files.values()) == set(
            f.path for f in cln.files.values()
        )

    def test_clone_evolves_independently(self, dw, session):
        session.insert("t", ids(10))
        session.clone_table("t", "t2")
        session.insert("t2", ids(5, start=200))
        session.delete("t", BinOp("<", Col("id"), Lit(3)))
        reader = dw.session()
        assert reader.query(count("t"))["n"][0] == 7
        assert reader.query(count("t2"))["n"][0] == 15

    def test_clone_name_collision_rejected(self, dw, session):
        session.insert("t", ids(1))
        with pytest.raises(CatalogError):
            session.clone_table("t", "t")

    def test_clone_unknown_source_rejected(self, dw, session):
        with pytest.raises(CatalogError):
            session.clone_table("ghost", "t2")

    def test_clone_inside_explicit_txn_is_atomic(self, dw, session):
        session.insert("t", ids(10))
        session.begin()
        session.clone_table("t", "t2")
        session.rollback()
        assert "t2" not in dw.session().table_names()

    def test_clone_consistent_under_concurrent_write(self, dw, session):
        session.insert("t", ids(10))
        cloner = dw.session()
        cloner.begin()
        cloner.query(count("t"))  # pin the snapshot
        dw.session().insert("t", ids(5, start=100))
        cloner.clone_table("t", "t2")
        cloner.commit()
        # The clone saw the cloner's SI snapshot: 10 rows, not 15.
        assert dw.session().query(count("t2"))["n"][0] == 10
