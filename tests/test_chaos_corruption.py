"""Tests for the corruption sweep and the chaos CLI's error surface."""

from repro.chaos import CRASHPOINTS, run_corruption_sweep
from repro.chaos.__main__ import main
from repro.chaos.corruption import (
    AT_REST_FAULTS,
    BLOB_KINDS,
    REPAIRABLE,
    _run_at_rest,
)


class TestCorruptionSweep:
    def test_every_fault_class_and_blob_kind_passes(self):
        result = run_corruption_sweep(seed=0)
        problems = list(result.problems) + [
            f"{s.mode}:{s.blob_kind}:{s.fault}: {problem}"
            for s in result.failures
            for problem in s.problems
        ]
        assert result.ok, "\n".join(problems)
        covered = {(s.blob_kind, s.fault) for s in result.scenarios}
        for kind in BLOB_KINDS:
            for fault in AT_REST_FAULTS + ("stale_read",):
                assert (kind, fault) in covered, (kind, fault)

    def test_corruption_is_always_detected(self):
        result = run_corruption_sweep(seed=0)
        for scenario in result.scenarios:
            assert scenario.detected, scenario.summary()

    def test_at_rest_outcomes_match_repairability(self):
        result = run_corruption_sweep(seed=0)
        for scenario in result.scenarios:
            if scenario.mode != "at_rest":
                continue
            assert scenario.quarantined, scenario.summary()
            expected = "repaired" if REPAIRABLE[scenario.blob_kind] else "red"
            assert scenario.outcome == expected, scenario.summary()

    def test_read_side_faults_never_persist(self):
        result = run_corruption_sweep(seed=0)
        for scenario in result.scenarios:
            if scenario.mode == "read":
                assert scenario.outcome == "transient", scenario.summary()
                assert not scenario.quarantined, scenario.summary()

    def test_scenario_is_deterministic(self):
        first = _run_at_rest("manifest", "bit_flip", seed=3)
        second = _run_at_rest("manifest", "bit_flip", seed=3)
        assert first.summary() == second.summary()
        assert first.ok


class TestChaosCli:
    def test_unknown_site_exits_2_and_prints_catalogue(self, capsys):
        assert main(["--site", "no.such.site"]) == 2
        err = capsys.readouterr().err
        assert "unknown crashpoint(s): no.such.site" in err
        for name in CRASHPOINTS:
            assert name in err

    def test_recovery_site_rejected_with_double_crash_hint(self, capsys):
        assert main(["--site", "recovery.staged.after_discard"]) == 2
        err = capsys.readouterr().err
        assert "--double-crash" in err

    def test_corruption_flag_runs_clean(self, capsys):
        assert main(["--corruption"]) == 0
        out = capsys.readouterr().out
        assert "corruption scenario(s) detected" in out
