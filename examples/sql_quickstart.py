"""Driving the warehouse with SQL text.

The same transactional engine, through the SQL dialect: DDL with storage
options, multi-row inserts, snapshot-isolated explicit transactions,
aggregates with HAVING, joins, CASE, LIKE, date literals, and DML.

Run:  python examples/sql_quickstart.py
"""

from repro import SqlSession, Warehouse


def show(batch, limit=10):
    """Print a result batch as rows."""
    names = list(batch)
    print("  " + " | ".join(names))
    count = len(batch[names[0]]) if names else 0
    for i in range(min(count, limit)):
        print("  " + " | ".join(str(batch[name][i]) for name in names))


def main() -> None:
    dw = Warehouse(database="sqldemo")
    sql = SqlSession(dw.session())

    sql.execute("""
        CREATE TABLE orders (
            order_id bigint,
            placed bigint,
            city varchar,
            amount double
        ) WITH (distribution = order_id, sort = placed)
    """)
    sql.execute("""
        INSERT INTO orders (order_id, placed, city, amount) VALUES
            (1, 728659, 'seattle', 120.00),
            (2, 728659, 'boston',   80.50),
            (3, 728660, 'seattle',  42.25),
            (4, 728660, 'austin',  300.00),
            (5, 728661, 'boston',   15.75),
            (6, 728661, 'austin',   99.99)
    """)

    print("revenue by city (HAVING filters small cities):")
    show(sql.execute("""
        SELECT city, SUM(amount) AS revenue, COUNT(*) AS orders
        FROM orders
        GROUP BY city
        HAVING SUM(amount) > 100
        ORDER BY revenue DESC
    """))

    print("\norder size tiers:")
    show(sql.execute("""
        SELECT order_id,
               CASE WHEN amount >= 100 THEN 'large' ELSE 'small' END AS tier
        FROM orders ORDER BY order_id
    """))

    print("\nsnapshot-isolated transaction:")
    sql.execute("BEGIN")
    sql.execute("UPDATE orders SET amount = amount * 1.1 WHERE city = 'austin'")
    sql.execute("DELETE FROM orders WHERE amount < 20")
    in_txn = sql.execute("SELECT COUNT(*) AS n FROM orders")["n"][0]
    # A second session still sees the pre-transaction state:
    other = SqlSession(dw.session())
    outside = other.execute("SELECT COUNT(*) AS n FROM orders")["n"][0]
    print(f"  inside txn: {in_txn} orders; other session still sees {outside}")
    sql.execute("COMMIT")
    print(f"  after commit: "
          f"{other.execute('SELECT COUNT(*) AS n FROM orders')['n'][0]} orders")

    print("\ndate-filtered join:")
    sql.execute("CREATE TABLE cities (city_name varchar, region varchar)")
    sql.execute("""
        INSERT INTO cities (city_name, region) VALUES
            ('seattle', 'west'), ('austin', 'south'), ('boston', 'east')
    """)
    show(sql.execute("""
        SELECT region, SUM(amount) AS revenue
        FROM orders JOIN cities ON city = city_name
        WHERE placed >= DATE '1996-01-02'
        GROUP BY region ORDER BY revenue DESC
    """))


if __name__ == "__main__":
    main()
