"""Run the TPC-H workload end to end through the transactional engine.

Loads the eight TPC-H tables at a micro scale into a Polaris warehouse and
runs all 22 benchmark queries over the LST storage — the same path the
paper's Figure 9 experiment exercises — printing per-query simulated
execution times and a sample of Q1's output.

Run:  python examples/tpch_analytics.py [scale_factor] [--trace OUT.json]

With ``--trace`` the whole run is recorded as hierarchical telemetry
spans (transaction → statement → DCP task → storage request) and written
as a Chrome trace; open it at https://ui.perfetto.dev to see every query
laid out across the simulated compute nodes.  An EXPLAIN ANALYZE of Q1 is
printed at the end of traced runs.
"""

import argparse

# Script mode: make ``repro`` importable without an installed package.
if __package__ in (None, ""):
    import os
    import sys

    _SRC = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro import PolarisConfig, Warehouse
from repro.workloads.tpch import TPCH_QUERIES, TpchGenerator
from repro.workloads.tpch.schema import TPCH_DISTRIBUTION, TPCH_SCHEMAS


def main(scale_factor: float = 0.1, trace: "str | None" = None) -> None:
    config = PolarisConfig()
    if trace is not None:
        config.telemetry.enabled = True
    dw = Warehouse(database="tpch", config=config)
    session = dw.session()
    generator = TpchGenerator(scale_factor=scale_factor, seed=42)

    print(f"loading TPC-H at micro scale {scale_factor} ...")
    for name, batch in generator.all_tables().items():
        session.create_table(name, TPCH_SCHEMAS[name], TPCH_DISTRIBUTION[name])
        rows = session.insert(name, batch)
        print(f"  {name:10s} {rows:8d} rows")
    print(f"load finished at simulated t={dw.clock.now:.1f}s\n")

    print("running the 22 TPC-H queries:")
    total = 0.0
    for number, builder in sorted(TPCH_QUERIES.items()):
        start = dw.clock.now
        out = session.query(builder())
        elapsed = dw.clock.now - start
        total += elapsed
        rows = len(next(iter(out.values()))) if out else 0
        print(f"  Q{number:02d}: {elapsed:7.3f}s  ({rows} rows)")
    print(f"power run total: {total:.1f} simulated seconds")

    q1 = session.query(TPCH_QUERIES[1]())
    print("\nQ1 pricing summary (first rows):")
    header = ["flag", "status", "sum_qty", "avg_price", "orders"]
    print("  " + "  ".join(h.rjust(10) for h in header))
    for i in range(min(4, len(q1["l_returnflag"]))):
        print(
            "  "
            + "  ".join(
                str(x).rjust(10)
                for x in (
                    q1["l_returnflag"][i],
                    q1["l_linestatus"][i],
                    int(q1["sum_qty"][i]),
                    round(float(q1["avg_price"][i]), 2),
                    int(q1["count_order"][i]),
                )
            )
        )

    if trace is not None:
        print("\nEXPLAIN ANALYZE Q1:")
        print(session.explain_analyze(TPCH_QUERIES[1]()).text)
        dw.telemetry.export_chrome(trace)
        spans = len(dw.telemetry.spans)
        print(f"\nwrote {spans} spans to {trace} (load at ui.perfetto.dev)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale_factor", nargs="?", type=float, default=0.1)
    parser.add_argument(
        "--trace",
        metavar="OUT",
        default=None,
        help="enable telemetry and write a Chrome trace JSON here",
    )
    args = parser.parse_args()
    main(args.scale_factor, trace=args.trace)
