"""Open-format interop: publishing snapshots for other engines (Section 5.4).

Polaris keeps one copy of the data in the lake and *publishes* committed
snapshots as Delta-format metadata so Spark, and anything else that speaks
the open format, can read warehouse tables with zero copying:

1. every commit is asynchronously transformed into a ``_delta_log`` entry
   in the user-visible location, with a OneLake shortcut mapping onto the
   internal data folder;
2. an "external engine" (here: :mod:`repro.sto.delta_reader`, which knows
   nothing about the Polaris catalog) replays the published log and reads
   the same immutable files byte for byte;
3. deletes surface as deletion vectors in the log; compactions swap file
   sets — the external view tracks every commit.

Run:  python examples/open_format_interop.py
"""

import numpy as np

from repro import BinOp, Col, Lit, Schema, Warehouse
from repro.engine.explain import explain
from repro.pagefile.reader import PageFileReader
from repro.sto.delta_reader import read_published_table


def main() -> None:
    dw = Warehouse(database="lakehouse")
    dw.sto.auto_publish = True  # STO publishes after every commit
    session = dw.session()

    session.create_table(
        "readings",
        Schema.of(("sensor", "int64"), ("ts", "int64"), ("value", "float64")),
        distribution_column="sensor",
        sort_column=["sensor", "ts"],  # composite Z-order key
    )
    rng = np.random.default_rng(3)
    n = 5_000
    session.insert(
        "readings",
        {
            "sensor": rng.integers(0, 50, n).astype(np.int64),
            "ts": rng.integers(0, 100_000, n).astype(np.int64),
            "value": np.round(rng.normal(20.0, 5.0, n), 3),
        },
    )
    deleted = session.delete("readings", BinOp("<", Col("value"), Lit(10.0)))
    print(f"deleted {deleted} out-of-range readings")

    # -- the external engine's view --------------------------------------------
    external = read_published_table(dw.context, "readings")
    print(f"published versions: {external.versions_read}")
    print(f"live data files:    {len(external.files)}")
    print(f"deletion vectors:   {len(external.deletion_vectors)}")

    rows = 0
    for path in external.files:
        rows += PageFileReader(dw.store.get(path).data).num_rows
    print(f"external engine sees {rows} physical rows "
          "(minus DV-marked deletes, matching the warehouse)")

    internal = session.table_snapshot("readings")
    assert set(external.files) == {f.path for f in internal.files.values()}
    print("external file set == warehouse snapshot file set  ✓")

    # The shortcut that makes this zero-copy:
    shortcut = dw.store.get("published/lakehouse/readings/_shortcut.json")
    print(f"shortcut: {shortcut.data.decode()}")

    # -- bonus: what the FE compiled for a typical query --------------------------
    from repro import Aggregate, TableScan, and_
    plan = Aggregate(
        TableScan(
            "readings",
            ("sensor", "value"),
            predicate=and_(
                BinOp(">=", Col("sensor"), Lit(10)),
                BinOp("<", Col("sensor"), Lit(12)),
            ),
            prune=(("sensor", ">=", 10), ("sensor", "<", 12)),
        ),
        ("sensor",),
        {"avg_value": ("avg", Col("value"))},
    )
    print("\nEXPLAIN:")
    print(explain(plan))
    out = session.query(plan)
    for sensor, avg in zip(out["sensor"], out["avg_value"]):
        print(f"  sensor {sensor}: avg {avg:.3f}")


if __name__ == "__main__":
    main()
