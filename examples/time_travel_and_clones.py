"""Lineage features: Query As Of, zero-copy clones, backup and restore.

The scenario the paper's Section 6 motivates: an analyst fat-fingers a
DELETE against the orders table.  Because log-structured tables keep every
version within retention, recovery is a metadata operation:

1. *Query As Of* inspects the table as it was before the accident;
2. a *Clone As Of* materializes (zero-copy) the pre-accident state next to
   the live table for reconciliation;
3. a point-in-time *restore* puts the whole database back — in seconds,
   copying no data — and garbage collection later reclaims the orphans.

Run:  python examples/time_travel_and_clones.py
"""

import numpy as np

from repro import Aggregate, BinOp, Col, Lit, Schema, TableScan, Warehouse


def count_and_total(table: str):
    return Aggregate(
        TableScan(table, ("order_id", "amount")),
        (),
        {"orders": ("count", None), "total": ("sum", Col("amount"))},
    )


def main() -> None:
    dw = Warehouse(database="lineage-demo")
    session = dw.session()

    session.create_table(
        "orders",
        Schema.of(("order_id", "int64"), ("region", "string"), ("amount", "float64")),
        distribution_column="order_id",
    )
    rng = np.random.default_rng(1)
    n = 5_000
    session.insert(
        "orders",
        {
            "order_id": np.arange(n, dtype=np.int64),
            "region": np.array(
                [["emea", "amer", "apac"][i % 3] for i in range(n)], dtype=object
            ),
            "amount": np.round(rng.gamma(2.0, 150.0, n), 2),
        },
    )
    out = session.query(count_and_total("orders"))
    print(f"loaded: {out['orders'][0]} orders, total {out['total'][0]:,.2f}")
    backup = dw.backup()
    good_time = dw.clock.now

    # -- the accident: meant WHERE region = 'apac' AND amount < 10 ... ---------
    session.delete("orders", BinOp(">", Col("amount"), Lit(10.0)))
    out = session.query(count_and_total("orders"))
    print(f"after bad DELETE: {out['orders'][0]} orders left")

    # -- 1. Query As Of: look at the past without restoring ---------------------
    historic = session.query(count_and_total("orders"), as_of=good_time)
    print(f"query as of t={good_time:.1f}: {historic['orders'][0]} orders "
          "(history intact)")

    # -- 2. Clone As Of: materialize the good state, zero copy -------------------
    session.clone_table("orders", "orders_before_accident", as_of=good_time)
    cloned = session.query(count_and_total("orders_before_accident"))
    print(f"clone as of: {cloned['orders'][0]} orders, no data copied")

    # The clone is a real table: it can evolve independently.
    clone_session = dw.session()
    clone_session.delete(
        "orders_before_accident", BinOp("==", Col("region"), Lit("apac"))
    )
    print("clone edited independently; source untouched:",
          int(session.query(count_and_total("orders"))["orders"][0]), "orders")

    # -- 3. point-in-time restore -------------------------------------------------
    dw.restore(backup, as_of=good_time)
    restored = dw.session().query(count_and_total("orders"))
    print(f"after restore: {restored['orders'][0]} orders, "
          f"total {restored['total'][0]:,.2f}")

    # The accident's files are unreferenced now; GC reclaims them.
    report = dw.sto.run_gc()
    print(f"garbage collection removed {report.deleted_total} unreferenced files "
          f"({len(report.deleted_orphans)} orphans)")


if __name__ == "__main__":
    main()
