"""Concurrent ETL and reporting: the workload Fabric DW is designed for.

Reproduces the paper's headline operational story (Sections 4.3 and 7.2):

* a *reporting* stream runs aggregate queries continuously;
* an *ETL* stream bulk-loads and trickle-updates the same fact table;
* workload management isolates the two on separate compute pools, and
  Snapshot Isolation gives every report a consistent view — reads never
  block, and the ETL transaction stays invisible until it commits;
* file-granularity conflict detection (Section 4.4.1) lets two update
  jobs touching different data files commit concurrently;
* afterwards, the autonomous storage optimizer (STO) compacts the
  fragmentation the ETL left behind and checkpoints the manifest log.

Run:  python examples/etl_and_reporting.py
"""

import numpy as np

from repro import (
    Aggregate,
    BinOp,
    Col,
    Lit,
    PolarisConfig,
    Schema,
    TableScan,
    Warehouse,
)


def sales_report():
    return Aggregate(
        TableScan("sales", ("store", "amount")),
        ("store",),
        {"revenue": ("sum", Col("amount")), "n": ("count", None)},
    )


def main() -> None:
    config = PolarisConfig()
    config.txn.conflict_granularity = "file"  # Section 4.4.1
    config.sto.min_healthy_rows_per_file = 2_000
    dw = Warehouse(database="etl-demo", config=config)
    session = dw.session()

    session.create_table(
        "sales",
        Schema.of(("sale_id", "int64"), ("store", "string"), ("amount", "float64")),
        distribution_column="sale_id",
    )
    rng = np.random.default_rng(7)

    def batch(n, start):
        return {
            "sale_id": np.arange(start, start + n, dtype=np.int64),
            "store": np.array(
                [f"store-{i % 5}" for i in range(start, start + n)], dtype=object
            ),
            "amount": np.round(rng.gamma(2.0, 40.0, n), 2),
        }

    session.insert("sales", batch(20_000, 0))
    print(f"initial load done at t={dw.clock.now:.1f}s")

    # -- ETL transaction opens; reporting keeps running -------------------------
    etl = dw.session()
    etl.begin()
    etl.bulk_load("sales", [batch(5_000, 100_000 + i * 5_000) for i in range(4)])

    reporter = dw.session()
    before_commit = reporter.query(sales_report())
    print(f"report during open ETL txn: {before_commit['n'].sum()} rows visible "
          "(uncommitted load invisible)")

    etl.commit()
    after_commit = reporter.query(sales_report())
    print(f"report after ETL commit:    {after_commit['n'].sum()} rows visible")

    # -- two concurrent update jobs on different files both commit ----------------
    job_a, job_b = dw.session(), dw.session()
    job_a.begin()
    job_b.begin()
    job_a.update("sales", BinOp("==", Col("sale_id"), Lit(10)),
                 {"amount": Lit(0.0)})
    job_b.update("sales", BinOp("==", Col("sale_id"), Lit(11)),
                 {"amount": Lit(0.0)})
    job_a.commit()
    job_b.commit()  # different data files: no conflict at file granularity
    print("two concurrent single-row updates committed (file-granularity)")

    # -- fragmentation, then autonomous repair --------------------------------------
    for day in range(5):
        etl_day = dw.session()
        etl_day.delete(
            "sales",
            BinOp("<", Col("sale_id"), Lit((day + 1) * 2_000)),
            prune=[("sale_id", "<", (day + 1) * 2_000)],
        )
    snapshot = session.table_snapshot("sales")
    print(f"\nafter a week of ETL: {len(snapshot.files)} files, "
          f"{len(snapshot.dvs)} deletion vectors, {snapshot.live_rows} live rows")

    # Scans feed statistics to the STO; give its trigger a poll interval.
    reporter.query(sales_report())
    dw.clock.advance(config.sto.poll_interval_s + 1)
    dw.sto.tick()
    committed = [c for c in dw.sto.compactions if c.committed and c.files_rewritten]
    snapshot = session.table_snapshot("sales")
    print(f"autonomous compaction ran {len(committed)}x -> "
          f"{len(snapshot.files)} files, {len(snapshot.dvs)} deletion vectors")

    report = dw.sto.run_gc()
    print(f"gc: {report.deleted_total} files reclaimed "
          f"(retention keeps recent history for time travel)")
    final = reporter.query(sales_report())
    print("\nfinal revenue by store:")
    for store, revenue in sorted(zip(final["store"], final["revenue"])):
        print(f"  {store}: {revenue:,.2f}")


if __name__ == "__main__":
    main()
