"""Quickstart: create a warehouse, run transactions, see Snapshot Isolation.

Walks the basic API end to end:

1. create a table and insert data (auto-commit statements);
2. run queries through the vectorized engine;
3. use an explicit multi-statement transaction;
4. watch two concurrent transactions — one commits, the conflicting one
   rolls back (first-committer-wins, Section 4.1 of the paper).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Aggregate,
    BinOp,
    Col,
    Filter,
    Lit,
    Schema,
    Sort,
    TableScan,
    Warehouse,
    WriteConflictError,
)


def main() -> None:
    dw = Warehouse(database="quickstart")
    session = dw.session()

    # -- DDL + load ---------------------------------------------------------
    session.create_table(
        "trips",
        Schema.of(
            ("trip_id", "int64"),
            ("city", "string"),
            ("distance_km", "float64"),
            ("fare", "float64"),
        ),
        distribution_column="trip_id",
    )
    rng = np.random.default_rng(0)
    n = 10_000
    session.insert(
        "trips",
        {
            "trip_id": np.arange(n, dtype=np.int64),
            "city": np.array(
                [["seattle", "boston", "austin"][i % 3] for i in range(n)],
                dtype=object,
            ),
            "distance_km": np.round(rng.exponential(5.0, n), 2),
            "fare": np.round(2.5 + rng.exponential(12.0, n), 2),
        },
    )
    print(f"loaded {n} trips; simulated time {dw.clock.now:.2f}s")

    # -- query ----------------------------------------------------------------
    revenue_by_city = Sort(
        Aggregate(
            TableScan("trips", ("city", "fare")),
            ("city",),
            {"revenue": ("sum", Col("fare")), "trips": ("count", None)},
        ),
        (("revenue", False),),
    )
    out = session.query(revenue_by_city)
    print("\nrevenue by city:")
    for city, revenue, trips in zip(out["city"], out["revenue"], out["trips"]):
        print(f"  {city:8s} {revenue:12.2f}  ({trips} trips)")

    # -- explicit multi-statement transaction ------------------------------------
    session.begin()
    session.update(
        "trips",
        BinOp("==", Col("city"), Lit("austin")),
        {"fare": BinOp("*", Col("fare"), Lit(1.1))},  # 10% fare increase
    )
    deleted = session.delete("trips", BinOp("<", Col("distance_km"), Lit(0.5)))
    print(f"\nin-transaction: raised austin fares, deleted {deleted} micro-trips")
    session.commit()
    print("transaction committed")

    # -- concurrent transactions: first committer wins -----------------------------
    surviving = session.query(TableScan("trips", ("trip_id",)))["trip_id"]
    first_id, second_id = int(surviving[0]), int(surviving[1])
    alice, bob = dw.session(), dw.session()
    alice.begin()
    bob.begin()
    alice.delete("trips", BinOp("==", Col("trip_id"), Lit(first_id)))
    bob.delete("trips", BinOp("==", Col("trip_id"), Lit(second_id)))
    alice.commit()
    try:
        bob.commit()
    except WriteConflictError:
        print("\nbob's concurrent delete conflicted with alice's -> rolled back")
        print("(table-granularity conflicts; see examples/etl_and_reporting.py")
        print(" for file-granularity mode)")

    # -- reads never block ------------------------------------------------------------
    long_fares = session.query(
        Filter(
            TableScan("trips", ("trip_id", "distance_km", "fare")),
            BinOp(">", Col("distance_km"), Lit(40.0)),
        )
    )
    print(f"\n{len(long_fares['trip_id'])} trips longer than 40 km")
    print(f"total simulated time: {dw.clock.now:.2f}s")


if __name__ == "__main__":
    main()
