"""Immutable columnar file format (the reproduction's Parquet stand-in).

The paper stores table data in Parquet.  What the transaction machinery
actually requires of the format is:

* immutability — files are written once, then only referenced or logically
  removed by manifests;
* columnar layout with row groups, so scans can project columns and skip
  row groups via min/max statistics;
* a sidecar *deletion vector* format marking rows of a data file as deleted
  without rewriting it (merge-on-read, Section 2.1).

``pagefile`` implements exactly that: a footer-indexed binary format with
zlib-compressed column chunks, per-row-group zone maps, and a compressed
bitmap deletion-vector file.
"""

from repro.pagefile.deletion_vector import DeletionVector
from repro.pagefile.file_format import PageFile, write_page_file
from repro.pagefile.reader import PageFileReader
from repro.pagefile.schema import Field, Schema

__all__ = [
    "DeletionVector",
    "Field",
    "PageFile",
    "PageFileReader",
    "Schema",
    "write_page_file",
]
