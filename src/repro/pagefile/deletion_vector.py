"""Deletion vectors: compressed bitmaps of deleted row positions.

A deletion vector (DV) marks rows of one immutable data file as logically
deleted (merge-on-read, Section 2.1).  DV files are themselves immutable:
when a transaction deletes more rows from a file that already has a DV, it
writes a *merged* DV file and the manifest removes the old one and adds the
new one (the X2 example in Section 4.2).

The on-disk form is a zlib-compressed, delta-encoded ``uint32`` position
list — compact for both sparse and dense vectors at the scales we run.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Iterator

import numpy as np

from repro.common.errors import FileFormatError

_MAGIC = b"RDV1"


class DeletionVector:
    """An immutable, sorted set of deleted row positions."""

    __slots__ = ("_positions",)

    def __init__(self, positions: Iterable[int] = ()) -> None:
        arr = np.fromiter(positions, dtype=np.int64)
        if len(arr):
            arr = np.unique(arr)
            if arr[0] < 0:
                raise ValueError("row positions must be non-negative")
        self._positions = arr.astype(np.uint32)

    # -- queries -------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of deleted rows."""
        return len(self._positions)

    @property
    def positions(self) -> np.ndarray:
        """Sorted array of deleted positions (a copy)."""
        return self._positions.copy()

    def contains(self, position: int) -> bool:
        """Whether ``position`` is marked deleted."""
        idx = np.searchsorted(self._positions, position)
        return bool(idx < len(self._positions) and self._positions[idx] == position)

    def positions_in_range(self, start: int, stop: int) -> np.ndarray:
        """Deleted positions ``p`` with ``start <= p < stop``."""
        lo = np.searchsorted(self._positions, start, side="left")
        hi = np.searchsorted(self._positions, stop, side="left")
        return self._positions[lo:hi].astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(int(p) for p in self._positions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeletionVector):
            return NotImplemented
        return np.array_equal(self._positions, other._positions)

    def __repr__(self) -> str:
        return f"DeletionVector(cardinality={self.cardinality})"

    # -- algebra -------------------------------------------------------------

    def union(self, other: "DeletionVector") -> "DeletionVector":
        """Merged vector: rows deleted by either input.

        This is the merge the write path performs when a delete hits a file
        that already carries a DV.
        """
        merged = DeletionVector()
        merged._positions = np.union1d(self._positions, other._positions)
        return merged

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the immutable DV file format."""
        if len(self._positions):
            deltas = np.diff(self._positions.astype(np.int64), prepend=0)
            payload = zlib.compress(deltas.astype(np.uint32).tobytes(), 1)
        else:
            payload = zlib.compress(b"", 1)
        return _MAGIC + struct.pack("<I", len(self._positions)) + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "DeletionVector":
        """Parse DV file bytes."""
        if len(data) < 8 or data[:4] != _MAGIC:
            raise FileFormatError("not a deletion vector file (bad magic)")
        (count,) = struct.unpack_from("<I", data, 4)
        raw = zlib.decompress(data[8:])
        deltas = np.frombuffer(raw, dtype=np.uint32).astype(np.int64)
        if len(deltas) != count:
            raise FileFormatError(
                f"deletion vector: expected {count} positions, got {len(deltas)}"
            )
        dv = cls()
        dv._positions = np.cumsum(deltas).astype(np.uint32) if count else np.empty(
            0, dtype=np.uint32
        )
        return dv
