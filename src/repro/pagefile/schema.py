"""Logical schemas for columnar data.

Supported logical types and their in-memory representation:

=========  ==============================  =======================
type       numpy in-memory dtype           notes
=========  ==============================  =======================
int64      ``int64``                       also used for dates (epoch days)
float64    ``float64``
bool       ``bool``
string     ``object`` (Python ``str``)     dictionary-free UTF-8 on disk
=========  ==============================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.common.errors import SchemaMismatchError

_SUPPORTED_TYPES = ("int64", "float64", "bool", "string")

_NUMPY_DTYPES = {
    "int64": np.dtype(np.int64),
    "float64": np.dtype(np.float64),
    "bool": np.dtype(np.bool_),
    "string": np.dtype(object),
}


@dataclass(frozen=True)
class Field:
    """One named, typed column."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in _SUPPORTED_TYPES:
            raise SchemaMismatchError(
                f"unsupported type {self.type!r} for field {self.name!r}"
            )

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used for this field's in-memory arrays."""
        return _NUMPY_DTYPES[self.type]


class Schema:
    """An ordered collection of :class:`Field` objects."""

    def __init__(self, fields: List[Field]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaMismatchError(f"duplicate field names in {names}")
        self._fields = list(fields)
        self._by_name = {f.name: f for f in fields}

    @classmethod
    def of(cls, *pairs: Tuple[str, str]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls([Field(name, type_) for name, type_ in pairs])

    @property
    def fields(self) -> List[Field]:
        """The fields, in declaration order."""
        return list(self._fields)

    @property
    def names(self) -> List[str]:
        """The field names, in declaration order."""
        return [f.name for f in self._fields]

    def field(self, name: str) -> Field:
        """Look up a field by name; raises :class:`SchemaMismatchError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaMismatchError(f"no field named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.type}" for f in self._fields)
        return f"Schema({inner})"

    def to_dict(self) -> List[Dict[str, str]]:
        """JSON-serializable description of the schema."""
        return [{"name": f.name, "type": f.type} for f in self._fields]

    @classmethod
    def from_dict(cls, raw: List[Dict[str, str]]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        return cls([Field(item["name"], item["type"]) for item in raw])

    def validate_columns(self, columns: Dict[str, np.ndarray]) -> int:
        """Check a column dict against this schema; return the row count."""
        if set(columns) != set(self.names):
            raise SchemaMismatchError(
                f"columns {sorted(columns)} do not match schema {self.names}"
            )
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaMismatchError(f"ragged columns: {lengths}")
        return next(iter(lengths.values())) if lengths else 0
