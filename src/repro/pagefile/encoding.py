"""Column-chunk encoding: numpy arrays ⇄ compressed bytes.

Numeric and bool columns are encoded as their raw little-endian buffer;
string columns as a ``uint32`` offsets array plus concatenated UTF-8 bytes.
Every chunk is zlib-compressed (level 1 — fast, and the point is realistic
size accounting, not maximal ratio).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.common.errors import FileFormatError
from repro.pagefile.schema import Field

_COMPRESSION_LEVEL = 1


def encode_column(field: Field, values: np.ndarray) -> bytes:
    """Encode one column chunk to compressed bytes."""
    if field.type == "string":
        raw = _encode_strings(values)
    else:
        arr = np.ascontiguousarray(values, dtype=field.numpy_dtype)
        raw = arr.tobytes()
    return zlib.compress(raw, _COMPRESSION_LEVEL)


def decode_column(field: Field, payload: bytes, num_rows: int) -> np.ndarray:
    """Decode one column chunk back into a numpy array of ``num_rows``."""
    raw = zlib.decompress(payload)
    if field.type == "string":
        return _decode_strings(raw, num_rows)
    arr = np.frombuffer(raw, dtype=field.numpy_dtype).copy()
    if len(arr) != num_rows:
        raise FileFormatError(
            f"column {field.name!r}: expected {num_rows} rows, got {len(arr)}"
        )
    return arr


def _encode_strings(values: np.ndarray) -> bytes:
    encoded = [str(v).encode("utf-8") for v in values]
    offsets = np.zeros(len(encoded) + 1, dtype=np.uint32)
    np.cumsum([len(b) for b in encoded], out=offsets[1:])
    data = b"".join(encoded)
    return struct.pack("<I", len(encoded)) + offsets.tobytes() + data


def _decode_strings(raw: bytes, num_rows: int) -> np.ndarray:
    (count,) = struct.unpack_from("<I", raw, 0)
    if count != num_rows:
        raise FileFormatError(f"string column: expected {num_rows} rows, got {count}")
    offsets_end = 4 + (count + 1) * 4
    offsets = np.frombuffer(raw[4:offsets_end], dtype=np.uint32)
    data = raw[offsets_end:]
    out = np.empty(count, dtype=object)
    for i in range(count):
        out[i] = data[offsets[i] : offsets[i + 1]].decode("utf-8")
    return out
