"""The binary layout of a page file.

Layout (all little-endian)::

    +--------------------------------------+
    | magic "RPF1" (4 bytes)               |
    | row group 0: column chunks, in order |
    | row group 1: ...                     |
    | footer: JSON metadata (schema, row   |
    |   groups, chunk offsets, stats)      |
    | footer length (uint32)               |
    | magic "RPF1" (4 bytes)               |
    +--------------------------------------+

Readers fetch the footer first (by slicing from the end), then fetch only
the chunks they need — mirroring how engines read Parquet from object
stores.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.common.errors import FileFormatError
from repro.pagefile.encoding import encode_column
from repro.pagefile.schema import Schema
from repro.pagefile.stats import ColumnStats, compute_stats

MAGIC = b"RPF1"
DEFAULT_ROW_GROUP_SIZE = 65_536


@dataclass
class ChunkMeta:
    """Location and statistics of one column chunk inside the file."""

    offset: int
    length: int
    stats: ColumnStats

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (footer metadata)."""
        return {"offset": self.offset, "length": self.length, "stats": self.stats.to_dict()}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ChunkMeta":
        """Inverse of :meth:`to_dict`."""
        return cls(
            offset=raw["offset"],
            length=raw["length"],
            stats=ColumnStats.from_dict(raw["stats"]),
        )


@dataclass
class RowGroupMeta:
    """Row count and per-column chunks of one row group."""

    num_rows: int
    chunks: Dict[str, ChunkMeta] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (footer metadata)."""
        return {
            "num_rows": self.num_rows,
            "chunks": {name: chunk.to_dict() for name, chunk in self.chunks.items()},
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RowGroupMeta":
        """Inverse of :meth:`to_dict`."""
        return cls(
            num_rows=raw["num_rows"],
            chunks={
                name: ChunkMeta.from_dict(chunk)
                for name, chunk in raw["chunks"].items()
            },
        )


@dataclass
class PageFile:
    """Parsed footer of a page file: everything needed to plan reads."""

    schema: Schema
    num_rows: int
    row_groups: List[RowGroupMeta]

    def to_footer_dict(self) -> Dict[str, Any]:
        """JSON-serializable footer contents."""
        return {
            "schema": self.schema.to_dict(),
            "num_rows": self.num_rows,
            "row_groups": [rg.to_dict() for rg in self.row_groups],
        }

    @classmethod
    def from_footer_dict(cls, raw: Dict[str, Any]) -> "PageFile":
        """Inverse of :meth:`to_footer_dict`."""
        return cls(
            schema=Schema.from_dict(raw["schema"]),
            num_rows=raw["num_rows"],
            row_groups=[RowGroupMeta.from_dict(rg) for rg in raw["row_groups"]],
        )


def write_page_file(
    schema: Schema,
    columns: Dict[str, np.ndarray],
    row_group_size: int = DEFAULT_ROW_GROUP_SIZE,
) -> bytes:
    """Serialize a column dict into page-file bytes."""
    num_rows = schema.validate_columns(columns)
    if row_group_size <= 0:
        raise ValueError("row_group_size must be positive")
    body = bytearray(MAGIC)
    row_groups: List[RowGroupMeta] = []
    starts = range(0, num_rows, row_group_size) if num_rows else [0]
    for start in starts:
        stop = min(start + row_group_size, num_rows)
        group = RowGroupMeta(num_rows=stop - start)
        for fld in schema:
            values = columns[fld.name][start:stop]
            payload = encode_column(fld, values)
            group.chunks[fld.name] = ChunkMeta(
                offset=len(body),
                length=len(payload),
                stats=compute_stats(fld, values),
            )
            body.extend(payload)
        row_groups.append(group)
    footer = json.dumps(
        PageFile(schema=schema, num_rows=num_rows, row_groups=row_groups).to_footer_dict()
    ).encode("utf-8")
    body.extend(footer)
    body.extend(struct.pack("<I", len(footer)))
    body.extend(MAGIC)
    return bytes(body)


def read_footer(data: bytes, source: "str | None" = None) -> PageFile:
    """Parse the footer of page-file bytes into a :class:`PageFile`.

    ``source`` (the blob path, when the caller knows it) is woven into
    error messages so corrupt-file reports are self-describing — a
    scrubber or quarantine log names the exact blob, not just "a file".
    """
    origin = f"{source}: " if source else ""
    if len(data) < 12 or data[:4] != MAGIC or data[-4:] != MAGIC:
        head = bytes(data[:4])
        tail = bytes(data[-4:]) if len(data) >= 4 else b""
        raise FileFormatError(
            f"{origin}not a page file (bad magic: expected {MAGIC!r} at both "
            f"ends, got head {head!r} / tail {tail!r} over {len(data)} bytes)"
        )
    (footer_len,) = struct.unpack_from("<I", data, len(data) - 8)
    footer_start = len(data) - 8 - footer_len
    if footer_start < 4:
        raise FileFormatError(
            f"{origin}corrupt page file footer (footer length {footer_len} "
            f"exceeds file size {len(data)})"
        )
    raw = json.loads(data[footer_start : footer_start + footer_len].decode("utf-8"))
    return PageFile.from_footer_dict(raw)
