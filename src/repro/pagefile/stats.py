"""Per-row-group column statistics (zone maps).

Each row group records min/max per column.  The scan path uses them to
skip row groups that cannot satisfy a predicate — the reproduction's
analogue of the Z-order/zone-map pruning the paper relies on for
range-based retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.pagefile.schema import Field


@dataclass(frozen=True)
class ColumnStats:
    """Min/max statistics for one column within one row group."""

    minimum: Any
    maximum: Any

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {"min": self.minimum, "max": self.maximum}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ColumnStats":
        """Inverse of :meth:`to_dict`."""
        return cls(minimum=raw["min"], maximum=raw["max"])

    def may_contain(self, op: str, literal: Any) -> bool:
        """Whether rows matching ``column <op> literal`` can exist here.

        Conservative: returns True whenever pruning is not provably safe.
        """
        if self.minimum is None or self.maximum is None:
            return True
        if op == "==":
            return self.minimum <= literal <= self.maximum
        if op == "<":
            return self.minimum < literal
        if op == "<=":
            return self.minimum <= literal
        if op == ">":
            return self.maximum > literal
        if op == ">=":
            return self.maximum >= literal
        return True


def compute_stats(field: Field, values: np.ndarray) -> ColumnStats:
    """Compute min/max for a column chunk (None for empty chunks)."""
    if len(values) == 0:
        return ColumnStats(minimum=None, maximum=None)
    if field.type == "string":
        ordered = sorted(str(v) for v in values)
        return ColumnStats(minimum=ordered[0], maximum=ordered[-1])
    minimum = values.min()
    maximum = values.max()
    if field.type == "float64":
        return ColumnStats(minimum=float(minimum), maximum=float(maximum))
    if field.type == "bool":
        return ColumnStats(minimum=bool(minimum), maximum=bool(maximum))
    return ColumnStats(minimum=int(minimum), maximum=int(maximum))
