"""Reading page files, with projection, zone-map pruning and DV merging."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.pagefile.deletion_vector import DeletionVector
from repro.pagefile.encoding import decode_column
from repro.pagefile.file_format import PageFile, read_footer


class PageFileReader:
    """Reads columns out of one page file's bytes.

    ``prune`` predicates are ``(column, op, literal)`` triples checked
    against row-group zone maps; a row group is skipped only when the
    statistics prove no row can match.
    """

    def __init__(self, data: bytes, source: Optional[str] = None) -> None:
        self._data = data
        self._meta = read_footer(data, source=source)

    @property
    def meta(self) -> PageFile:
        """The parsed footer."""
        return self._meta

    @property
    def num_rows(self) -> int:
        """Physical row count (before deletion-vector filtering)."""
        return self._meta.num_rows

    def read(
        self,
        columns: Optional[List[str]] = None,
        prune: Optional[List[Tuple[str, str, Any]]] = None,
        deletion_vector: Optional[DeletionVector] = None,
        with_positions: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Materialize the requested columns.

        Rows marked deleted in ``deletion_vector`` are filtered out
        (merge-on-read).  With ``with_positions`` the result additionally
        carries a ``__pos__`` column of physical row positions, which the
        delete/update path uses to build new deletion vectors.
        """
        wanted = list(columns) if columns is not None else self._meta.schema.names
        parts: Dict[str, List[np.ndarray]] = {name: [] for name in wanted}
        position_parts: List[np.ndarray] = []
        row_start = 0
        for group in self._meta.row_groups:
            group_rows = group.num_rows
            if self._skip_group(group, prune):
                row_start += group_rows
                continue
            keep = self._keep_mask(deletion_vector, row_start, group_rows)
            if keep is not None and not keep.any():
                row_start += group_rows
                continue
            for name in wanted:
                chunk = group.chunks[name]
                fld = self._meta.schema.field(name)
                values = decode_column(
                    fld,
                    self._data[chunk.offset : chunk.offset + chunk.length],
                    group_rows,
                )
                parts[name].append(values[keep] if keep is not None else values)
            if with_positions:
                positions = np.arange(row_start, row_start + group_rows, dtype=np.int64)
                position_parts.append(positions[keep] if keep is not None else positions)
            row_start += group_rows
        result = {
            name: _concat(self._meta.schema.field(name).numpy_dtype, chunks)
            for name, chunks in parts.items()
        }
        if with_positions:
            result["__pos__"] = _concat(np.dtype(np.int64), position_parts)
        return result

    def prune_counts(
        self, prune: Optional[List[Tuple[str, str, Any]]]
    ) -> Tuple[int, int]:
        """``(scanned, pruned)`` row-group counts for a prune predicate.

        Used by EXPLAIN ANALYZE to report zone-map effectiveness without
        altering the read itself.
        """
        if not prune:
            return len(self._meta.row_groups), 0
        pruned = sum(
            1 for group in self._meta.row_groups if self._skip_group(group, prune)
        )
        return len(self._meta.row_groups) - pruned, pruned

    def live_row_count(self, deletion_vector: Optional[DeletionVector]) -> int:
        """Row count after subtracting deleted rows."""
        if deletion_vector is None:
            return self._meta.num_rows
        return self._meta.num_rows - deletion_vector.cardinality

    def _skip_group(
        self,
        group: "RowGroupMeta",
        prune: Optional[List[Tuple[str, str, Any]]],
    ) -> bool:
        if not prune:
            return False
        for column, op, literal in prune:
            chunk = group.chunks.get(column)
            if chunk is not None and not chunk.stats.may_contain(op, literal):
                return True
        return False

    @staticmethod
    def _keep_mask(
        deletion_vector: Optional[DeletionVector], row_start: int, group_rows: int
    ) -> Optional[np.ndarray]:
        if deletion_vector is None or deletion_vector.cardinality == 0:
            return None
        deleted = deletion_vector.positions_in_range(row_start, row_start + group_rows)
        if len(deleted) == 0:
            return None
        mask = np.ones(group_rows, dtype=bool)
        mask[deleted - row_start] = False
        return mask


def _concat(dtype: np.dtype, chunks: List[np.ndarray]) -> np.ndarray:
    if not chunks:
        return np.empty(0, dtype=dtype)
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks)
