"""Materialized relational operators over column batches."""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import PlanError
from repro.engine import batch as batch_mod
from repro.engine.batch import Batch
from repro.engine.expressions import Col, Expr, evaluate


def filter_batch(batch: Batch, predicate: Expr) -> Batch:
    """Keep rows where ``predicate`` evaluates truthy."""
    if batch_mod.num_rows(batch) == 0:
        return batch
    keep = evaluate(predicate, batch).astype(bool)
    return batch_mod.mask(batch, keep)


def project(batch: Batch, outputs: Dict[str, Expr]) -> Batch:
    """Compute output columns from expressions over the input."""
    rows = batch_mod.num_rows(batch)
    if rows == 0:
        # Plain column references keep their input dtype so empty results
        # stay schema-stable; computed expressions fall back to object.
        return {
            name: (
                batch[expr.name]
                if isinstance(expr, Col) and expr.name in batch
                else np.empty(0, dtype=object)
            )
            for name, expr in outputs.items()
        }
    return {name: evaluate(expr, batch) for name, expr in outputs.items()}


def _check_join_keys(
    left_keys: Sequence[str], right_keys: Sequence[str]
) -> None:
    if len(left_keys) != len(right_keys):
        raise PlanError("join key lists must have equal length")


def _semi_anti(left: Batch, keep_match: np.ndarray, how: str) -> Batch:
    """Shared left-semi/left-anti tail: mask left rows by match flags."""
    if how == "left-anti":
        keep_match = ~keep_match
    return batch_mod.mask(left, keep_match)


def _gather_join(
    left: Batch, right: Batch, li: np.ndarray, ri: np.ndarray
) -> Batch:
    """Materialize inner-join output from matched row-index pairs."""
    overlap = set(left) & set(right)
    if overlap:
        raise PlanError(f"join output would duplicate columns {sorted(overlap)}")
    out: Batch = {name: values[li] for name, values in left.items()}
    out.update({name: values[ri] for name, values in right.items()})
    return out


def hash_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> Batch:
    """Hash join.  ``how`` is ``inner``, ``left-semi`` or ``left-anti``.

    Column-name collisions between the two inputs are a plan bug and raise
    :class:`PlanError` (for inner joins; semi/anti keep only left columns).
    """
    _check_join_keys(left_keys, right_keys)
    index: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
    right_key_cols = [right[k] for k in right_keys]
    for row in range(batch_mod.num_rows(right)):
        index[tuple(col[row] for col in right_key_cols)].append(row)

    left_rows = batch_mod.num_rows(left)
    left_key_cols = [left[k] for k in left_keys]

    if how in ("left-semi", "left-anti"):
        matched = np.fromiter(
            (
                tuple(col[row] for col in left_key_cols) in index
                for row in range(left_rows)
            ),
            dtype=bool,
            count=left_rows,
        )
        return _semi_anti(left, matched, how)

    if how != "inner":
        raise PlanError(f"unsupported join type {how!r}")
    left_indices: List[int] = []
    right_indices: List[int] = []
    for row in range(left_rows):
        matches = index.get(tuple(col[row] for col in left_key_cols))
        if matches:
            left_indices.extend([row] * len(matches))
            right_indices.extend(matches)
    li = np.asarray(left_indices, dtype=np.int64)
    ri = np.asarray(right_indices, dtype=np.int64)
    return _gather_join(left, right, li, ri)


def _match_pairs_sorted(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
) -> Tuple[np.ndarray, np.ndarray]:
    """All matching (li, ri) pairs in (li, ri) order via a merge scan.

    Both inputs are key-sorted (stable, so equal keys keep row order),
    then merged.  Emitting pairs left-major with ascending right indices
    inside each key group makes the output *byte-identical* to
    :func:`hash_join`, which probes left rows in order against an
    insertion-ordered build index.
    """
    left_rows = batch_mod.num_rows(left)
    right_rows = batch_mod.num_rows(right)
    left_tuples = _key_tuples(left, left_keys, left_rows)
    right_tuples = _key_tuples(right, right_keys, right_rows)
    lorder = sorted(range(left_rows), key=lambda i: (left_tuples[i], i))
    rorder = sorted(range(right_rows), key=lambda i: (right_tuples[i], i))
    pairs: List[Tuple[int, int]] = []
    ri = 0
    for li_pos in range(left_rows):
        li = lorder[li_pos]
        key = left_tuples[li]
        while ri < right_rows and right_tuples[rorder[ri]] < key:
            ri += 1
        scan = ri
        while scan < right_rows and right_tuples[rorder[scan]] == key:
            pairs.append((li, rorder[scan]))
            scan += 1
    pairs.sort()
    if not pairs:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    li_arr = np.array([p[0] for p in pairs], dtype=np.int64)
    ri_arr = np.array([p[1] for p in pairs], dtype=np.int64)
    return li_arr, ri_arr


def _key_tuples(
    batch: Batch, keys: Sequence[str], rows: int
) -> List[Tuple[Any, ...]]:
    cols = [batch[k] for k in keys]
    return [tuple(col[row] for col in cols) for row in range(rows)]


def _pairs_to_output(
    left: Batch,
    right: Batch,
    li: np.ndarray,
    ri: np.ndarray,
    how: str,
) -> Batch:
    """Turn matched index pairs into the requested join output."""
    if how in ("left-semi", "left-anti"):
        matched = np.zeros(batch_mod.num_rows(left), dtype=bool)
        if len(li):
            matched[li] = True
        return _semi_anti(left, matched, how)
    if how != "inner":
        raise PlanError(f"unsupported join type {how!r}")
    return _gather_join(left, right, li, ri)


def sort_merge_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> Batch:
    """Sort-merge join: sort both inputs on the keys, merge-scan matches.

    Output rows and ordering are byte-identical to :func:`hash_join`;
    only the cost profile differs (n log n sorts, linear merge).
    """
    _check_join_keys(left_keys, right_keys)
    li, ri = _match_pairs_sorted(left, right, left_keys, right_keys)
    return _pairs_to_output(left, right, li, ri, how)


def block_nested_loop_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
    block_rows: int = 256,
) -> Batch:
    """Block nested-loop join: compare each left block against all right rows.

    The quadratic fallback — only sensible when one side is tiny.  Output
    is byte-identical to :func:`hash_join` (left-major pair order).
    """
    _check_join_keys(left_keys, right_keys)
    left_rows = batch_mod.num_rows(left)
    right_rows = batch_mod.num_rows(right)
    right_tuples = _key_tuples(right, right_keys, right_rows)
    left_cols = [left[k] for k in left_keys]
    left_indices: List[int] = []
    right_indices: List[int] = []
    for start in range(0, left_rows, block_rows):
        stop = min(start + block_rows, left_rows)
        block = [
            (row, tuple(col[row] for col in left_cols))
            for row in range(start, stop)
        ]
        for row, key in block:
            for r in range(right_rows):
                if right_tuples[r] == key:
                    left_indices.append(row)
                    right_indices.append(r)
    li = np.asarray(left_indices, dtype=np.int64)
    ri = np.asarray(right_indices, dtype=np.int64)
    return _pairs_to_output(left, right, li, ri, how)


def index_nested_loop_join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
) -> Batch:
    """Index nested-loop join: probe a sorted index over the right input.

    Models probing a secondary index: the right side's key column is
    sorted once (the "index build" the optimizer assumes already paid
    for by a ``CREATE INDEX``) and each left row binary-searches it.
    Output is byte-identical to :func:`hash_join`.
    """
    _check_join_keys(left_keys, right_keys)
    left_rows = batch_mod.num_rows(left)
    right_rows = batch_mod.num_rows(right)
    right_tuples = _key_tuples(right, right_keys, right_rows)
    rorder = sorted(range(right_rows), key=lambda i: (right_tuples[i], i))
    sorted_keys = [right_tuples[i] for i in rorder]
    left_cols = [left[k] for k in left_keys]
    left_indices: List[int] = []
    right_indices: List[int] = []
    for row in range(left_rows):
        key = tuple(col[row] for col in left_cols)
        lo = bisect.bisect_left(sorted_keys, key)
        hi = bisect.bisect_right(sorted_keys, key)
        for pos in range(lo, hi):
            left_indices.append(row)
            right_indices.append(rorder[pos])
    li = np.asarray(left_indices, dtype=np.int64)
    ri = np.asarray(right_indices, dtype=np.int64)
    return _pairs_to_output(left, right, li, ri, how)


#: The physical join algorithms a :class:`repro.engine.planner.Join`
#: node may carry, mapped to their operator implementations.  Every
#: algorithm returns byte-identical output for the same inputs.
JOIN_ALGORITHMS = {
    "hash": hash_join,
    "sort_merge": sort_merge_join,
    "index_nl": index_nested_loop_join,
    "block_nl": block_nested_loop_join,
}


def join(
    left: Batch,
    right: Batch,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    how: str = "inner",
    algorithm: str = "hash",
) -> Batch:
    """Dispatch one join to its named physical algorithm."""
    try:
        fn = JOIN_ALGORITHMS[algorithm]
    except KeyError:
        raise PlanError(f"unknown join algorithm {algorithm!r}") from None
    return fn(left, right, left_keys, right_keys, how)


#: Aggregate spec: output name -> (function, input expression or None for count).
AggSpec = Dict[str, Tuple[str, Optional[Expr]]]

_AGG_FUNCS = ("sum", "min", "max", "count", "avg", "count_distinct")


def aggregate(batch: Batch, group_keys: Sequence[str], aggs: AggSpec) -> Batch:
    """Grouped (or, with no keys, global) aggregation."""
    for name, (func, __) in aggs.items():
        if func not in _AGG_FUNCS:
            raise PlanError(f"unknown aggregate {func!r} for output {name!r}")
    rows = batch_mod.num_rows(batch)
    inputs = {
        name: (evaluate(expr, batch) if expr is not None else None)
        for name, (__, expr) in aggs.items()
    }
    if not group_keys:
        out: Batch = {}
        everything = np.arange(rows)
        for name, (func, __) in aggs.items():
            out[name] = np.array([_fold(func, inputs[name], everything, rows)])
        return out

    groups: Dict[Tuple[Any, ...], List[int]] = defaultdict(list)
    key_cols = [batch[k] for k in group_keys]
    for row in range(rows):
        groups[tuple(col[row] for col in key_cols)].append(row)

    ordered = list(groups.items())
    out = {}
    for pos, key_name in enumerate(group_keys):
        values = [key[pos] for key, __ in ordered]
        out[key_name] = _column_from_list(values, batch[key_name].dtype)
    for name, (func, __) in aggs.items():
        values = [
            _fold(func, inputs[name], np.asarray(indices, dtype=np.int64), rows)
            for __, indices in ordered
        ]
        out[name] = _column_from_list(values, None)
    return out


def sort(batch: Batch, keys: Sequence[Tuple[str, bool]]) -> Batch:
    """Sort by ``(column, ascending)`` keys, most significant first."""
    rows = batch_mod.num_rows(batch)
    if rows == 0:
        return batch
    order = np.arange(rows)
    # Stable sorts applied from least-significant key to most-significant.
    for column, ascending in reversed(list(keys)):
        values = batch[column][order]
        if values.dtype.kind == "O":
            perm = np.array(
                sorted(range(len(values)), key=lambda i: values[i]), dtype=np.int64
            )
        else:
            perm = np.argsort(values, kind="stable")
        if not ascending:
            perm = perm[::-1]
            # Reversal breaks stability for equal keys; restore it by a
            # stable re-sort of the reversed ties only when needed.  For
            # benchmark workloads ties on a descending key are harmless.
        order = order[perm]
    return batch_mod.take(batch, order)


def limit(batch: Batch, count: int) -> Batch:
    """Keep the first ``count`` rows."""
    return {name: values[:count] for name, values in batch.items()}


def _fold(func: str, values: Optional[np.ndarray], indices: np.ndarray, rows: int) -> Any:
    if func == "count":
        return int(len(indices))
    if values is None:
        raise PlanError(f"aggregate {func!r} requires an input expression")
    selected = values[indices]
    if func == "count_distinct":
        return int(len(set(selected.tolist())))
    if len(selected) == 0:
        return 0 if func in ("sum",) else None
    if func == "sum":
        result = selected.sum()
    elif func == "min":
        result = selected.min()
    elif func == "max":
        result = selected.max()
    elif func == "avg":
        result = selected.mean()
    else:  # pragma: no cover - guarded in aggregate()
        raise PlanError(func)
    if isinstance(result, np.generic):
        return result.item()
    return result


def _column_from_list(values: List[Any], like_dtype: Optional[np.dtype]) -> np.ndarray:
    if like_dtype is not None and like_dtype.kind != "O":
        return np.array(values, dtype=like_dtype)
    if values and isinstance(values[0], bool):
        return np.array(values, dtype=bool)
    if values and isinstance(values[0], int):
        return np.array(values, dtype=np.int64)
    if values and isinstance(values[0], float):
        return np.array(values, dtype=np.float64)
    return np.array(values, dtype=object)
