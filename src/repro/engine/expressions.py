"""Expression trees and their vectorized evaluation.

The vocabulary covers what the TPC-H and LST-Bench workloads need:
column references, literals, arithmetic, comparisons, boolean connectives,
``LIKE`` patterns, ``IN`` lists and ``CASE WHEN``.  Dates are represented
as int64 epoch days throughout the engine, so date arithmetic and
comparisons are plain integer operations.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import PlanError
from repro.engine.batch import Batch


@dataclass(frozen=True)
class Col:
    """Reference to a column of the input batch."""

    name: str


@dataclass(frozen=True)
class Lit:
    """A literal constant."""

    value: Any


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic or comparison: ``left <op> right``."""

    op: str  # + - * / == != < <= > >=
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class BoolOp:
    """N-ary boolean connective over predicate children."""

    op: str  # "and" | "or"
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class Not:
    """Boolean negation."""

    arg: "Expr"


@dataclass(frozen=True)
class Like:
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards over a string column."""

    arg: "Expr"
    pattern: str


@dataclass(frozen=True)
class InList:
    """SQL ``IN`` against a literal list."""

    arg: "Expr"
    values: Tuple[Any, ...]


@dataclass(frozen=True)
class Case:
    """``CASE WHEN cond THEN then ELSE orelse END``."""

    cond: "Expr"
    then: "Expr"
    orelse: "Expr"


@dataclass(frozen=True)
class Year:
    """Extract the calendar year from an ordinal-days date column."""

    arg: "Expr"


@dataclass(frozen=True)
class Substr:
    """SQL ``SUBSTRING(arg, start, length)`` (1-based start) over strings."""

    arg: "Expr"
    start: int
    length: int


Expr = Union[Col, Lit, BinOp, BoolOp, Not, Like, InList, Case, Year, Substr]


def and_(*args: Expr) -> Expr:
    """Convenience n-ary AND."""
    return BoolOp("and", tuple(args))


def or_(*args: Expr) -> Expr:
    """Convenience n-ary OR."""
    return BoolOp("or", tuple(args))


def evaluate(expr: Expr, batch: Batch) -> np.ndarray:
    """Evaluate an expression over a batch, returning a column array."""
    rows = _batch_rows(batch)
    return _eval(expr, batch, rows)


def _batch_rows(batch: Batch) -> int:
    for values in batch.values():
        return len(values)
    return 0


def _eval(expr: Expr, batch: Batch, rows: int) -> np.ndarray:
    if isinstance(expr, Col):
        try:
            return batch[expr.name]
        except KeyError:
            raise PlanError(
                f"unknown column {expr.name!r}; have {sorted(batch)}"
            ) from None
    if isinstance(expr, Lit):
        return _broadcast(expr.value, rows)
    if isinstance(expr, BinOp):
        left = _eval(expr.left, batch, rows)
        right = _eval(expr.right, batch, rows)
        return _binop(expr.op, left, right)
    if isinstance(expr, BoolOp):
        parts = [_as_bool(_eval(arg, batch, rows)) for arg in expr.args]
        out = parts[0]
        for part in parts[1:]:
            out = (out & part) if expr.op == "and" else (out | part)
        return out
    if isinstance(expr, Not):
        return ~_as_bool(_eval(expr.arg, batch, rows))
    if isinstance(expr, Like):
        values = _eval(expr.arg, batch, rows)
        regex = _like_regex(expr.pattern)
        return np.fromiter(
            (regex.fullmatch(str(v)) is not None for v in values),
            dtype=bool,
            count=len(values),
        )
    if isinstance(expr, InList):
        values = _eval(expr.arg, batch, rows)
        allowed = set(expr.values)
        if values.dtype.kind in ("i", "u", "f", "b"):
            return np.isin(values, list(allowed))
        return np.fromiter(
            (v in allowed for v in values), dtype=bool, count=len(values)
        )
    if isinstance(expr, Case):
        cond = _as_bool(_eval(expr.cond, batch, rows))
        then = _eval(expr.then, batch, rows)
        orelse = _eval(expr.orelse, batch, rows)
        return np.where(cond, then, orelse)
    if isinstance(expr, Year):
        days = _eval(expr.arg, batch, rows)
        return np.fromiter(
            (datetime.date.fromordinal(int(d)).year for d in days),
            dtype=np.int64,
            count=len(days),
        )
    if isinstance(expr, Substr):
        values = _eval(expr.arg, batch, rows)
        lo = expr.start - 1
        hi = lo + expr.length
        out = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            out[i] = str(v)[lo:hi]
        return out
    raise PlanError(f"unknown expression node {expr!r}")


def _broadcast(value: Any, rows: int) -> np.ndarray:
    if isinstance(value, bool):
        return np.full(rows, value, dtype=bool)
    if isinstance(value, int):
        return np.full(rows, value, dtype=np.int64)
    if isinstance(value, float):
        return np.full(rows, value, dtype=np.float64)
    return np.full(rows, value, dtype=object)


_COMPARISONS = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ARITHMETIC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


def _binop(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if op in _ARITHMETIC:
        return _ARITHMETIC[op](left, right)
    if op in _COMPARISONS:
        if left.dtype.kind == "O" or right.dtype.kind == "O":
            # Object (string) comparison: numpy ufuncs on object arrays
            # fall back to Python semantics anyway; make it explicit.
            pairs = zip(left, right)
            py_op = {
                "==": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }[op]
            return np.fromiter(
                (py_op(a, b) for a, b in pairs), dtype=bool, count=len(left)
            )
        return _COMPARISONS[op](left, right)
    raise PlanError(f"unknown binary operator {op!r}")


def _as_bool(values: np.ndarray) -> np.ndarray:
    if values.dtype == bool:
        return values
    return values.astype(bool)


def _like_regex(pattern: str) -> "re.Pattern[str]":
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.compile(regex, re.DOTALL)
