"""Logical query plans.

Plans are small immutable trees built programmatically; the FE compiles
them once (Section 3.3's single-phase compilation) and the executor in
:mod:`repro.engine.executor` evaluates them over batches supplied by the
read path.  Scan nodes carry an optional pushed-down predicate of
``(column, op, literal)`` conjuncts used for row-group pruning at the
storage layer, in addition to the full residual predicate tree.

The :class:`Join` node is *physical* as well as logical: it names the
join algorithm the executor must run (``hash`` by default; the
cost-based optimizer in :mod:`repro.optimizer` may rewrite it to
``sort_merge``, ``index_nl`` or ``block_nl``).  Every algorithm
produces byte-identical output, so the choice only affects cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.common.errors import PlanError
from repro.engine.expressions import Expr
from repro.engine.operators import JOIN_ALGORITHMS, AggSpec


@dataclass(frozen=True)
class TableScan:
    """Scan a base table (with projection and pushdown)."""

    table: str
    columns: Tuple[str, ...]
    #: Residual predicate evaluated on scanned rows (may be None).
    predicate: Optional[Expr] = None
    #: Simple conjuncts for zone-map pruning: (column, op, literal).
    prune: Tuple[Tuple[str, str, Any], ...] = ()


@dataclass(frozen=True)
class Filter:
    """Row filter."""

    child: "Plan"
    predicate: Expr


@dataclass(frozen=True)
class Project:
    """Column projection/computation.  ``outputs`` maps name → expression."""

    child: "Plan"
    outputs: Dict[str, Expr]


@dataclass(frozen=True)
class Join:
    """Equi-join of two subplans under a named physical algorithm.

    ``algorithm`` is one of :data:`repro.engine.operators.JOIN_ALGORITHMS`
    (``hash``, ``sort_merge``, ``index_nl``, ``block_nl``).  All produce
    the same rows in the same order; the optimizer picks the cheapest.
    """

    left: "Plan"
    right: "Plan"
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    how: str = "inner"
    algorithm: str = "hash"

    def __post_init__(self) -> None:
        if self.algorithm not in JOIN_ALGORITHMS:
            raise PlanError(f"unknown join algorithm {self.algorithm!r}")


@dataclass(frozen=True)
class Aggregate:
    """Grouped aggregation."""

    child: "Plan"
    group_keys: Tuple[str, ...]
    aggs: AggSpec


@dataclass(frozen=True)
class Sort:
    """Order by ``(column, ascending)`` keys."""

    child: "Plan"
    keys: Tuple[Tuple[str, bool], ...]


@dataclass(frozen=True)
class Limit:
    """Top-N."""

    child: "Plan"
    count: int


Plan = Union[TableScan, Filter, Project, Join, Aggregate, Sort, Limit]

#: Plan nodes with exactly one ``child`` subplan.
_UNARY_NODES = (Filter, Project, Aggregate, Sort, Limit)


def scans_of(plan: Plan) -> List[TableScan]:
    """All TableScan leaves of a plan, left-to-right.

    Raises :class:`PlanError` on an unknown node type instead of
    guessing a traversal — misattributing a scan would silently corrupt
    cardinality estimates and snapshot resolution downstream.
    """
    if isinstance(plan, TableScan):
        return [plan]
    if isinstance(plan, Join):
        return scans_of(plan.left) + scans_of(plan.right)
    if isinstance(plan, _UNARY_NODES):
        return scans_of(plan.child)
    raise PlanError(f"unknown plan node {plan!r}")


def tables_of(plan: Plan) -> List[str]:
    """Distinct base tables referenced, in first-occurrence order.

    Inherits the loud-failure behavior of :func:`scans_of` for unknown
    plan node types.
    """
    tables: List[str] = []
    for scan in scans_of(plan):
        if scan.table not in tables:
            tables.append(scan.table)
    return tables
