"""Logical query plans.

Plans are small immutable trees built programmatically; the FE compiles
them once (Section 3.3's single-phase compilation) and the executor in
:mod:`repro.engine.executor` evaluates them over batches supplied by the
read path.  Scan nodes carry an optional pushed-down predicate of
``(column, op, literal)`` conjuncts used for row-group pruning at the
storage layer, in addition to the full residual predicate tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.expressions import Expr
from repro.engine.operators import AggSpec


@dataclass(frozen=True)
class TableScan:
    """Scan a base table (with projection and pushdown)."""

    table: str
    columns: Tuple[str, ...]
    #: Residual predicate evaluated on scanned rows (may be None).
    predicate: Optional[Expr] = None
    #: Simple conjuncts for zone-map pruning: (column, op, literal).
    prune: Tuple[Tuple[str, str, Any], ...] = ()


@dataclass(frozen=True)
class Filter:
    """Row filter."""

    child: "Plan"
    predicate: Expr


@dataclass(frozen=True)
class Project:
    """Column projection/computation.  ``outputs`` maps name → expression."""

    child: "Plan"
    outputs: Dict[str, Expr]


@dataclass(frozen=True)
class Join:
    """Hash join of two subplans."""

    left: "Plan"
    right: "Plan"
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    how: str = "inner"


@dataclass(frozen=True)
class Aggregate:
    """Grouped aggregation."""

    child: "Plan"
    group_keys: Tuple[str, ...]
    aggs: AggSpec


@dataclass(frozen=True)
class Sort:
    """Order by ``(column, ascending)`` keys."""

    child: "Plan"
    keys: Tuple[Tuple[str, bool], ...]


@dataclass(frozen=True)
class Limit:
    """Top-N."""

    child: "Plan"
    count: int


Plan = Union[TableScan, Filter, Project, Join, Aggregate, Sort, Limit]


def scans_of(plan: Plan) -> List[TableScan]:
    """All TableScan leaves of a plan, left-to-right."""
    if isinstance(plan, TableScan):
        return [plan]
    if isinstance(plan, Join):
        return scans_of(plan.left) + scans_of(plan.right)
    return scans_of(plan.child)


def tables_of(plan: Plan) -> List[str]:
    """Distinct base tables referenced, in first-occurrence order."""
    tables: List[str] = []
    for scan in scans_of(plan):
        if scan.table not in tables:
            tables.append(scan.table)
    return tables
