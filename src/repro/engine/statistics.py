"""Table-level statistics derived from snapshots.

The SQL BE gathers coarse-grained statistics during scans — file counts,
row counts, deleted-row counts — which the FE aggregates and pushes to the
STO (Section 5.1).  The same numbers drive the autoscaler's sizing and the
storage-health monitor behind Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.config import StoConfig
from repro.lst.snapshot import TableSnapshot


@dataclass(frozen=True)
class FileHealth:
    """Health assessment of one live data file."""

    file_name: str
    num_rows: int
    deleted_rows: int
    healthy: bool


@dataclass(frozen=True)
class TableStats:
    """Coarse statistics of one table snapshot."""

    table_id: int
    sequence_id: int
    file_count: int
    total_rows: int
    deleted_rows: int
    low_quality_files: int

    @property
    def live_rows(self) -> int:
        """Rows after deletion-vector filtering."""
        return self.total_rows - self.deleted_rows

    @property
    def low_quality_fraction(self) -> float:
        """Fraction of files below the health thresholds."""
        if self.file_count == 0:
            return 0.0
        return self.low_quality_files / self.file_count

    @property
    def healthy(self) -> bool:
        """Whether every file is within the optimality thresholds."""
        return self.low_quality_files == 0


def file_health(
    snapshot: TableSnapshot, config: StoConfig
) -> List[FileHealth]:
    """Per-file health of a snapshot under the STO thresholds.

    A file is low quality if it is too small (small-file pattern) or
    carries too high a deleted fraction (fragmentation pattern) —
    Section 5's two main degradation patterns.  The small-file rule only
    applies when the file's cell holds another file to merge with:
    a singleton file per distribution is already as compact as the table
    can get, so tiny tables are not permanently "unhealthy".
    """
    files_per_distribution: Dict[int, int] = {}
    for info in snapshot.files.values():
        files_per_distribution[info.distribution] = (
            files_per_distribution.get(info.distribution, 0) + 1
        )
    report = []
    for info in sorted(snapshot.files.values(), key=lambda f: f.name):
        dv = snapshot.dv_for(info.name)
        deleted = dv.cardinality if dv is not None else 0
        mergeable = files_per_distribution[info.distribution] > 1
        too_small = mergeable and info.num_rows < config.min_healthy_rows_per_file
        too_deleted = (
            info.num_rows > 0 and deleted / info.num_rows > config.max_deleted_fraction
        )
        report.append(
            FileHealth(
                file_name=info.name,
                num_rows=info.num_rows,
                deleted_rows=deleted,
                healthy=not (too_small or too_deleted),
            )
        )
    return report


def collect_stats(
    table_id: int, snapshot: TableSnapshot, config: StoConfig
) -> TableStats:
    """Aggregate a snapshot into :class:`TableStats`."""
    health = file_health(snapshot, config)
    return TableStats(
        table_id=table_id,
        sequence_id=snapshot.sequence_id,
        file_count=len(health),
        total_rows=sum(h.num_rows for h in health),
        deleted_rows=sum(h.deleted_rows for h in health),
        low_quality_files=sum(1 for h in health if not h.healthy),
    )
