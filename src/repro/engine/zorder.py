"""Z-ordering: Morton codes for composite sort keys (Section 2.3).

"We use Z-Ordering to support range-based retrieval over a (composite)
key."  For a single key, plain sorting suffices (and is what the write
path does); for composite keys, rows are ordered by the *Morton code* —
the bit-interleaving of the keys' ranks — so that files and row groups
stay selective for range predicates on **any** of the participating
columns, not just the leading one.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

#: Bits per dimension; 21 bits × 3 dims fits a 63-bit signed integer.
_BITS = 21


def _rank_normalize(values: np.ndarray) -> np.ndarray:
    """Map values to *dense* ranks scaled into the ``_BITS``-bit range.

    Dense ranking (equal values share one rank) rather than min/max
    scaling keeps the code distribution uniform regardless of value skew
    and keeps tied columns from injecting arbitrary order; string columns
    work too, since only ordering matters.
    """
    if len(values) <= 1:
        return np.zeros(len(values), dtype=np.uint64)
    if values.dtype.kind == "O":
        lookup = {v: i for i, v in enumerate(sorted(set(values.tolist())))}
        ranks = np.fromiter(
            (lookup[v] for v in values), dtype=np.int64, count=len(values)
        )
        distinct = len(lookup)
    else:
        __, ranks = np.unique(values, return_inverse=True)
        distinct = int(ranks.max()) + 1
    if distinct <= 1:
        return np.zeros(len(values), dtype=np.uint64)
    scale = ((1 << _BITS) - 1) / (distinct - 1)
    return (ranks * scale).astype(np.uint64)


def _spread_bits(values: np.ndarray, stride: int) -> np.ndarray:
    """Insert ``stride - 1`` zero bits between consecutive bits."""
    out = np.zeros(len(values), dtype=np.uint64)
    for bit in range(_BITS):
        out |= ((values >> np.uint64(bit)) & np.uint64(1)) << np.uint64(bit * stride)
    return out


def morton_codes(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Morton (Z-curve) codes for up to three key columns."""
    if not 1 <= len(columns) <= 3:
        raise ValueError("z-ordering supports 1 to 3 key columns")
    stride = len(columns)
    code = np.zeros(len(columns[0]), dtype=np.uint64)
    for dim, values in enumerate(columns):
        normalized = _rank_normalize(np.asarray(values))
        code |= _spread_bits(normalized, stride) << np.uint64(dim)
    return code


def zorder_permutation(batch: Dict[str, np.ndarray], keys: Sequence[str]) -> np.ndarray:
    """Row permutation ordering ``batch`` along the Z-curve of ``keys``."""
    codes = morton_codes([batch[key] for key in keys])
    return np.argsort(codes, kind="stable")
