"""Column batches: the engine's in-memory data representation.

A batch is a ``dict`` mapping column name to a numpy array; all arrays
share one length.  Batches are passed by reference and treated as
immutable — operators build new dicts (and reuse arrays where safe).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

Batch = Dict[str, np.ndarray]


def num_rows(batch: Batch) -> int:
    """Row count of a batch (0 for the empty dict)."""
    for values in batch.values():
        return len(values)
    return 0


def empty_batch(columns: Sequence[str]) -> Batch:
    """A zero-row batch with the given column names (object dtype)."""
    return {name: np.empty(0, dtype=object) for name in columns}


def take(batch: Batch, indices: np.ndarray) -> Batch:
    """Row-select by integer indices."""
    return {name: values[indices] for name, values in batch.items()}


def mask(batch: Batch, keep: np.ndarray) -> Batch:
    """Row-select by boolean mask."""
    return {name: values[keep] for name, values in batch.items()}


def concat_batches(batches: List[Batch]) -> Batch:
    """Vertically concatenate batches with identical column sets."""
    batches = [b for b in batches if b]
    if not batches:
        return {}
    names = list(batches[0])
    for other in batches[1:]:
        if list(other) != names:
            raise ValueError(
                f"cannot concat batches with columns {list(other)} vs {names}"
            )
    return {
        name: np.concatenate([b[name] for b in batches]) if len(batches) > 1 else batches[0][name]
        for name in names
    }


def from_rows(schema_names: Sequence[str], rows: Sequence[Sequence]) -> Batch:
    """Build a batch from row tuples (test/fixture convenience)."""
    columns: Batch = {}
    for index, name in enumerate(schema_names):
        values = [row[index] for row in rows]
        if values and isinstance(values[0], bool):
            columns[name] = np.array(values, dtype=bool)
        elif values and isinstance(values[0], int):
            columns[name] = np.array(values, dtype=np.int64)
        elif values and isinstance(values[0], float):
            columns[name] = np.array(values, dtype=np.float64)
        else:
            columns[name] = np.array(values, dtype=object)
    return columns
