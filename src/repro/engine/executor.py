"""Single-node plan execution.

Evaluates a logical plan bottom-up over materialized batches.  The caller
supplies a *scan source*: a callable resolving each :class:`TableScan`
into a batch — in production that is the FE read path over a transaction's
snapshot; in tests it can be a plain dict of batches.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.errors import PlanError
from repro.engine import operators
from repro.engine.batch import Batch
from repro.engine.planner import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Sort,
    TableScan,
)

#: Resolves a TableScan into its (already projected/pruned/filtered) batch.
ScanSource = Callable[[TableScan], Batch]


def execute_plan(plan: Plan, scan_source: ScanSource) -> Batch:
    """Execute ``plan`` and return the result batch."""
    if isinstance(plan, TableScan):
        batch = scan_source(plan)
        missing = [c for c in plan.columns if c not in batch]
        if missing:
            raise PlanError(f"scan of {plan.table!r} missing columns {missing}")
        return {name: batch[name] for name in plan.columns}
    if isinstance(plan, Filter):
        return operators.filter_batch(
            execute_plan(plan.child, scan_source), plan.predicate
        )
    if isinstance(plan, Project):
        return operators.project(execute_plan(plan.child, scan_source), plan.outputs)
    if isinstance(plan, Join):
        return operators.join(
            execute_plan(plan.left, scan_source),
            execute_plan(plan.right, scan_source),
            plan.left_keys,
            plan.right_keys,
            plan.how,
            plan.algorithm,
        )
    if isinstance(plan, Aggregate):
        return operators.aggregate(
            execute_plan(plan.child, scan_source), plan.group_keys, plan.aggs
        )
    if isinstance(plan, Sort):
        return operators.sort(execute_plan(plan.child, scan_source), plan.keys)
    if isinstance(plan, Limit):
        return operators.limit(execute_plan(plan.child, scan_source), plan.count)
    raise PlanError(f"unknown plan node {plan!r}")


def dict_scan_source(batches: Dict[str, Batch]) -> ScanSource:
    """A scan source over in-memory tables (tests and examples).

    Applies the scan's residual predicate, since there is no storage layer
    underneath to do it.
    """

    def source(scan: TableScan) -> Batch:
        batch = batches[scan.table]
        if scan.predicate is not None:
            batch = operators.filter_batch(batch, scan.predicate)
        return batch

    return source
