"""EXPLAIN and EXPLAIN ANALYZE: plans as readable, annotated text.

``explain(plan)`` returns the operator tree, one node per line, with the
scans' pushed-down projections, predicates and pruning conjuncts — the
compiled-plan view the SQL FE would show for a statement.

``explain_analyze(plan, scan_source)`` *executes* the plan and annotates
every operator with rows produced and simulated time; scans additionally
report file- and row-group-level pruning counts when the scan source
provides them (the FE read path does).  The result carries the output
batch, the annotated text, and the per-operator stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import PlanError
from repro.engine import operators
from repro.engine.batch import Batch, num_rows

from repro.engine.expressions import (
    BinOp,
    BoolOp,
    Case,
    Col,
    Expr,
    InList,
    Like,
    Lit,
    Not,
    Substr,
    Year,
)
from repro.engine.planner import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Sort,
    TableScan,
)


def format_expr(expr: Expr) -> str:
    """One-line SQL-ish rendering of an expression tree."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return repr(expr.value)
    if isinstance(expr, BinOp):
        op = "=" if expr.op == "==" else ("<>" if expr.op == "!=" else expr.op)
        return f"({format_expr(expr.left)} {op} {format_expr(expr.right)})"
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(format_expr(a) for a in expr.args) + ")"
    if isinstance(expr, Not):
        return f"NOT {format_expr(expr.arg)}"
    if isinstance(expr, Like):
        return f"{format_expr(expr.arg)} LIKE {expr.pattern!r}"
    if isinstance(expr, InList):
        values = ", ".join(repr(v) for v in expr.values)
        return f"{format_expr(expr.arg)} IN ({values})"
    if isinstance(expr, Case):
        return (
            f"CASE WHEN {format_expr(expr.cond)} THEN {format_expr(expr.then)} "
            f"ELSE {format_expr(expr.orelse)} END"
        )
    if isinstance(expr, Year):
        return f"YEAR({format_expr(expr.arg)})"
    if isinstance(expr, Substr):
        return f"SUBSTRING({format_expr(expr.arg)}, {expr.start}, {expr.length})"
    raise TypeError(f"unknown expression {expr!r}")


def explain(plan: Plan) -> str:
    """Multi-line operator tree for a plan."""
    lines: List[str] = []
    _walk(plan, 0, lines)
    return "\n".join(lines)


@dataclass
class OperatorStats:
    """Measured execution stats of one plan operator."""

    #: Rows the operator produced.
    rows: int
    #: Simulated seconds attributed to the operator (measured for scans,
    #: cost-model estimated for root-side operators; None if unknown).
    sim_time_s: Optional[float] = None
    #: Scan-only extras: files/files_pruned, row_groups/row_groups_pruned,
    #: cells — whatever the scan source reported.
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class AnalyzeResult:
    """Outcome of :func:`explain_analyze`: output plus annotations."""

    batch: Batch
    text: str
    #: Per-operator stats keyed by ``id(plan_node)``.
    stats: Dict[int, OperatorStats]

    def stats_for(self, node: Plan) -> OperatorStats:
        """The stats recorded for one plan node."""
        return self.stats[id(node)]


def explain_analyze(
    plan: Plan,
    scan_source: Callable[[TableScan], Batch],
    *,
    clock=None,
    cost_model=None,
    scan_details: Optional[Dict[int, Dict[str, Any]]] = None,
) -> AnalyzeResult:
    """Execute ``plan`` and annotate each operator with observed stats.

    ``scan_source`` resolves scans exactly as in
    :func:`repro.engine.executor.execute_plan`.  Scan timing comes from
    ``scan_details[id(scan)]["sim_time_s"]`` when the caller pre-measured
    it (the FE read path), else from ``clock`` deltas around the scan
    call.  Root-side operators are costed with ``cost_model`` over their
    input rows — the same first-order model the FE charges the clock with.
    """
    stats: Dict[int, OperatorStats] = {}
    batch = _run_analyzed(
        plan, scan_source, stats, clock, cost_model, scan_details or {}
    )
    lines: List[str] = []
    _walk(plan, 0, lines, annotate=lambda node: _annotation(stats.get(id(node))))
    return AnalyzeResult(batch=batch, text="\n".join(lines), stats=stats)


def _run_analyzed(
    plan: Plan,
    scan_source: Callable[[TableScan], Batch],
    stats: Dict[int, OperatorStats],
    clock,
    cost_model,
    scan_details: Dict[int, Dict[str, Any]],
) -> Batch:
    def recurse(node: Plan) -> Batch:
        return _run_analyzed(
            node, scan_source, stats, clock, cost_model, scan_details
        )

    if isinstance(plan, TableScan):
        started = clock.now if clock is not None else None
        batch = scan_source(plan)
        missing = [c for c in plan.columns if c not in batch]
        if missing:
            raise PlanError(f"scan of {plan.table!r} missing columns {missing}")
        out = {name: batch[name] for name in plan.columns}
        details = dict(scan_details.get(id(plan), {}))
        elapsed = details.pop("sim_time_s", None)
        if elapsed is None and started is not None:
            elapsed = clock.now - started
        stats[id(plan)] = OperatorStats(
            rows=num_rows(out), sim_time_s=elapsed, details=details
        )
        return out

    if isinstance(plan, Filter):
        children = [recurse(plan.child)]
        result = operators.filter_batch(children[0], plan.predicate)
    elif isinstance(plan, Project):
        children = [recurse(plan.child)]
        result = operators.project(children[0], plan.outputs)
    elif isinstance(plan, Join):
        children = [recurse(plan.left), recurse(plan.right)]
        result = operators.hash_join(
            children[0], children[1], plan.left_keys, plan.right_keys, plan.how
        )
    elif isinstance(plan, Aggregate):
        children = [recurse(plan.child)]
        result = operators.aggregate(children[0], plan.group_keys, plan.aggs)
    elif isinstance(plan, Sort):
        children = [recurse(plan.child)]
        result = operators.sort(children[0], plan.keys)
    elif isinstance(plan, Limit):
        children = [recurse(plan.child)]
        result = operators.limit(children[0], plan.count)
    else:
        raise PlanError(f"unknown plan node {plan!r}")

    input_rows = sum(num_rows(child) for child in children)
    est = (
        cost_model.task_duration(input_rows, 0, 0)
        if cost_model is not None
        else None
    )
    stats[id(plan)] = OperatorStats(rows=num_rows(result), sim_time_s=est)
    return result


def _annotation(node_stats: Optional[OperatorStats]) -> str:
    if node_stats is None:
        return ""
    parts = [f"rows={node_stats.rows}"]
    if node_stats.sim_time_s is not None:
        parts.append(f"time={node_stats.sim_time_s:.3f}s")
    details = node_stats.details
    if "files" in details:
        parts.append(
            f"files={details['files'] - details.get('files_pruned', 0)}"
            f"/{details['files']}"
        )
    if details.get("files_pruned"):
        parts.append(f"files_pruned={details['files_pruned']}")
    if "row_groups" in details:
        parts.append(f"row_groups={details['row_groups']}")
    if details.get("row_groups_pruned"):
        parts.append(f"row_groups_pruned={details['row_groups_pruned']}")
    if "cells" in details:
        parts.append(f"cells={details['cells']}")
    return "  (" + " ".join(parts) + ")"


def _walk(
    plan: Plan,
    depth: int,
    lines: List[str],
    annotate: Optional[Callable[[Plan], str]] = None,
) -> None:
    pad = "  " * depth
    suffix = annotate(plan) if annotate is not None else ""
    if isinstance(plan, TableScan):
        line = f"{pad}Scan {plan.table} [{', '.join(plan.columns)}]"
        if plan.predicate is not None:
            line += f" filter={format_expr(plan.predicate)}"
        if plan.prune:
            conjuncts = " AND ".join(f"{c} {op} {v!r}" for c, op, v in plan.prune)
            line += f" prune=({conjuncts})"
        lines.append(line + suffix)
        return
    if isinstance(plan, Filter):
        lines.append(f"{pad}Filter {format_expr(plan.predicate)}" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Project):
        outputs = ", ".join(
            f"{name}={format_expr(expr)}" for name, expr in plan.outputs.items()
        )
        lines.append(f"{pad}Project [{outputs}]" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Join):
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(plan.left_keys, plan.right_keys)
        )
        lines.append(f"{pad}HashJoin[{plan.how}] on ({keys})" + suffix)
        _walk(plan.left, depth + 1, lines, annotate)
        _walk(plan.right, depth + 1, lines, annotate)
        return
    if isinstance(plan, Aggregate):
        keys = ", ".join(plan.group_keys) if plan.group_keys else "<global>"
        aggs = ", ".join(
            f"{name}={func}({format_expr(expr) if expr is not None else '*'})"
            for name, (func, expr) in plan.aggs.items()
        )
        lines.append(f"{pad}Aggregate group=[{keys}] [{aggs}]" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Sort):
        keys = ", ".join(
            f"{column} {'ASC' if asc else 'DESC'}" for column, asc in plan.keys
        )
        lines.append(f"{pad}Sort [{keys}]" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Limit):
        lines.append(f"{pad}Limit {plan.count}" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    raise TypeError(f"unknown plan node {plan!r}")
