"""EXPLAIN and EXPLAIN ANALYZE: plans as readable, annotated text.

``explain(plan)`` returns the operator tree, one node per line, with the
scans' pushed-down projections, predicates and pruning conjuncts — the
compiled-plan view the SQL FE would show for a statement.

``explain_analyze(plan, scan_source)`` *executes* the plan and annotates
every operator with rows produced and simulated time; scans additionally
report file- and row-group-level pruning counts when the scan source
provides them (the FE read path does).  The result carries the output
batch, the annotated text, and the per-operator stats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import PlanError
from repro.engine import operators
from repro.engine.batch import Batch, num_rows

from repro.engine.expressions import (
    BinOp,
    BoolOp,
    Case,
    Col,
    Expr,
    InList,
    Like,
    Lit,
    Not,
    Substr,
    Year,
)
from repro.engine.planner import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Sort,
    TableScan,
)


def format_expr(expr: Expr) -> str:
    """One-line SQL-ish rendering of an expression tree."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return repr(expr.value)
    if isinstance(expr, BinOp):
        op = "=" if expr.op == "==" else ("<>" if expr.op == "!=" else expr.op)
        return f"({format_expr(expr.left)} {op} {format_expr(expr.right)})"
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(format_expr(a) for a in expr.args) + ")"
    if isinstance(expr, Not):
        return f"NOT {format_expr(expr.arg)}"
    if isinstance(expr, Like):
        return f"{format_expr(expr.arg)} LIKE {expr.pattern!r}"
    if isinstance(expr, InList):
        values = ", ".join(repr(v) for v in expr.values)
        return f"{format_expr(expr.arg)} IN ({values})"
    if isinstance(expr, Case):
        return (
            f"CASE WHEN {format_expr(expr.cond)} THEN {format_expr(expr.then)} "
            f"ELSE {format_expr(expr.orelse)} END"
        )
    if isinstance(expr, Year):
        return f"YEAR({format_expr(expr.arg)})"
    if isinstance(expr, Substr):
        return f"SUBSTRING({format_expr(expr.arg)}, {expr.start}, {expr.length})"
    raise TypeError(f"unknown expression {expr!r}")


def explain(plan: Plan) -> str:
    """Multi-line operator tree for a plan."""
    lines: List[str] = []
    _walk(plan, 0, lines)
    return "\n".join(lines)


@dataclass
class OperatorStats:
    """Measured execution stats of one plan operator."""

    #: Rows the operator produced.
    rows: int
    #: Simulated seconds attributed to the operator (measured for scans,
    #: cost-model estimated for root-side operators; None if unknown).
    sim_time_s: Optional[float] = None
    #: Scan-only extras: files/files_pruned, row_groups/row_groups_pruned,
    #: cells — whatever the scan source reported.
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass
class AnalyzeResult:
    """Outcome of :func:`explain_analyze`: output plus annotations."""

    batch: Batch
    text: str
    #: Per-operator stats keyed by ``id(plan_node)``.
    stats: Dict[int, OperatorStats]
    #: Planner-estimated output rows keyed by ``id(plan_node)`` (empty
    #: when the caller supplied no estimates).
    estimates: Dict[int, int] = field(default_factory=dict)

    def stats_for(self, node: Plan) -> OperatorStats:
        """The stats recorded for one plan node."""
        return self.stats[id(node)]


@dataclass
class PlanProfile:
    """Lightweight per-run profile: stats without the rendered text.

    What the query store captures on *every* execution — the same
    measurements as :class:`AnalyzeResult` minus the annotated plan
    rendering, which is the expensive, human-facing half.
    """

    batch: Batch
    #: Per-operator stats keyed by ``id(plan_node)``.
    stats: Dict[int, OperatorStats]
    #: Planner-estimated output rows keyed by ``id(plan_node)``.
    estimates: Dict[int, int] = field(default_factory=dict)
    #: The physical plan actually executed (after cost-based optimizer
    #: rewrites); None when the caller's plan ran unmodified.
    plan: Optional[Plan] = None


def misestimate_ratio(est_rows: float, actual_rows: float) -> float:
    """Symmetric cardinality-misestimate factor, always >= 1.

    Both sides are floored at one row so empty results and zero
    estimates stay finite: 1.0 means exact to within a row, 10.0 means
    an order of magnitude off in either direction.
    """
    est = max(float(est_rows), 1.0)
    actual = max(float(actual_rows), 1.0)
    return max(actual / est, est / actual)


@dataclass(frozen=True)
class DefaultSelectivity:
    """Textbook fallback selectivities, used only without collected stats.

    The classic System R defaults: a predicate keeps one third of its
    input, zone-map pruning keeps one half, a grouped aggregate emits
    ``sqrt(input)`` groups.  The cost-based optimizer replaces every one
    of these with histogram/NDV-derived numbers once ``ANALYZE`` has run
    on the tables involved (:mod:`repro.optimizer.cardinality`); when it
    does, the per-node provenance map records ``stats`` instead of
    ``default`` so EXPLAIN shows which path produced each estimate.
    """

    #: Fraction of input rows assumed to survive a predicate.
    predicate: float = 1.0 / 3.0
    #: Fraction of a scan's rows assumed to survive zone-map pruning.
    prune: float = 0.5

    def group_count(self, input_rows: float) -> float:
        """Assumed distinct-group count of a grouped aggregate."""
        return math.ceil(math.sqrt(input_rows))


#: The shared default-selectivity table.
DEFAULT_SELECTIVITY = DefaultSelectivity()

#: Estimate-provenance tags recorded per plan node: ``default`` means a
#: :class:`DefaultSelectivity` guess, ``stats`` means collected ANALYZE
#: statistics drove the number.
PROVENANCE_DEFAULT = "default"
PROVENANCE_STATS = "stats"


def clamp_estimate(value: float) -> int:
    """Round an estimate; a nonzero fraction means "some rows", never zero."""
    if value >= 1.0:
        return int(round(value))
    return 1 if value > 0 else 0


def estimate_cardinalities(
    plan: Plan,
    scan_rows: Dict[int, float],
    provenance: Optional[Dict[int, str]] = None,
    selectivity: DefaultSelectivity = DEFAULT_SELECTIVITY,
) -> Dict[int, int]:
    """First-order estimated output rows per operator, keyed by id(node).

    ``scan_rows`` maps ``id(scan_node)`` to the table's live row count
    (file rows minus deletion-vector cardinalities) — the statistic the
    snapshot manifest maintains without any ANALYZE.  The
    :class:`DefaultSelectivity` table covers the rest: predicates keep
    1/3 of rows, pruning keeps 1/2, joins carry the larger input,
    grouped aggregates emit ``sqrt(input)`` groups.  The point is not
    precision — it is producing an estimate the query store can compare
    against actuals, turning misestimates into recorded feedback.

    Every node's estimate is tagged :data:`PROVENANCE_DEFAULT` in
    ``provenance`` (when given); the stats-driven estimator in
    :mod:`repro.optimizer.cardinality` is the path that tags
    :data:`PROVENANCE_STATS`.
    """
    estimates: Dict[int, int] = {}

    def walk(node: Plan) -> float:
        if isinstance(node, TableScan):
            value = float(scan_rows.get(id(node), 0.0))
            if node.prune:
                value *= selectivity.prune
            if node.predicate is not None:
                value *= selectivity.predicate
        elif isinstance(node, Filter):
            value = walk(node.child) * selectivity.predicate
        elif isinstance(node, Project):
            value = walk(node.child)
        elif isinstance(node, Join):
            value = max(walk(node.left), walk(node.right))
        elif isinstance(node, Aggregate):
            child = walk(node.child)
            value = selectivity.group_count(child) if node.group_keys else 1.0
        elif isinstance(node, Sort):
            value = walk(node.child)
        elif isinstance(node, Limit):
            value = min(walk(node.child), float(node.count))
        else:
            raise PlanError(f"unknown plan node {node!r}")
        estimates[id(node)] = clamp_estimate(value)
        if provenance is not None:
            provenance[id(node)] = PROVENANCE_DEFAULT
        return value

    walk(plan)
    return estimates


#: Display names of the physical join algorithms (plan text, operator
#: labels, DMV rows).  ``hash`` keeps its historical ``HashJoin`` label
#: so default plan hashes are unchanged.
JOIN_ALGORITHM_LABELS = {
    "hash": "HashJoin",
    "sort_merge": "SortMergeJoin",
    "index_nl": "IndexNLJoin",
    "block_nl": "BlockNLJoin",
}


def join_label(node: Join) -> str:
    """Display name of one Join node's chosen algorithm."""
    try:
        return JOIN_ALGORITHM_LABELS[node.algorithm]
    except KeyError:
        raise PlanError(f"unknown join algorithm {node.algorithm!r}") from None


def operator_labels(plan: Plan) -> List[Tuple[int, Plan, str]]:
    """Preorder ``(operator_id, node, label)`` triples for a plan.

    The preorder index is the stable ``operator_id`` the query store
    keys per-operator aggregates on — same plan shape, same ids.
    """
    labeled: List[Tuple[int, Plan, str]] = []
    for index, node in enumerate(_preorder(plan)):
        if isinstance(node, TableScan):
            label = f"Scan {node.table}"
        elif isinstance(node, Filter):
            label = "Filter"
        elif isinstance(node, Project):
            label = "Project"
        elif isinstance(node, Join):
            label = f"{join_label(node)}[{node.how}]"
        elif isinstance(node, Aggregate):
            label = "Aggregate"
        elif isinstance(node, Sort):
            label = "Sort"
        elif isinstance(node, Limit):
            label = "Limit"
        else:
            raise PlanError(f"unknown plan node {node!r}")
        labeled.append((index, node, label))
    return labeled


def operator_summaries(
    plan: Plan,
    stats: Dict[int, OperatorStats],
    estimates: Optional[Dict[int, int]] = None,
) -> List[Dict[str, Any]]:
    """Flat per-operator records (est vs actual rows, time, pruning).

    The cardinality-feedback rows the query store folds per fingerprint
    and serves back through ``sys.dm_exec_operator_stats``.
    """
    estimates = estimates or {}
    records: List[Dict[str, Any]] = []
    for operator_id, node, label in operator_labels(plan):
        node_stats = stats.get(id(node))
        details = node_stats.details if node_stats is not None else {}
        records.append(
            {
                "operator_id": operator_id,
                "operator": label,
                "est_rows": estimates.get(id(node), 0),
                "actual_rows": node_stats.rows if node_stats is not None else 0,
                "sim_time_s": (
                    node_stats.sim_time_s if node_stats is not None else None
                ),
                "files": details.get("files", 0),
                "files_pruned": details.get("files_pruned", 0),
                "row_groups": details.get("row_groups", 0),
                "row_groups_pruned": details.get("row_groups_pruned", 0),
            }
        )
    return records


def _preorder(plan: Plan) -> Iterator[Plan]:
    yield plan
    if isinstance(plan, TableScan):
        return
    if isinstance(plan, Join):
        yield from _preorder(plan.left)
        yield from _preorder(plan.right)
        return
    if isinstance(plan, (Filter, Project, Aggregate, Sort, Limit)):
        yield from _preorder(plan.child)
        return
    raise PlanError(f"unknown plan node {plan!r}")


def explain_analyze(
    plan: Plan,
    scan_source: Callable[[TableScan], Batch],
    *,
    clock=None,
    cost_model=None,
    scan_details: Optional[Dict[int, Dict[str, Any]]] = None,
    estimates: Optional[Dict[int, int]] = None,
    provenance: Optional[Dict[int, str]] = None,
    costs: Optional[Dict[int, float]] = None,
) -> AnalyzeResult:
    """Execute ``plan`` and annotate each operator with observed stats.

    ``scan_source`` resolves scans exactly as in
    :func:`repro.engine.executor.execute_plan`.  Scan timing comes from
    ``scan_details[id(scan)]["sim_time_s"]`` when the caller pre-measured
    it (the FE read path), else from ``clock`` deltas around the scan
    call.  Root-side operators are costed with ``cost_model`` over their
    input rows — the same first-order model the FE charges the clock with.
    ``estimates`` (from :func:`estimate_cardinalities`) adds an
    ``est=``/``ratio=`` column per operator so cardinality misestimates
    are visible interactively.  ``provenance`` (node id → ``stats`` /
    ``default``) and ``costs`` (node id → optimizer cost units) add
    ``stats=`` and ``cost=`` columns when the cost-based optimizer
    supplied them.
    """
    stats: Dict[int, OperatorStats] = {}
    batch = _run_analyzed(
        plan, scan_source, stats, clock, cost_model, scan_details or {}
    )
    estimates = estimates or {}
    provenance = provenance or {}
    costs = costs or {}
    lines: List[str] = []
    _walk(
        plan,
        0,
        lines,
        annotate=lambda node: _annotation(
            stats.get(id(node)),
            estimates.get(id(node)),
            provenance.get(id(node)),
            costs.get(id(node)),
        ),
    )
    return AnalyzeResult(
        batch=batch, text="\n".join(lines), stats=stats, estimates=estimates
    )


def run_with_stats(
    plan: Plan,
    scan_source: Callable[[TableScan], Batch],
    *,
    clock=None,
    cost_model=None,
    scan_details: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Tuple[Batch, Dict[int, OperatorStats]]:
    """Execute ``plan`` collecting per-operator stats, skipping the text.

    The measurement half of :func:`explain_analyze` — what the query
    store runs on every statement; rendering the annotated tree is left
    to the interactive path that wants it.
    """
    stats: Dict[int, OperatorStats] = {}
    batch = _run_analyzed(
        plan, scan_source, stats, clock, cost_model, scan_details or {}
    )
    return batch, stats


def _run_analyzed(
    plan: Plan,
    scan_source: Callable[[TableScan], Batch],
    stats: Dict[int, OperatorStats],
    clock,
    cost_model,
    scan_details: Dict[int, Dict[str, Any]],
) -> Batch:
    def recurse(node: Plan) -> Batch:
        return _run_analyzed(
            node, scan_source, stats, clock, cost_model, scan_details
        )

    if isinstance(plan, TableScan):
        started = clock.now if clock is not None else None
        batch = scan_source(plan)
        missing = [c for c in plan.columns if c not in batch]
        if missing:
            raise PlanError(f"scan of {plan.table!r} missing columns {missing}")
        out = {name: batch[name] for name in plan.columns}
        details = dict(scan_details.get(id(plan), {}))
        elapsed = details.pop("sim_time_s", None)
        if elapsed is None and started is not None:
            elapsed = clock.now - started
        stats[id(plan)] = OperatorStats(
            rows=num_rows(out), sim_time_s=elapsed, details=details
        )
        return out

    if isinstance(plan, Filter):
        children = [recurse(plan.child)]
        result = operators.filter_batch(children[0], plan.predicate)
    elif isinstance(plan, Project):
        children = [recurse(plan.child)]
        result = operators.project(children[0], plan.outputs)
    elif isinstance(plan, Join):
        children = [recurse(plan.left), recurse(plan.right)]
        result = operators.join(
            children[0],
            children[1],
            plan.left_keys,
            plan.right_keys,
            plan.how,
            plan.algorithm,
        )
    elif isinstance(plan, Aggregate):
        children = [recurse(plan.child)]
        result = operators.aggregate(children[0], plan.group_keys, plan.aggs)
    elif isinstance(plan, Sort):
        children = [recurse(plan.child)]
        result = operators.sort(children[0], plan.keys)
    elif isinstance(plan, Limit):
        children = [recurse(plan.child)]
        result = operators.limit(children[0], plan.count)
    else:
        raise PlanError(f"unknown plan node {plan!r}")

    input_rows = sum(num_rows(child) for child in children)
    est = (
        cost_model.task_duration(input_rows, 0, 0)
        if cost_model is not None
        else None
    )
    stats[id(plan)] = OperatorStats(rows=num_rows(result), sim_time_s=est)
    return result


def _annotation(
    node_stats: Optional[OperatorStats],
    est_rows: Optional[int] = None,
    provenance: Optional[str] = None,
    cost: Optional[float] = None,
) -> str:
    if node_stats is None:
        return ""
    parts = [f"rows={node_stats.rows}"]
    if est_rows is not None:
        parts.append(f"est={est_rows}")
        parts.append(f"ratio={misestimate_ratio(est_rows, node_stats.rows):.2f}x")
    if provenance is not None:
        parts.append(f"stats={provenance}")
    if cost is not None:
        parts.append(f"cost={cost:.1f}")
    if node_stats.sim_time_s is not None:
        parts.append(f"time={node_stats.sim_time_s:.3f}s")
    details = node_stats.details
    if "files" in details:
        parts.append(
            f"files={details['files'] - details.get('files_pruned', 0)}"
            f"/{details['files']}"
        )
    if details.get("files_pruned"):
        parts.append(f"files_pruned={details['files_pruned']}")
    if "row_groups" in details:
        parts.append(f"row_groups={details['row_groups']}")
    if details.get("row_groups_pruned"):
        parts.append(f"row_groups_pruned={details['row_groups_pruned']}")
    if "cells" in details:
        parts.append(f"cells={details['cells']}")
    return "  (" + " ".join(parts) + ")"


def _walk(
    plan: Plan,
    depth: int,
    lines: List[str],
    annotate: Optional[Callable[[Plan], str]] = None,
) -> None:
    pad = "  " * depth
    suffix = annotate(plan) if annotate is not None else ""
    if isinstance(plan, TableScan):
        line = f"{pad}Scan {plan.table} [{', '.join(plan.columns)}]"
        if plan.predicate is not None:
            line += f" filter={format_expr(plan.predicate)}"
        if plan.prune:
            conjuncts = " AND ".join(f"{c} {op} {v!r}" for c, op, v in plan.prune)
            line += f" prune=({conjuncts})"
        lines.append(line + suffix)
        return
    if isinstance(plan, Filter):
        lines.append(f"{pad}Filter {format_expr(plan.predicate)}" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Project):
        outputs = ", ".join(
            f"{name}={format_expr(expr)}" for name, expr in plan.outputs.items()
        )
        lines.append(f"{pad}Project [{outputs}]" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Join):
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(plan.left_keys, plan.right_keys)
        )
        lines.append(f"{pad}{join_label(plan)}[{plan.how}] on ({keys})" + suffix)
        _walk(plan.left, depth + 1, lines, annotate)
        _walk(plan.right, depth + 1, lines, annotate)
        return
    if isinstance(plan, Aggregate):
        keys = ", ".join(plan.group_keys) if plan.group_keys else "<global>"
        aggs = ", ".join(
            f"{name}={func}({format_expr(expr) if expr is not None else '*'})"
            for name, (func, expr) in plan.aggs.items()
        )
        lines.append(f"{pad}Aggregate group=[{keys}] [{aggs}]" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Sort):
        keys = ", ".join(
            f"{column} {'ASC' if asc else 'DESC'}" for column, asc in plan.keys
        )
        lines.append(f"{pad}Sort [{keys}]" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    if isinstance(plan, Limit):
        lines.append(f"{pad}Limit {plan.count}" + suffix)
        _walk(plan.child, depth + 1, lines, annotate)
        return
    raise TypeError(f"unknown plan node {plan!r}")
