"""EXPLAIN: render logical plans and expressions as readable text.

``explain(plan)`` returns the operator tree, one node per line, with the
scans' pushed-down projections, predicates and pruning conjuncts — the
compiled-plan view the SQL FE would show for a statement.
"""

from __future__ import annotations

from typing import List

from repro.engine.expressions import (
    BinOp,
    BoolOp,
    Case,
    Col,
    Expr,
    InList,
    Like,
    Lit,
    Not,
    Substr,
    Year,
)
from repro.engine.planner import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Sort,
    TableScan,
)


def format_expr(expr: Expr) -> str:
    """One-line SQL-ish rendering of an expression tree."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return repr(expr.value)
    if isinstance(expr, BinOp):
        op = "=" if expr.op == "==" else ("<>" if expr.op == "!=" else expr.op)
        return f"({format_expr(expr.left)} {op} {format_expr(expr.right)})"
    if isinstance(expr, BoolOp):
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(format_expr(a) for a in expr.args) + ")"
    if isinstance(expr, Not):
        return f"NOT {format_expr(expr.arg)}"
    if isinstance(expr, Like):
        return f"{format_expr(expr.arg)} LIKE {expr.pattern!r}"
    if isinstance(expr, InList):
        values = ", ".join(repr(v) for v in expr.values)
        return f"{format_expr(expr.arg)} IN ({values})"
    if isinstance(expr, Case):
        return (
            f"CASE WHEN {format_expr(expr.cond)} THEN {format_expr(expr.then)} "
            f"ELSE {format_expr(expr.orelse)} END"
        )
    if isinstance(expr, Year):
        return f"YEAR({format_expr(expr.arg)})"
    if isinstance(expr, Substr):
        return f"SUBSTRING({format_expr(expr.arg)}, {expr.start}, {expr.length})"
    raise TypeError(f"unknown expression {expr!r}")


def explain(plan: Plan) -> str:
    """Multi-line operator tree for a plan."""
    lines: List[str] = []
    _walk(plan, 0, lines)
    return "\n".join(lines)


def _walk(plan: Plan, depth: int, lines: List[str]) -> None:
    pad = "  " * depth
    if isinstance(plan, TableScan):
        line = f"{pad}Scan {plan.table} [{', '.join(plan.columns)}]"
        if plan.predicate is not None:
            line += f" filter={format_expr(plan.predicate)}"
        if plan.prune:
            conjuncts = " AND ".join(f"{c} {op} {v!r}" for c, op, v in plan.prune)
            line += f" prune=({conjuncts})"
        lines.append(line)
        return
    if isinstance(plan, Filter):
        lines.append(f"{pad}Filter {format_expr(plan.predicate)}")
        _walk(plan.child, depth + 1, lines)
        return
    if isinstance(plan, Project):
        outputs = ", ".join(
            f"{name}={format_expr(expr)}" for name, expr in plan.outputs.items()
        )
        lines.append(f"{pad}Project [{outputs}]")
        _walk(plan.child, depth + 1, lines)
        return
    if isinstance(plan, Join):
        keys = ", ".join(
            f"{l}={r}" for l, r in zip(plan.left_keys, plan.right_keys)
        )
        lines.append(f"{pad}HashJoin[{plan.how}] on ({keys})")
        _walk(plan.left, depth + 1, lines)
        _walk(plan.right, depth + 1, lines)
        return
    if isinstance(plan, Aggregate):
        keys = ", ".join(plan.group_keys) if plan.group_keys else "<global>"
        aggs = ", ".join(
            f"{name}={func}({format_expr(expr) if expr is not None else '*'})"
            for name, (func, expr) in plan.aggs.items()
        )
        lines.append(f"{pad}Aggregate group=[{keys}] [{aggs}]")
        _walk(plan.child, depth + 1, lines)
        return
    if isinstance(plan, Sort):
        keys = ", ".join(
            f"{column} {'ASC' if asc else 'DESC'}" for column, asc in plan.keys
        )
        lines.append(f"{pad}Sort [{keys}]")
        _walk(plan.child, depth + 1, lines)
        return
    if isinstance(plan, Limit):
        lines.append(f"{pad}Limit {plan.count}")
        _walk(plan.child, depth + 1, lines)
        return
    raise TypeError(f"unknown plan node {plan!r}")
