"""Vectorized query engine.

Single-node execution (the role SQL Server plays on each BE node) works on
column batches — dicts of numpy arrays — with materialized operators:
filter, project, hash join, grouped aggregation, sort, limit.  Plans are
built programmatically (:mod:`planner`); a T-SQL parser is out of scope
for the reproduction, so the 22 TPC-H queries in
:mod:`repro.workloads.tpch.queries` construct plans directly.

Distributed execution (:mod:`distributed`) lowers a plan into a DCP
workflow DAG: one scan task per data cell (with projection, predicate and
deletion-vector merge pushed down), then a root task running the rest of
the plan over the concatenated partials — mirroring the single-phase
compilation in the SQL FE described in Section 3.3.
"""

from repro.engine.batch import Batch, concat_batches, empty_batch, num_rows
from repro.engine.expressions import (
    BinOp,
    BoolOp,
    Case,
    Col,
    InList,
    Like,
    Lit,
    Not,
    Substr,
    Year,
    evaluate,
)
from repro.engine.planner import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Plan,
    Project,
    Sort,
    TableScan,
)

__all__ = [
    "Aggregate",
    "Batch",
    "BinOp",
    "BoolOp",
    "Case",
    "Col",
    "Filter",
    "InList",
    "Join",
    "Like",
    "Limit",
    "Lit",
    "Not",
    "Plan",
    "Project",
    "Sort",
    "Substr",
    "TableScan",
    "Year",
    "concat_batches",
    "empty_batch",
    "evaluate",
    "num_rows",
]
