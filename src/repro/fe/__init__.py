"""The SQL Front End: Polaris transaction management (the paper's core).

The FE is where the paper's contribution lives (Sections 3 and 4):

* sessions compile statements and run them through the DCP as task DAGs,
  with reads and writes handled uniformly;
* every user transaction is backed by a *root* SQL DB transaction with
  Snapshot Isolation over the catalog's ``Manifests`` and ``WriteSets``
  tables;
* writes produce private data/DV files plus a per-(transaction, table)
  manifest file assembled from staged blocks, flushed by the FE after each
  statement;
* commit runs the optimistic validation phase — WriteSets upserts, commit
  lock, Manifests inserts, root-transaction commit — giving
  first-committer-wins Snapshot Isolation across multi-table,
  multi-statement transactions;
* lineage features (Query-As-Of, Clone-As-Of, backup/restore) ride on the
  same Manifests metadata.
"""

from repro.fe.context import ServiceContext
from repro.fe.session import Session
from repro.fe.transaction import PolarisTransaction

__all__ = ["PolarisTransaction", "ServiceContext", "Session"]
