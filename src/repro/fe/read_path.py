"""Distributed execution of read statements (Section 3.2.1).

A query plan's base-table scans fan out as one DCP task per cell; each
task reconstructs its slice from immutable data files plus the current
deletion vectors (merge-on-read), with projection and zone-map pruning
pushed down.  The FE concatenates the partial batches and runs the rest of
the plan, charging its CPU cost to the clock as the root task.

Scans also gather the coarse per-table statistics (file counts, deleted
rows) the FE pushes to the STO (Section 5.1) — the trigger feed for
autonomous compaction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.dcp.cells import cells_for_snapshot
from repro.dcp.dag import WorkflowDag
from repro.dcp.tasks import Task, TaskContext
from repro.engine.batch import Batch, concat_batches, empty_batch, num_rows
from repro.engine.executor import execute_plan
from repro.engine.explain import (
    AnalyzeResult,
    PlanProfile,
    estimate_cardinalities,
    explain_analyze,
    run_with_stats,
)
from repro.engine.operators import filter_batch
from repro.engine.planner import Plan, TableScan, scans_of
from repro.engine.statistics import collect_stats
from repro.fe.catalog import describe_table
from repro.fe.context import ServiceContext
from repro.fe.timetravel import snapshot_as_of
from repro.fe.transaction import PolarisTransaction
from repro.fe.write_path import _load_dv, _open_data_file
from repro.lst.snapshot import TableSnapshot


def scan_table(
    context: ServiceContext,
    txn: PolarisTransaction,
    scan: TableScan,
    snapshot_override: "TableSnapshot | None" = None,
    report: Optional[Dict[str, Any]] = None,
) -> Batch:
    """Execute one distributed table scan within ``txn``'s snapshot.

    ``snapshot_override`` substitutes an explicit snapshot (Query As Of,
    Section 6.1) for the transaction's own view.  A ``report`` dict, when
    given, is filled with EXPLAIN ANALYZE counters: files scanned vs.
    pruned (zone maps at manifest level), row groups scanned vs. pruned
    (zone maps inside page files), cells scheduled, and rows produced.
    """
    table_row = describe_table(txn.root, scan.table)
    table_id = table_row["table_id"]
    snapshot = (
        snapshot_override
        if snapshot_override is not None
        else txn.table_snapshot(table_id)
    )
    # File-level pruning: manifests carry per-file zone maps, so whole
    # files that cannot match are dropped before any cell is scheduled.
    # Secondary indexes prune further: equality conjuncts drop covered
    # files the index proves cannot match (hash-distributed keys defeat
    # zone maps, but not a sorted run).  Health statistics are reported
    # over the *unpruned* snapshot.
    full_snapshot = snapshot
    if scan.prune:
        snapshot = _prune_snapshot(snapshot, scan.prune)
        if context.optimizer is not None:
            snapshot = context.optimizer.prune_snapshot(
                txn.root, table_id, scan.prune, snapshot
            )
    if report is not None:
        report["files"] = len(full_snapshot.files)
        report["files_pruned"] = len(full_snapshot.files) - len(snapshot.files)
        report["row_groups"] = 0
        report["row_groups_pruned"] = 0
        # The planner's base-cardinality statistic: live rows in the
        # unpruned snapshot (file rows minus deletion-vector rows).
        live = sum(info.num_rows for info in full_snapshot.files.values()) - sum(
            dv.cardinality for dv in full_snapshot.dvs.values()
        )
        report["est_rows"] = max(int(live), 0)
    cells = [
        cell
        for cell in cells_for_snapshot(table_id, snapshot, context.config.distributions)
        if cell.files
    ]
    if report is not None:
        report["cells"] = len(cells)
    if not cells:
        _publish_scan_stats(context, table_id, full_snapshot)
        if report is not None:
            report["rows"] = 0
        return empty_batch(scan.columns)

    dag = WorkflowDag()
    prune = list(scan.prune) or None
    for cell in cells:

        def scan_cell(ctx: TaskContext, cell=cell) -> Batch:
            parts: List[Batch] = []
            for info in cell.files:
                reader = _open_data_file(context, info)
                if report is not None:
                    scanned_groups, pruned_groups = reader.prune_counts(prune)
                    report["row_groups"] += scanned_groups
                    report["row_groups_pruned"] += pruned_groups
                dv = _load_dv(context, snapshot.dv_for(info.name))
                batch = reader.read(
                    columns=list(scan.columns),
                    prune=prune,
                    deletion_vector=dv,
                )
                if scan.predicate is not None and num_rows(batch):
                    batch = filter_batch(batch, scan.predicate)
                if num_rows(batch):
                    parts.append(batch)
            return concat_batches(parts) if parts else empty_batch(scan.columns)

        dag.add_task(
            Task(
                task_id=f"scan:{table_id}:{cell.distribution:04d}",
                fn=scan_cell,
                est_rows=cell.num_rows,
                est_files=len(cell.files),
                est_bytes=cell.total_bytes,
                pool="read",
            )
        )

    if context.elastic:
        total_rows = sum(cell.num_rows for cell in cells)
        context.wlm.resize_pool("read", context.autoscaler.nodes_for_query(total_rows))
    result = context.scheduler.execute(dag, wlm=context.wlm)
    parts = [
        result.results[task_id]
        for task_id in sorted(result.results)
        if num_rows(result.results[task_id])
    ]
    _publish_scan_stats(context, table_id, full_snapshot)
    out = concat_batches(parts) if parts else empty_batch(scan.columns)
    if report is not None:
        report["rows"] = num_rows(out)
    return out


def optimize_plan(
    context: ServiceContext, txn: PolarisTransaction, plan: Plan
) -> Plan:
    """Run the cost-based rewrite pass over ``plan`` (identity without
    statistics for every referenced table, or with the optimizer off)."""
    if context.optimizer is None:
        return plan
    rewritten, _ = context.optimizer.rewrite(txn, plan)
    return rewritten


def _annotations(
    context: ServiceContext,
    txn: PolarisTransaction,
    plan: Plan,
    scan_details: "Dict[int, Dict[str, Any]]",
):
    """(estimates, provenance, costs) for EXPLAIN-style rendering."""
    scan_rows = {
        scan_id: float(report.get("est_rows", 0))
        for scan_id, report in scan_details.items()
    }
    if context.optimizer is not None:
        return context.optimizer.annotate(txn, plan, scan_rows)
    return estimate_cardinalities(plan, scan_rows), None, None


def execute_query(
    context: ServiceContext,
    txn: PolarisTransaction,
    plan: Plan,
    as_of: "float | None" = None,
) -> Batch:
    """Execute a full query plan within ``txn``'s snapshot.

    The plan first passes through the cost-based optimizer (a no-op
    until statistics exist); each base scan then runs as its own
    distributed DAG; the residual plan (joins, aggregation, sort) runs
    at the root, with its CPU cost charged to the simulated clock.  With
    ``as_of``, every scan reads the tables' state at that timestamp
    instead (Query As Of).
    """
    plan = optimize_plan(context, txn, plan)
    scanned: Dict[int, Batch] = {}
    scan_rows = 0

    def source(scan: TableScan) -> Batch:
        batch = scanned[id(scan)]
        return batch

    for scan in scans_of(plan):
        override = None
        if as_of is not None:
            table_row = describe_table(txn.root, scan.table)
            override = snapshot_as_of(context, table_row["table_id"], as_of)
        batch = scan_table(context, txn, scan, snapshot_override=override)
        scanned[id(scan)] = batch
        scan_rows += num_rows(batch)

    result = execute_plan(plan, source)
    root_cost = context.cost_model.task_duration(scan_rows, 0, 0)
    context.clock.advance(root_cost)
    return result


def execute_query_analyzed(
    context: ServiceContext,
    txn: PolarisTransaction,
    plan: Plan,
    as_of: "float | None" = None,
) -> AnalyzeResult:
    """EXPLAIN ANALYZE: run ``plan`` like :func:`execute_query`, annotated.

    Identical execution path — optimizer rewrite, distributed scans
    through the DCP, residual plan at the root, root CPU cost charged to
    the clock — but every scan collects a pruning/row report and every
    operator is timed, so the result carries the annotated operator tree
    alongside the batch (estimates tagged with their ``stats``/``default``
    provenance and optimizer cost when statistics exist).
    """
    plan = optimize_plan(context, txn, plan)
    scanned: Dict[int, Batch] = {}
    scan_details: Dict[int, Dict[str, Any]] = {}
    scan_rows = 0

    def source(scan: TableScan) -> Batch:
        return scanned[id(scan)]

    for scan in scans_of(plan):
        override = None
        if as_of is not None:
            table_row = describe_table(txn.root, scan.table)
            override = snapshot_as_of(context, table_row["table_id"], as_of)
        started = context.clock.now
        report: Dict[str, Any] = {}
        batch = scan_table(
            context, txn, scan, snapshot_override=override, report=report
        )
        report["sim_time_s"] = context.clock.now - started
        scanned[id(scan)] = batch
        scan_details[id(scan)] = report
        scan_rows += num_rows(batch)

    estimates, provenance, costs = _annotations(
        context, txn, plan, scan_details
    )
    result = explain_analyze(
        plan,
        source,
        cost_model=context.cost_model,
        scan_details=scan_details,
        estimates=estimates,
        provenance=provenance,
        costs=costs,
    )
    root_cost = context.cost_model.task_duration(scan_rows, 0, 0)
    context.clock.advance(root_cost)
    return result


def execute_query_profiled(
    context: ServiceContext,
    txn: PolarisTransaction,
    plan: Plan,
    as_of: "float | None" = None,
) -> PlanProfile:
    """Run ``plan`` collecting per-operator stats without rendering text.

    The query-store execution path: identical clock charges to
    :func:`execute_query` (distributed scans, root CPU cost), plus the
    same pruning reports and operator stats as
    :func:`execute_query_analyzed` minus the annotated-tree rendering —
    cheap enough to run on every statement.  The returned profile
    carries the *optimized* plan so the query store fingerprints what
    actually ran.
    """
    plan = optimize_plan(context, txn, plan)
    scanned: Dict[int, Batch] = {}
    scan_details: Dict[int, Dict[str, Any]] = {}
    scan_rows = 0

    def source(scan: TableScan) -> Batch:
        return scanned[id(scan)]

    for scan in scans_of(plan):
        override = None
        if as_of is not None:
            table_row = describe_table(txn.root, scan.table)
            override = snapshot_as_of(context, table_row["table_id"], as_of)
        started = context.clock.now
        report: Dict[str, Any] = {}
        batch = scan_table(
            context, txn, scan, snapshot_override=override, report=report
        )
        report["sim_time_s"] = context.clock.now - started
        scanned[id(scan)] = batch
        scan_details[id(scan)] = report
        scan_rows += num_rows(batch)

    estimates, _, _ = _annotations(context, txn, plan, scan_details)
    batch, stats = run_with_stats(
        plan, source, cost_model=context.cost_model, scan_details=scan_details
    )
    root_cost = context.cost_model.task_duration(scan_rows, 0, 0)
    context.clock.advance(root_cost)
    return PlanProfile(batch=batch, stats=stats, estimates=estimates, plan=plan)


def _prune_snapshot(snapshot: TableSnapshot, prune) -> TableSnapshot:
    """A snapshot view keeping only files whose zone maps may match."""
    prune = tuple(prune)
    kept = {
        name: info
        for name, info in snapshot.files.items()
        if info.may_match(prune)
    }
    if len(kept) == len(snapshot.files):
        return snapshot
    return TableSnapshot(
        sequence_id=snapshot.sequence_id,
        files=kept,
        dvs={name: dv for name, dv in snapshot.dvs.items() if name in kept},
        tombstones=snapshot.tombstones,
    )


def _publish_scan_stats(context: ServiceContext, table_id, snapshot) -> None:
    stats = collect_stats(table_id, snapshot, context.config.sto)
    context.bus.publish(
        "stats.table",
        table_id=table_id,
        stats=stats,
    )
