"""Physical-metadata IO: manifests and checkpoints between catalog and store.

The ``Manifests`` catalog table holds *names*; the manifest *contents*
live in the object store.  This module bridges the two for the BE snapshot
cache: loading committed manifests for a sequence range and loading the
newest checkpoint at or below a sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.common.errors import BlobNotFoundError, IntegrityError
from repro.lst.actions import Action
from repro.lst.cache import SnapshotCache
from repro.lst.checkpoint import Checkpoint
from repro.lst.manifest import decode_manifest
from repro.lst.snapshot import TableSnapshot
from repro.sqldb import system_tables as catalog
from repro.storage.retry import with_retries

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.fe.context import ServiceContext


def load_manifest_actions(context: "ServiceContext", path: str) -> List[Action]:
    """Fetch and decode one manifest file from the object store."""
    blob = with_retries(
        lambda: context.store.get(path),
        telemetry=context.telemetry,
        label="manifest_load",
        clock=context.clock,
        config=context.config.storage,
        seed=context.config.seed,
    )
    return decode_manifest(blob.data)


def make_snapshot_cache(context: "ServiceContext") -> SnapshotCache:
    """Build the BE snapshot cache wired to this deployment's loaders.

    Both loaders read the *latest committed* catalog state: manifest rows
    are append-only per table with monotonically increasing sequence ids,
    so filtering by sequence range reproduces any transaction's SI view.
    """

    def load_manifests(
        table_id: int, lo_exclusive: int, hi_inclusive: int
    ) -> List[Tuple[int, float, List[Action]]]:
        txn = context.sqldb.begin()
        try:
            rows = catalog.manifests_for_table(
                txn, table_id, lo_exclusive, hi_inclusive
            )
        finally:
            txn.abort()
        out = []
        for row in rows:
            out.append(
                (
                    row["sequence_id"],
                    row["committed_at"],
                    load_manifest_actions(context, row["manifest_path"]),
                )
            )
        return out

    def load_checkpoint(table_id: int, max_seq: int) -> Optional[TableSnapshot]:
        txn = context.sqldb.begin()
        try:
            row = catalog.latest_checkpoint(txn, table_id, max_seq)
        finally:
            txn.abort()
        if row is None:
            return None
        try:
            blob = with_retries(
                lambda: context.store.get(row["path"]),
                telemetry=context.telemetry,
                label="checkpoint_load",
                clock=context.clock,
                config=context.config.storage,
                seed=context.config.seed,
            )
        except (BlobNotFoundError, IntegrityError):
            # Checkpoints are an acceleration, not a source of truth: a
            # missing *or corrupt* checkpoint degrades to manifest replay
            # (detection was already counted by the store); the scrubber
            # quarantines and re-materializes it out of band.
            return None
        return Checkpoint.from_bytes(blob.data).snapshot

    return SnapshotCache(load_manifests, load_checkpoint)
