"""Optional unique-key enforcement (Section 4.4.3).

The paper deliberately does **not** enforce Unique/Primary Key
constraints: checking for duplicates "will have a severe impact on all
changes, including inserts", which is unacceptable for insert-heavy
analytics.  The reproduction implements enforcement as an opt-in table
property precisely so that the cost the paper cites can be measured — see
``benchmarks/bench_ablation_unique_constraints.py``.

Enforcement strategy (the cheapest sound one available to an LST engine):
on insert, (1) reject intra-batch duplicates, then (2) anti-join the batch
keys against the table's current snapshot, reading only the key column of
files whose zone maps overlap the batch's key range.  The check runs
inside the inserting transaction's snapshot; under SI, two concurrent
inserts of the same key can still both commit (the paper's other reason to
avoid the feature), which the tests document.
"""

from __future__ import annotations

from typing import Any, Dict, Set

import numpy as np

from repro.common.errors import PolarisError
from repro.engine.batch import Batch
from repro.fe.context import ServiceContext
from repro.fe.transaction import PolarisTransaction
from repro.fe.write_path import _load_dv, _open_data_file


class UniqueConstraintViolation(PolarisError):
    """An insert would duplicate values of a unique column."""


def check_unique(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_row: Dict[str, Any],
    batch: Batch,
) -> None:
    """Raise :class:`UniqueConstraintViolation` if the insert is invalid.

    No-op for tables without a ``unique_column`` property.
    """
    column = table_row.get("unique_column")
    if column is None:
        return
    values = np.asarray(batch[column])
    if len(values) == 0:
        return
    unique_count = len(np.unique(values)) if values.dtype.kind != "O" else len(
        set(values.tolist())
    )
    if unique_count != len(values):
        raise UniqueConstraintViolation(
            f"insert batch contains duplicate values of {column!r}"
        )
    incoming: Set[Any] = set(values.tolist())
    lo, hi = values.min(), values.max()
    snapshot = txn.table_snapshot(table_row["table_id"])
    for info in snapshot.files.values():
        bounds = info.stats_for(column)
        if bounds is not None and (bounds[1] < lo or bounds[0] > hi):
            continue  # zone maps prove no overlap
        reader = _open_data_file(context, info)
        existing = reader.read(
            columns=[column],
            deletion_vector=_load_dv(context, snapshot.dv_for(info.name)),
        )[column]
        clash = incoming.intersection(existing.tolist())
        if clash:
            sample = sorted(clash)[:3]
            raise UniqueConstraintViolation(
                f"values {sample} of {column!r} already exist in "
                f"{table_row['name']!r}"
            )
