"""Logical metadata operations (DDL) over the SQL DB catalog.

Table rows carry the logical schema plus the designated distribution
column (the ``d(r)`` function of Figure 2).  DDL runs inside the caller's
root transaction, so CREATE TABLE participates in Snapshot Isolation like
any other statement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.common.errors import CatalogError
from repro.fe.context import ServiceContext
from repro.pagefile.schema import Schema
from repro.sqldb import system_tables as tables
from repro.sqldb.transaction import SqlDbTransaction


def create_table(
    context: ServiceContext,
    txn: SqlDbTransaction,
    name: str,
    schema: Schema,
    distribution_column: Optional[str] = None,
    sort_column: Union[str, Sequence[str], None] = None,
    unique_column: Optional[str] = None,
) -> int:
    """Create a logical table; returns its table id.

    ``distribution_column`` is the hash function d(r) that spreads rows
    across cells; ``sort_column`` is the partitioning function p(r) that
    orders rows inside each data file for range retrieval (Figure 2 /
    Section 2.3 — the engine's stand-in for Z-ordering on one key);
    ``unique_column`` opts into unique-key enforcement, which the paper
    deliberately leaves off by default (Section 4.4.3).
    """
    if tables.find_table_by_name(txn, name) is not None:
        raise CatalogError(f"table {name!r} already exists")
    sort_columns = (
        [sort_column] if isinstance(sort_column, str)
        else list(sort_column or [])
    )
    if len(sort_columns) > 3:
        raise CatalogError("composite sort keys support at most 3 columns")
    checked = [("distribution", distribution_column), ("unique", unique_column)]
    checked.extend(("sort", column) for column in sort_columns)
    for label, column in checked:
        if column is not None and column not in schema:
            raise CatalogError(f"{label} column {column!r} not in schema")
    table_id = context.table_ids.next()
    row_schema = schema.to_dict()
    tables.insert_table(txn, table_id, name, row_schema, context.clock.now)
    extras = {}
    if distribution_column is not None:
        extras["distribution_column"] = distribution_column
    if sort_column is not None:
        # Normalized so backups (JSON) round-trip identically.
        extras["sort_column"] = (
            sort_column if isinstance(sort_column, str) else list(sort_column)
        )
    if unique_column is not None:
        extras["unique_column"] = unique_column
    if extras:
        # Stored alongside the schema in the Tables row.
        txn.upsert(
            tables.TABLES, (table_id,), lambda old: {**(old or {}), **extras}
        )
    return table_id


def describe_table(txn: SqlDbTransaction, name: str) -> Dict[str, Any]:
    """Catalog row of a table by name; raises if unknown."""
    row = tables.find_table_by_name(txn, name)
    if row is None:
        raise CatalogError(f"unknown table {name!r}")
    return row


def table_schema(row: Dict[str, Any]) -> Schema:
    """Parse the schema out of a Tables row."""
    return Schema.from_dict(row["schema"])


def list_table_names(txn: SqlDbTransaction) -> List[str]:
    """Names of all visible tables."""
    return sorted(row["name"] for row in tables.list_tables(txn))
