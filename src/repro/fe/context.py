"""The service context: every component a session or system task needs.

One :class:`ServiceContext` is assembled per warehouse by
:class:`repro.warehouse.Warehouse` and threaded through the FE, the STO
and the benchmarks.  Keeping it a plain bundle (rather than globals) makes
every test hermetic — two warehouses never share state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.clock import SimulatedClock
from repro.common.config import PolarisConfig
from repro.common.events import EventBus
from repro.common.ids import GuidGenerator, MonotonicSequence
from repro.dcp.autoscaler import Autoscaler
from repro.dcp.costmodel import CostModel
from repro.dcp.scheduler import Scheduler
from repro.dcp.wlm import WorkloadManager
from repro.lst.cache import SnapshotCache
from repro.sqldb.engine import SqlDbEngine
from repro.storage.object_store import ObjectStore
from repro.telemetry.facade import Telemetry
from repro.telemetry.timeseries import MetricsSampler, Watchdog, default_rules

if TYPE_CHECKING:
    from repro.optimizer.manager import QueryOptimizer
    from repro.service.gateway import Gateway
    from repro.telemetry.introspection import Introspector


@dataclass
class ServiceContext:
    """Shared infrastructure of one Polaris deployment."""

    database: str
    config: PolarisConfig
    clock: SimulatedClock
    store: ObjectStore
    sqldb: SqlDbEngine
    wlm: WorkloadManager
    scheduler: Scheduler
    autoscaler: Autoscaler
    cost_model: CostModel
    cache: SnapshotCache
    guids: GuidGenerator
    bus: EventBus
    #: Span tracing + metrics for the whole deployment.
    telemetry: Telemetry
    #: Resolves ``sys.dm_*`` system-view names (attached after
    #: construction, like the cache — it subscribes to the bus).
    introspection: "Optional[Introspector]" = None
    #: Cost-based query optimizer: ANALYZE statistics, secondary indexes
    #: and plan rewriting (attached after construction; it reads the
    #: catalog through each statement's transaction).
    optimizer: "Optional[QueryOptimizer]" = None
    #: The multi-tenant gateway fronting this deployment, if one was
    #: constructed (it attaches itself; ``sys.dm_sessions`` /
    #: ``sys.dm_requests`` read it and recovery scavenges it).
    gateway: "Optional[Gateway]" = None
    #: Whether the deployment sizes pools per statement (serverless Fabric
    #: model) or keeps the fixed provisioned size (Synapse SQL DW model) —
    #: the contrast of Figure 8.
    elastic: bool = True
    #: Allocates logical table ids.
    table_ids: MonotonicSequence = field(
        default_factory=lambda: MonotonicSequence(start=1001)
    )

    @classmethod
    def create(
        cls,
        database: str = "dw",
        config: Optional[PolarisConfig] = None,
        elastic: bool = True,
        separate_pools: bool = True,
    ) -> "ServiceContext":
        """Wire a fresh deployment with a shared clock across components."""
        config = config or PolarisConfig()
        config.validate()
        clock = SimulatedClock()
        telemetry = Telemetry(clock, config.telemetry, seed=config.seed)
        store = ObjectStore(
            clock=clock, config=config.storage, telemetry=telemetry
        )
        sqldb = SqlDbEngine(clock=clock)
        cost_model = CostModel(config.dcp, config.storage)
        scheduler = Scheduler(
            clock, store, cost_model, config.dcp, telemetry=telemetry
        )
        wlm = WorkloadManager(config.dcp, separate_pools=separate_pools)
        bus = EventBus()
        telemetry.attach_bus(bus)
        context = cls(
            database=database,
            config=config,
            clock=clock,
            store=store,
            sqldb=sqldb,
            wlm=wlm,
            scheduler=scheduler,
            autoscaler=Autoscaler(config.dcp),
            cost_model=cost_model,
            cache=None,  # type: ignore[arg-type]  -- set just below
            guids=GuidGenerator(seed=config.seed),
            bus=bus,
            telemetry=telemetry,
            elastic=elastic,
        )
        # The cache's loaders need the context (store + sqldb), so it is
        # attached after construction.
        from repro.fe.manifest_io import make_snapshot_cache

        context.cache = make_snapshot_cache(context)
        # The introspector needs the assembled context (bus, cache, sqldb)
        # to subscribe its transaction ledger and resolve sys.dm_* views.
        from repro.telemetry.introspection import Introspector

        context.introspection = Introspector(context)
        # The optimizer needs the assembled context (store, clock, cost
        # model, telemetry) to scan snapshots and charge IO.
        from repro.optimizer.manager import QueryOptimizer

        context.optimizer = QueryOptimizer(context)
        if config.telemetry.query_store_enabled:
            from repro.telemetry.querystore import QueryStore

            telemetry.querystore = QueryStore(
                clock,
                config.telemetry,
                metrics=telemetry.metrics if telemetry.metering else None,
                bus=bus,
                seed=config.seed,
            )
        if config.telemetry.wait_stats_enabled:
            from repro.telemetry.waits import WaitStats

            telemetry.waits = WaitStats(
                clock,
                config.telemetry,
                metrics=telemetry.metrics if telemetry.metering else None,
                tracer=telemetry.tracer if telemetry.tracing else None,
                seed=config.seed,
            )
        # The engine (and its commit lock) predates telemetry wiring, so
        # the contention model and its sinks are bound afterwards.
        sqldb.commit_lock.configure(
            hold_s=config.txn.commit_hold_s,
            waits=telemetry.waits,
            metrics=telemetry.metrics if telemetry.metering else None,
        )
        if telemetry.metering and config.telemetry.sample_interval_s > 0:
            sampler = MetricsSampler(
                clock,
                telemetry.metrics,
                interval_s=config.telemetry.sample_interval_s,
                capacity=config.telemetry.sample_capacity,
            )
            telemetry.sampler = sampler
            if config.telemetry.watchdog_enabled:
                telemetry.watchdog = Watchdog(
                    telemetry.metrics, bus, rules=default_rules()
                )
                sampler.subscribe(telemetry.watchdog.observe)
            sampler.start()
        return context
