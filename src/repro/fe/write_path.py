"""Distributed execution of write statements (Sections 3.2.2, 4.3).

Every DML statement compiles to a DCP workflow DAG whose tasks target
disjoint cells, so manifest entries never need merging across BE nodes:

* **insert** — one task per target distribution; each writes a private
  data file and stages a manifest block with its ``AddDataFile`` action.
* **bulk load** — one task per *source file* (reading within a source file
  does not scale out; this is the bottleneck shape of Figure 7).
* **delete** — one task per cell; each computes matched row positions per
  data file, writes merged deletion-vector files, and stages
  ``RemoveDeletionVector``/``AddDeletionVector`` blocks.
* **update** — delete plus insert in one statement: matched rows are
  DV-masked in place and re-written (with assignments applied) as new
  data files in the same cell.

The FE aggregates the block ids returned by the tasks and flushes the
transaction manifest: appends for inserts, a reconciling rewrite for
updates/deletes (Section 3.2.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import SchemaMismatchError
from repro.dcp.cells import cells_for_snapshot, distribution_of
from repro.dcp.channels import estimate_batch_bytes
from repro.dcp.dag import WorkflowDag
from repro.dcp.tasks import Task, TaskContext
from repro.engine.batch import Batch, num_rows
from repro.engine.expressions import Expr, evaluate
from repro.engine.zorder import zorder_permutation
from repro.fe.catalog import table_schema
from repro.fe.context import ServiceContext
from repro.fe.transaction import PolarisTransaction
from repro.lst.actions import (
    Action,
    AddDataFile,
    AddDeletionVector,
    DataFileInfo,
    DeletionVectorInfo,
    RemoveDeletionVector,
)
from repro.lst.manifest import encode_actions
from repro.pagefile.deletion_vector import DeletionVector
from repro.pagefile.file_format import write_page_file
from repro.pagefile.reader import PageFileReader
from repro.pagefile.schema import Schema
from repro.pagefile.stats import compute_stats
from repro.storage import paths
from repro.storage.integrity import CHECKSUM_KEY, verify_checksum


# -- shared helpers -------------------------------------------------------------


def _file_stamp(txn: PolarisTransaction) -> Dict[str, str]:
    """Creation metadata the garbage collector keys on (Section 5.3)."""
    return {
        "creator_txid": str(txn.txid),
        "creator_begin_ts": repr(txn.begin_ts),
    }


def _write_data_file(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_id: int,
    schema: Schema,
    columns: Batch,
    distribution: int,
    sort_column: "str | Sequence[str] | None" = None,
) -> DataFileInfo:
    """Write one private data file; returns its manifest descriptor.

    With ``sort_column`` (the table's partitioning function p(r),
    Section 2.3) rows are ordered before writing, which tightens both the
    row-group zone maps inside the file and the file-level zone maps
    recorded in the manifest.  A composite key (a list of columns) orders
    rows along the Z-curve instead, so range predicates on any of the
    participating columns stay selective.
    """
    if sort_column is not None and num_rows(columns) > 1:
        if isinstance(sort_column, str):
            order = np.argsort(columns[sort_column], kind="stable")
        else:
            order = zorder_permutation(columns, sort_column)
        columns = {name: values[order] for name, values in columns.items()}
    name = context.guids.next() + ".rpf"
    path = paths.data_file_path(context.database, table_id, name)
    data = write_page_file(
        schema, columns, row_group_size=context.config.row_group_size
    )
    blob = context.store.put(path, data, metadata=_file_stamp(txn))
    return DataFileInfo(
        name=name,
        path=path,
        num_rows=num_rows(columns),
        size_bytes=len(data),
        distribution=distribution,
        column_stats=_file_column_stats(schema, columns),
        checksum=blob.metadata.get(CHECKSUM_KEY, ""),
    )


def _file_column_stats(schema: Schema, columns: Batch):
    """File-level (column, min, max) zone maps for the manifest entry."""
    stats = []
    for fld in schema:
        if fld.type == "bool":
            continue  # pruning on bools is never worthwhile
        summary = compute_stats(fld, np.asarray(columns[fld.name]))
        if summary.minimum is not None:
            stats.append((fld.name, summary.minimum, summary.maximum))
    return tuple(stats)


def _write_dv_file(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_id: int,
    target_file: str,
    vector: DeletionVector,
) -> DeletionVectorInfo:
    """Write one private deletion-vector file."""
    name = context.guids.next() + ".rdv"
    path = paths.dv_file_path(context.database, table_id, name)
    data = vector.to_bytes()
    blob = context.store.put(path, data, metadata=_file_stamp(txn))
    return DeletionVectorInfo(
        name=name,
        path=path,
        target_file=target_file,
        cardinality=vector.cardinality,
        size_bytes=len(data),
        checksum=blob.metadata.get(CHECKSUM_KEY, ""),
    )


def _open_data_file(context: ServiceContext, info: DataFileInfo) -> PageFileReader:
    """Open one data file with both verification layers applied.

    The store's ``get`` verifies the blob against its own metadata
    checksum; the cross-check here verifies against the manifest's
    mirrored checksum (catching a swapped blob whose metadata was
    rewritten); and the reader gets the blob path so format errors are
    self-describing.
    """
    blob = context.store.get(info.path)
    verify_checksum(info.path, blob.data, info.checksum, telemetry=context.telemetry)
    return PageFileReader(blob.data, source=info.path)


def _load_dv(
    context: ServiceContext, info: Optional[DeletionVectorInfo]
) -> Optional[DeletionVector]:
    if info is None:
        return None
    blob = context.store.get(info.path)
    # Cross-check against the manifest's mirrored checksum: the store's own
    # metadata already verified, but a swapped blob would pass that and
    # fail here.
    verify_checksum(info.path, blob.data, info.checksum, telemetry=context.telemetry)
    return DeletionVector.from_bytes(blob.data)


def _resize_write_pool(context: ServiceContext, rows: int, source_files: int) -> None:
    if context.elastic:
        context.wlm.resize_pool(
            "write", context.autoscaler.nodes_for_load(rows, source_files)
        )


def _validate_batch(schema: Schema, batch: Batch) -> int:
    try:
        return schema.validate_columns(
            {name: np.asarray(values) for name, values in batch.items()}
        )
    except SchemaMismatchError:
        raise


# -- insert ----------------------------------------------------------------------


def execute_insert(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_row: Dict[str, Any],
    batch: Batch,
) -> int:
    """Insert a batch; returns the number of rows inserted."""
    table_id = table_row["table_id"]
    schema = table_schema(table_row)
    total = _validate_batch(schema, batch)
    if total == 0:
        return 0
    assignments = _distribution_assignment(context, table_row, batch, total)
    sort_column = table_row.get("sort_column")
    dag = WorkflowDag()
    state = txn.write_state(table_id)

    for distribution in sorted(set(assignments.tolist())):
        rows = np.flatnonzero(assignments == distribution)
        part = {name: values[rows] for name, values in batch.items()}

        def write_part(
            ctx: TaskContext, part: Batch = part, distribution: int = distribution
        ) -> Tuple[List[str], List[Action], int]:
            info = _write_data_file(
                context, txn, table_id, schema, part, distribution,
                sort_column=sort_column,
            )
            actions: List[Action] = [AddDataFile(info)]
            writer = txn.manifest_writer(table_id)
            block_id = writer.write_block(encode_actions(actions))
            return [block_id], actions, info.num_rows

        dag.add_task(
            Task(
                task_id=f"insert:{table_id}:{distribution}",
                fn=write_part,
                est_rows=len(rows),
                est_files=1,
                est_bytes=estimate_batch_bytes(part),
                pool="write",
            )
        )

    _resize_write_pool(context, total, len(dag))
    result = context.scheduler.execute(dag, wlm=context.wlm)
    block_ids, actions = _collect_write_results(result.results)
    txn.flush_insert(table_id, block_ids, actions)
    state.rows_inserted += total
    return total


def execute_bulk_load(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_row: Dict[str, Any],
    source_batches: Sequence[Batch],
    advance_clock: bool = True,
) -> int:
    """Bulk load: one task per source file (Figure 7's unit of parallelism).

    With ``advance_clock=False`` the statement's simulated duration is laid
    out on the pool's slot timelines but the shared clock stays put — the
    load runs *logically concurrent* with whatever the caller does next
    (used by the concurrency benchmarks).
    """
    table_id = table_row["table_id"]
    schema = table_schema(table_row)
    totals = [_validate_batch(schema, batch) for batch in source_batches]
    total = sum(totals)
    if total == 0:
        return 0
    dag = WorkflowDag()
    distributions = context.config.distributions
    sort_column = table_row.get("sort_column")

    for index, batch in enumerate(source_batches):
        if totals[index] == 0:
            continue

        def load_source(
            ctx: TaskContext, batch: Batch = batch, index: int = index
        ) -> Tuple[List[str], List[Action], int]:
            info = _write_data_file(
                context, txn, table_id, schema, batch, index % distributions,
                sort_column=sort_column,
            )
            actions: List[Action] = [AddDataFile(info)]
            writer = txn.manifest_writer(table_id)
            block_id = writer.write_block(encode_actions(actions))
            return [block_id], actions, info.num_rows

        dag.add_task(
            Task(
                task_id=f"load:{table_id}:{index:05d}",
                fn=load_source,
                est_rows=totals[index],
                est_files=1,
                est_bytes=estimate_batch_bytes(batch),
                pool="write",
            )
        )

    _resize_write_pool(context, total, len(dag))
    result = context.scheduler.execute(
        dag, wlm=context.wlm, advance_clock=advance_clock
    )
    block_ids, actions = _collect_write_results(result.results)
    txn.flush_insert(table_id, block_ids, actions)
    txn.write_state(table_id).rows_inserted += total
    return total


# -- delete ------------------------------------------------------------------------


def execute_delete(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_row: Dict[str, Any],
    predicate: Expr,
    prune: Sequence[Tuple[str, str, Any]] = (),
) -> int:
    """Delete matching rows; returns how many rows were marked deleted."""
    deleted, __ = _execute_mutation(
        context, txn, table_row, predicate, prune, assignments=None
    )
    return deleted


def execute_update(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_row: Dict[str, Any],
    predicate: Expr,
    assignments: Dict[str, Expr],
    prune: Sequence[Tuple[str, str, Any]] = (),
) -> int:
    """Update matching rows (delete + re-insert); returns rows updated."""
    __, updated = _execute_mutation(
        context, txn, table_row, predicate, prune, assignments=assignments
    )
    return updated


def _execute_mutation(
    context: ServiceContext,
    txn: PolarisTransaction,
    table_row: Dict[str, Any],
    predicate: Expr,
    prune: Sequence[Tuple[str, str, Any]],
    assignments: Optional[Dict[str, Expr]],
) -> Tuple[int, int]:
    """Shared delete/update body.  Returns (rows_deleted, rows_rewritten)."""
    table_id = table_row["table_id"]
    schema = table_schema(table_row)
    snapshot = txn.table_snapshot(table_id)
    cells = [
        cell
        for cell in cells_for_snapshot(table_id, snapshot, context.config.distributions)
        if cell.files
    ]
    if not cells:
        return 0, 0
    dag = WorkflowDag()
    prune_list = list(prune)

    for cell in cells:

        def mutate_cell(
            ctx: TaskContext, cell=cell
        ) -> Tuple[List[str], List[Action], int, List[str]]:
            actions: List[Action] = []
            touched: List[str] = []
            matched_rows: List[Batch] = []
            n_matched = 0
            for info in cell.files:
                if prune_list and not info.may_match(tuple(prune_list)):
                    continue
                reader = _open_data_file(context, info)
                existing_info = snapshot.dv_for(info.name)
                existing_dv = _load_dv(context, existing_info)
                batch = reader.read(
                    prune=prune_list or None,
                    deletion_vector=existing_dv,
                    with_positions=True,
                )
                if num_rows(batch) == 0:
                    continue
                match = evaluate(predicate, batch).astype(bool)
                if not match.any():
                    continue
                positions = batch["__pos__"][match]
                new_dv = DeletionVector(positions.tolist())
                if existing_dv is not None:
                    new_dv = existing_dv.union(new_dv)
                dv_info = _write_dv_file(context, txn, table_id, info.name, new_dv)
                if existing_info is not None:
                    actions.append(RemoveDeletionVector(existing_info))
                actions.append(AddDeletionVector(dv_info))
                touched.append(info.name)
                n_matched += int(match.sum())
                if assignments is not None:
                    kept = {
                        name: values[match]
                        for name, values in batch.items()
                        if name != "__pos__"
                    }
                    matched_rows.append(kept)
            if assignments is not None and matched_rows:
                updated = _apply_assignments(matched_rows, assignments, schema)
                info = _write_data_file(
                    context, txn, table_id, schema, updated, cell.distribution,
                    sort_column=table_row.get("sort_column"),
                )
                actions.append(AddDataFile(info))
            if not actions:
                return [], [], 0, []
            writer = txn.manifest_writer(table_id)
            block_id = writer.write_block(encode_actions(actions))
            return [block_id], actions, n_matched, touched

        dag.add_task(
            Task(
                task_id=f"mutate:{table_id}:{cell.distribution:04d}",
                fn=mutate_cell,
                est_rows=cell.num_rows,
                est_files=len(cell.files),
                est_bytes=cell.total_bytes,
                pool="write",
            )
        )

    if context.elastic:
        total_rows = sum(cell.num_rows for cell in cells)
        context.wlm.resize_pool(
            "write", context.autoscaler.nodes_for_query(total_rows)
        )
    result = context.scheduler.execute(dag, wlm=context.wlm)

    new_actions: List[Action] = []
    touched_all: List[str] = []
    total_matched = 0
    for task_id in sorted(result.results):
        __, actions, matched, touched = result.results[task_id]
        new_actions.extend(actions)
        touched_all.extend(touched)
        total_matched += matched
    if not new_actions:
        return 0, 0
    state = txn.write_state(table_id)
    state.has_update_or_delete = True
    state.touched_files.update(touched_all)
    state.rows_deleted += total_matched
    txn.flush_rewrite(table_id, new_actions)
    return total_matched, (total_matched if assignments is not None else 0)


def _apply_assignments(
    matched_rows: List[Batch], assignments: Dict[str, Expr], schema: Schema
) -> Batch:
    from repro.engine.batch import concat_batches

    merged = concat_batches(matched_rows)
    out: Batch = {}
    for fld in schema:
        if fld.name in assignments:
            out[fld.name] = evaluate(assignments[fld.name], merged)
        else:
            out[fld.name] = merged[fld.name]
    return out


def _distribution_assignment(
    context: ServiceContext, table_row: Dict[str, Any], batch: Batch, total: int
) -> np.ndarray:
    column = table_row.get("distribution_column")
    if column is not None:
        return distribution_of(np.asarray(batch[column]), context.config.distributions)
    return np.arange(total, dtype=np.int64) % context.config.distributions


def _collect_write_results(results: Dict[str, Any]) -> Tuple[List[str], List[Action]]:
    block_ids: List[str] = []
    actions: List[Action] = []
    for task_id in sorted(results):
        ids, acts, __ = results[task_id]
        block_ids.extend(ids)
        actions.extend(acts)
    return block_ids, actions
