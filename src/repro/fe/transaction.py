"""Polaris user transactions (Sections 3 and 4).

A :class:`PolarisTransaction` pairs a *root* SQL DB transaction in the FE
(holding the catalog view and, at commit, the validation phase) with
per-table write state: the transaction manifest file, its committed block
list, the reconciled action overlay, and the set of touched data files for
conflict detection.

Life cycle:

* **Read phase** — statements capture table snapshots through the root
  transaction's SI view of the ``Manifests`` table, overlay the
  transaction's own manifest, and execute through the DCP.
* **Validation phase** (:meth:`commit`) — WriteSets upserts for every
  table (or data file) the transaction updated/deleted, then Manifests
  inserts stamped with the commit sequence under the commit lock, then the
  root commit.  First-committer-wins: a conflicting concurrent committer
  causes :class:`~repro.common.errors.WriteConflictError` and an automatic
  rollback that leaves no visible trace (private files become GC orphans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.chaos.crashpoints import crashpoint
from repro.common.errors import SimulatedCrash, TransactionStateError
from repro.fe.context import ServiceContext
from repro.lst.actions import Action
from repro.lst.manifest import encode_actions, reconcile_actions
from repro.lst.snapshot import TableSnapshot
from repro.sqldb import system_tables as catalog
from repro.sqldb.transaction import IsolationLevel, SqlDbTransaction, TxnState
from repro.storage import paths
from repro.storage.block_blob import BlockBlobClient
from repro.storage.retry import with_retries

_ISOLATION_MAP = {
    "snapshot": IsolationLevel.SNAPSHOT,
    "rcsi": IsolationLevel.RCSI,
    "serializable": IsolationLevel.SERIALIZABLE,
}


@dataclass
class TableWriteState:
    """Per-(transaction, table) write-side bookkeeping."""

    table_id: int
    manifest_name: str
    manifest_path: str
    committed_block_ids: List[str] = field(default_factory=list)
    #: Reconciled net actions of all statements so far (the overlay).
    actions: List[Action] = field(default_factory=list)
    #: Names of *pre-existing* data files this transaction updated/deleted
    #: (the conflict units for file-granularity detection).
    touched_files: Set[str] = field(default_factory=set)
    has_update_or_delete: bool = False
    rows_inserted: int = 0
    rows_deleted: int = 0


class PolarisTransaction:
    """One user transaction, possibly spanning statements and tables."""

    def __init__(
        self, context: ServiceContext, isolation: Optional[str] = None
    ) -> None:
        self._context = context
        level = _ISOLATION_MAP[isolation or context.config.txn.isolation]
        self.isolation = level
        self.root: SqlDbTransaction = context.sqldb.begin(level)
        self.guid = context.guids.next()
        self._writes: Dict[int, TableWriteState] = {}
        self.retries = 0
        #: Root telemetry span covering the whole transaction (None when
        #: tracing is off).  Statements activate it as their parent.
        self.span = context.telemetry.start_span(
            "txn", "txn", txid=self.txid, isolation=level.value
        )
        # Lifecycle events feed the SI history sanitizer
        # (repro.analysis.si): begin snapshot, observed reads, committed
        # write-set.  No subscribers -> near-zero cost.
        context.bus.publish(
            "txn.begin",
            txid=self.txid,
            begin_seq=self.root.begin_seq,
            begin_ts=self.root.begin_ts,
            isolation=level.value,
        )

    def _end_span(self, status: str, **attributes) -> None:
        if self.span is not None:
            self._context.telemetry.end_span(self.span, status=status, **attributes)

    # -- status ----------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Whether statements can still run in this transaction."""
        return self.root.state is TxnState.ACTIVE

    @property
    def txid(self) -> int:
        """The durable SQL DB transaction id."""
        return self.root.txid

    @property
    def begin_ts(self) -> float:
        """Simulated begin time (stamps private files for GC)."""
        return self.root.begin_ts

    def _require_active(self) -> None:
        if not self.is_active:
            raise TransactionStateError(
                f"transaction {self.txid} is {self.root.state.value}"
            )

    # -- read phase: snapshots ---------------------------------------------------

    def visible_sequence(self, table_id: int) -> int:
        """Highest manifest sequence of ``table_id`` visible to this txn.

        Read through the root transaction so SI/RCSI visibility rules (and
        serializable read-set tracking) apply exactly as the paper
        describes: the snapshot *is* the root transaction's view of the
        ``Manifests`` table.
        """
        self._require_active()
        rows = catalog.manifests_for_table(self.root, table_id)
        sequence = rows[-1]["sequence_id"] if rows else 0
        self._context.bus.publish(
            "txn.read", txid=self.txid, table_id=table_id, sequence_id=sequence
        )
        return sequence

    def committed_snapshot(self, table_id: int) -> TableSnapshot:
        """The table's committed state as visible to this transaction."""
        return self._context.cache.get(table_id, self.visible_sequence(table_id))

    def table_snapshot(self, table_id: int) -> TableSnapshot:
        """Committed snapshot overlaid with this transaction's own writes.

        This is the multi-statement rule of Section 3.2.3: subsequent
        statements see prior statements' changes by reading the current
        transaction manifest on top of the committed manifests.
        """
        snapshot = self.committed_snapshot(table_id)
        state = self._writes.get(table_id)
        if state is None or not state.actions:
            return snapshot
        return snapshot.apply_manifest(
            state.actions, snapshot.sequence_id + 1, self._context.clock.now
        )

    # -- write phase: manifest assembly ------------------------------------------

    def write_state(self, table_id: int) -> TableWriteState:
        """Get or create the write state (and manifest file name) for a table."""
        self._require_active()
        state = self._writes.get(table_id)
        if state is None:
            name = self._context.guids.next()
            state = TableWriteState(
                table_id=table_id,
                manifest_name=name,
                manifest_path=paths.manifest_path(
                    self._context.database, table_id, name
                ),
            )
            self._writes[table_id] = state
        return state

    def manifest_writer(self, table_id: int) -> BlockBlobClient:
        """A block-blob client BE tasks use to stage manifest blocks."""
        state = self.write_state(table_id)
        return BlockBlobClient(
            self._context.store, state.manifest_path, self._context.guids
        )

    def flush_insert(
        self, table_id: int, new_block_ids: List[str], new_actions: List[Action]
    ) -> None:
        """FE flush after an insert statement: append blocks to the manifest.

        Inserts have no dependency on previous changes, so the FE simply
        re-commits the old block list plus the new ids (Section 3.2.3).
        """
        state = self.write_state(table_id)
        state.committed_block_ids.extend(new_block_ids)
        crashpoint("fe.write.before_manifest_flush")
        with_retries(
            lambda: self._context.store.commit_block_list(
                state.manifest_path, state.committed_block_ids
            ),
            telemetry=self._context.telemetry,
            label="manifest_flush",
            clock=self._context.clock,
            config=self._context.config.storage,
            seed=self._context.config.seed,
        )
        crashpoint("fe.write.after_manifest_flush")
        state.actions.extend(new_actions)

    def flush_rewrite(self, table_id: int, new_actions: List[Action]) -> List[str]:
        """FE flush after an update/delete: reconcile and rewrite the manifest.

        The accumulated actions are reconciled so the manifest never
        references private files superseded within this transaction; the
        result is staged as a fresh compacted block and the manifest is
        re-committed with only the rewritten blocks.  Returns orphaned
        private-file paths (left behind for garbage collection).
        """
        state = self.write_state(table_id)
        net, orphans = reconcile_actions(state.actions + new_actions)
        state.actions = net
        writer = BlockBlobClient(
            self._context.store, state.manifest_path, self._context.guids
        )
        block_id = with_retries(
            lambda: writer.write_block(encode_actions(net)),
            telemetry=self._context.telemetry,
            label="manifest_rewrite",
            clock=self._context.clock,
            config=self._context.config.storage,
            seed=self._context.config.seed,
        )
        state.committed_block_ids = [block_id]
        crashpoint("fe.rewrite.before_manifest_flush")
        with_retries(
            lambda: self._context.store.commit_block_list(
                state.manifest_path, [block_id]
            ),
            telemetry=self._context.telemetry,
            label="manifest_rewrite",
            clock=self._context.clock,
            config=self._context.config.storage,
            seed=self._context.config.seed,
        )
        return orphans

    # -- validation phase ----------------------------------------------------------

    def commit(self) -> Optional[int]:
        """Run the validation phase; returns the commit sequence id.

        Steps (Section 4.1.2): (1) WriteSets upserts for updated/deleted
        conflict units; (2–3) under the commit lock, stamp and insert the
        Manifests rows; (4) commit the root transaction.  On conflict the
        root transaction rolls back, reverting WriteSets and Manifests
        changes, and the error propagates to the caller.
        """
        self._require_active()
        tel = self._context.telemetry
        try:
            with tel.activate(self.span):
                with tel.span("txn.commit", "txn", txid=self.txid):
                    commit_seq = self._validate_and_commit()
        except SimulatedCrash:
            # A crashed process runs no abort path: no span bookkeeping, no
            # txn.aborted event — RecoveryManager inherits the mess.
            raise
        except BaseException as exc:
            # The loser of a first-committer-wins race (or any other
            # validation failure) keeps its span — marked failed, never
            # dropped — so conflict storms are visible in traces.
            self._end_span("error", **{"error.type": type(exc).__name__})
            if tel.metering:
                tel.metrics.counter(
                    "txn.commit_failures", error=type(exc).__name__
                ).inc()
            self._context.bus.publish(
                "txn.aborted", txid=self.txid, reason=type(exc).__name__
            )
            raise
        self._end_span("ok", commit_seq=commit_seq)
        if tel.metering:
            tel.metrics.counter("txn.commits").inc()
        return commit_seq

    def _validate_and_commit(self) -> Optional[int]:
        """The validation-phase body of :meth:`commit` (Section 4.1.2)."""
        crashpoint("fe.commit.before_validation")
        dirty = [s for s in self._writes.values() if s.actions]
        granularity = self._context.config.txn.conflict_granularity
        for state in dirty:
            if not state.has_update_or_delete:
                continue
            if granularity == "file":
                for file_name in sorted(state.touched_files):
                    catalog.upsert_writeset(self.root, state.table_id, file_name)
            else:
                catalog.upsert_writeset(self.root, state.table_id)
        crashpoint("fe.commit.after_writesets")

        if dirty:
            committed_at = self._context.clock.now

            def stamp_manifests(sequence_id: int) -> None:
                for state in dirty:
                    catalog.insert_manifest(
                        self.root,
                        state.table_id,
                        state.manifest_name,
                        sequence_id,
                        self.root.txid,
                        committed_at,
                        state.manifest_path,
                    )

            self.root.set_pre_install_hook(stamp_manifests)

        commit_seq = self.root.commit()
        crashpoint("fe.commit.after_sqldb_commit")
        for state in dirty:
            self._context.bus.publish(
                "txn.committed",
                txid=self.txid,
                table_id=state.table_id,
                sequence_id=commit_seq,
                manifest_name=state.manifest_name,
                rows_inserted=state.rows_inserted,
                rows_deleted=state.rows_deleted,
            )
        self._context.bus.publish(
            "txn.finished",
            txid=self.txid,
            commit_seq=commit_seq,
            units=self._conflict_units(dirty, granularity),
            tables=[state.table_id for state in dirty],
        )
        return commit_seq

    @staticmethod
    def _conflict_units(
        dirty: List[TableWriteState], granularity: str
    ) -> List[str]:
        """The WriteSets conflict units this commit claimed (Section 4.1.2).

        Mirrors the upserts of the validation phase exactly: insert-only
        write states claim no unit (inserts never conflict), update/delete
        states claim their table or their touched files depending on the
        configured granularity.
        """
        units: List[str] = []
        for state in dirty:
            if not state.has_update_or_delete:
                continue
            if granularity == "file":
                units.extend(
                    f"file:{state.table_id}/{name}"
                    for name in sorted(state.touched_files)
                )
            else:
                units.append(f"table:{state.table_id}")
        return units

    def rollback(self) -> None:
        """Abort: discard catalog changes; private files become GC orphans."""
        if self.root.state is TxnState.ACTIVE:
            self.root.abort()
            self._end_span("rollback")
            if self._context.telemetry.metering:
                self._context.telemetry.metrics.counter("txn.rollbacks").inc()
            self._context.bus.publish(
                "txn.aborted", txid=self.txid, reason="rollback"
            )

    # -- introspection ----------------------------------------------------------------

    @property
    def modified_tables(self) -> List[int]:
        """Ids of tables with buffered physical changes."""
        return sorted(tid for tid, s in self._writes.items() if s.actions)

    def private_file_paths(self) -> List[str]:
        """Paths of files this transaction created (for tests and GC checks)."""
        out = []
        for state in self._writes.values():
            for action in state.actions:
                info = getattr(action, "file", None) or getattr(action, "dv", None)
                if action.kind in ("add_file", "add_dv") and info is not None:
                    out.append(info.path)
        return out
