"""Query As Of: snapshots at arbitrary points in time (Section 6.1).

The ``Manifests`` table records the commit time of every manifest, so the
state of a table at time ``t`` is the replay of manifests with
``committed_at <= t`` — no data copying, just metadata filtering.  The
retention period bounds how far back snapshots are guaranteed: beyond it,
garbage collection may have physically removed superseded files.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import RetentionViolationError, SnapshotNotFoundError
from repro.fe.context import ServiceContext
from repro.lst.snapshot import TableSnapshot
from repro.sqldb import system_tables as catalog


def sequence_as_of(
    context: ServiceContext, table_id: int, timestamp: float
) -> int:
    """Highest manifest sequence of ``table_id`` committed at or before ``timestamp``."""
    now = context.clock.now
    retention = context.config.sto.retention_period_s
    if timestamp < now - retention:
        raise RetentionViolationError(
            f"timestamp {timestamp} is beyond the retention period "
            f"({retention}s before {now})"
        )
    txn = context.sqldb.begin()
    try:
        table = catalog.get_table(txn, table_id)
        if table is None:
            raise SnapshotNotFoundError(f"unknown table id {table_id}")
        if timestamp < table["created_at"]:
            raise SnapshotNotFoundError(
                f"table {table_id} did not exist at {timestamp} "
                f"(created {table['created_at']})"
            )
        rows = catalog.manifests_for_table(txn, table_id)
    finally:
        txn.abort()
    eligible = [r["sequence_id"] for r in rows if r["committed_at"] <= timestamp]
    return max(eligible) if eligible else 0


def snapshot_as_of(
    context: ServiceContext, table_id: int, timestamp: Optional[float] = None
) -> TableSnapshot:
    """The table's state as of ``timestamp`` (default: now)."""
    if timestamp is None:
        timestamp = context.clock.now
    return context.cache.get(table_id, sequence_as_of(context, table_id, timestamp))
