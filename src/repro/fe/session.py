"""Sessions: the statement-level entry point users hold.

A session executes statements either inside an explicit transaction
(:meth:`begin` … :meth:`commit`/:meth:`rollback`) or in auto-commit mode
(each statement is wrapped in its own transaction, exactly as T-SQL does).
All mixes of statements are supported inside one transaction: queries,
inserts, bulk loads, updates, deletes, DDL, clones — the multi-statement,
multi-table semantics of Section 3.2.3.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import (
    SimulatedCrash,
    TransactionStateError,
    WriteConflictError,
)
from repro.engine.batch import Batch
from repro.engine.expressions import Expr
from repro.engine.planner import Plan
from repro.fe import catalog as ddl
from repro.fe import clone as clone_mod
from repro.fe import constraints, read_path, write_path
from repro.fe.context import ServiceContext
from repro.fe.transaction import PolarisTransaction
from repro.lst.snapshot import TableSnapshot
from repro.pagefile.schema import Schema


class Session:
    """One user connection to the warehouse."""

    def __init__(self, context: ServiceContext) -> None:
        self._context = context
        self._txn: Optional[PolarisTransaction] = None
        self._sql = None

    def sql(self, text: str):
        """Execute one SQL statement against this session.

        Convenience front door over :class:`repro.sql.runner.SqlSession`
        (created lazily, imported lazily to avoid a circular import):
        SELECTs return a batch, DML a row count, and ``sys.dm_*`` system
        views resolve to live engine state.
        """
        if self._sql is None:
            from repro.sql.runner import SqlSession

            self._sql = SqlSession(self)
        return self._sql.execute(text)

    # -- explicit transactions -------------------------------------------------

    def begin(self, isolation: Optional[str] = None) -> PolarisTransaction:
        """Start an explicit transaction."""
        if self._txn is not None and self._txn.is_active:
            raise TransactionStateError("a transaction is already active")
        self._txn = PolarisTransaction(self._context, isolation)
        return self._txn

    def commit(self) -> Optional[int]:
        """Commit the explicit transaction; returns its sequence id."""
        txn = self._require_txn()
        self._txn = None
        return txn.commit()

    def rollback(self) -> None:
        """Roll back the explicit transaction."""
        txn = self._require_txn()
        self._txn = None
        txn.rollback()

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is active."""
        return self._txn is not None and self._txn.is_active

    def _require_txn(self) -> PolarisTransaction:
        if self._txn is None or not self._txn.is_active:
            raise TransactionStateError("no active transaction")
        return self._txn

    # -- statements ----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: Schema,
        distribution_column: Optional[str] = None,
        sort_column: "str | Sequence[str] | None" = None,
        unique_column: Optional[str] = None,
    ) -> int:
        """CREATE TABLE; returns the table id.

        ``distribution_column`` spreads rows across cells (d(r));
        ``sort_column`` orders rows within data files for range retrieval
        (p(r), the Z-order stand-in); ``unique_column`` opts into
        unique-key enforcement — off by default because of its insert
        cost, exactly as the paper argues (Section 4.4.3).
        """
        return self._run(
            lambda txn: ddl.create_table(
                self._context, txn.root, name, schema,
                distribution_column, sort_column, unique_column,
            ),
            name="create_table",
            table=name,
        )

    def insert(self, table: str, batch: Batch) -> int:
        """INSERT a batch of rows; returns the row count."""

        def statement(txn: PolarisTransaction) -> int:
            table_row = ddl.describe_table(txn.root, table)
            constraints.check_unique(self._context, txn, table_row, batch)
            return write_path.execute_insert(self._context, txn, table_row, batch)

        return self._run(statement, name="insert", table=table)

    def bulk_load(self, table: str, source_batches: Sequence[Batch]) -> int:
        """Bulk load from multiple source files; returns total rows."""

        def statement(txn: PolarisTransaction) -> int:
            table_row = ddl.describe_table(txn.root, table)
            column = table_row.get("unique_column")
            if column is not None:
                # One check over all source files catches cross-file
                # duplicates within the statement too.
                keys = [
                    np.asarray(batch[column])
                    for batch in source_batches
                    if len(batch[column])
                ]
                if keys:
                    constraints.check_unique(
                        self._context, txn, table_row,
                        {column: np.concatenate(keys)},
                    )
            return write_path.execute_bulk_load(
                self._context, txn, table_row, source_batches
            )

        return self._run(statement, name="bulk_load", table=table)

    def delete(
        self,
        table: str,
        predicate: Expr,
        prune: Sequence[Tuple[str, str, Any]] = (),
    ) -> int:
        """DELETE matching rows; returns the number deleted."""
        return self._run(
            lambda txn: write_path.execute_delete(
                self._context, txn, ddl.describe_table(txn.root, table), predicate, prune
            ),
            name="delete",
            table=table,
        )

    def update(
        self,
        table: str,
        predicate: Expr,
        assignments: Dict[str, Expr],
        prune: Sequence[Tuple[str, str, Any]] = (),
    ) -> int:
        """UPDATE matching rows; returns the number updated."""
        return self._run(
            lambda txn: write_path.execute_update(
                self._context,
                txn,
                ddl.describe_table(txn.root, table),
                predicate,
                assignments,
                prune,
            ),
            name="update",
            table=table,
        )

    def query(self, plan: Plan, as_of: Optional[float] = None) -> Batch:
        """Execute a query plan; with ``as_of``, time-travel the scans."""
        return self._run(
            lambda txn: read_path.execute_query(self._context, txn, plan, as_of=as_of),
            name="query",
        )

    def query_profiled(
        self, plan: Plan, as_of: Optional[float] = None
    ) -> "read_path.PlanProfile":
        """Execute a query plan collecting per-operator stats.

        Identical clock charges and span shape to :meth:`query` — the
        query store routes SELECTs through here so every execution yields
        cardinality feedback (est vs actual rows per operator) without
        rendering EXPLAIN ANALYZE text.
        """
        return self._run(
            lambda txn: read_path.execute_query_profiled(
                self._context, txn, plan, as_of=as_of
            ),
            name="query",
        )

    def explain_analyze(
        self, plan: Plan, as_of: Optional[float] = None
    ) -> "read_path.AnalyzeResult":
        """EXPLAIN ANALYZE: execute ``plan`` and annotate its operators.

        Runs exactly like :meth:`query` (same DCP scans, same clock
        charges) but returns an :class:`~repro.engine.explain.AnalyzeResult`
        whose ``text`` shows per-operator rows, simulated time, and file /
        row-group pruning counts, with the output batch on ``.batch``.
        """
        return self._run(
            lambda txn: read_path.execute_query_analyzed(
                self._context, txn, plan, as_of=as_of
            ),
            name="explain_analyze",
        )

    def analyze_table(self, table: str):
        """ANALYZE: collect and persist optimizer statistics for a table.

        Scans the transaction's snapshot of ``table`` (charging the IO
        and CPU to the simulated clock) and buffers a versioned
        ``TableStats`` catalog row; commit makes it visible atomically.
        Returns the collected
        :class:`~repro.optimizer.statistics.TableStatistics`.
        """
        def statement(txn: PolarisTransaction):
            optimizer: "QueryOptimizer" = self._require_optimizer()
            return optimizer.analyze_table(txn, table)

        return self._run(statement, name="analyze", table=table)

    def create_index(self, table: str, index_name: str, column: str):
        """CREATE INDEX: build a sorted-run secondary index over a column.

        Returns the catalog payload (path, entries, covered files).
        """
        def statement(txn: PolarisTransaction):
            optimizer: "QueryOptimizer" = self._require_optimizer()
            return optimizer.create_index(txn, table, index_name, column)

        return self._run(statement, name="create_index", table=table)

    def optimized_plan(self, plan: Plan) -> Plan:
        """The plan after the cost-based rewrite (EXPLAIN's view).

        Opens a throwaway read transaction to resolve statistics and
        indexes; the plan is not executed.
        """
        txn = PolarisTransaction(self._context)
        try:
            return read_path.optimize_plan(self._context, txn, plan)
        finally:
            txn.rollback()

    def _require_optimizer(self):
        if self._context.optimizer is None:
            raise TransactionStateError(
                "this deployment has no query optimizer attached"
            )
        return self._context.optimizer

    def clone_table(
        self, source: str, target: str, as_of: Optional[float] = None
    ) -> int:
        """Zero-copy clone; returns the clone's table id."""
        return self._run(
            lambda txn: clone_mod.clone_table(
                self._context, txn.root, source, target, as_of
            ),
            name="clone_table",
            table=source,
        )

    # -- introspection --------------------------------------------------------------

    def table_snapshot(self, table: str) -> TableSnapshot:
        """Latest committed snapshot of a table (outside any transaction)."""
        txn = PolarisTransaction(self._context)
        try:
            row = ddl.describe_table(txn.root, table)
            return txn.committed_snapshot(row["table_id"])
        finally:
            txn.rollback()

    def table_names(self) -> List[str]:
        """All table names visible right now."""
        txn = self._context.sqldb.begin()
        try:
            return ddl.list_table_names(txn)
        finally:
            txn.abort()

    # -- internals ---------------------------------------------------------------------

    def _run(self, statement, name: str = "statement", **span_attrs):
        """Execute a statement in the active or an auto-commit transaction.

        Auto-commit statements whose validation hits a write-write conflict
        (e.g. an autonomous compaction committed mid-statement) are
        transparently re-executed on a fresh snapshot, up to
        ``config.txn.commit_retries`` times — the paper's "retried
        otherwise".  Statements inside an explicit transaction are never
        retried: the whole user transaction aborted, and only the user can
        decide to re-run it.

        Every execution runs under a statement span that is a child of the
        transaction's root span, so traces show statement nesting for both
        explicit and auto-commit transactions.
        """
        if self._txn is not None and self._txn.is_active:
            return self._traced(statement, self._txn, name, span_attrs)
        attempts = 1 + max(0, self._context.config.txn.commit_retries)
        for attempt in range(1, attempts + 1):
            txn = PolarisTransaction(self._context)
            txn.retries = attempt - 1
            try:
                result = self._traced(statement, txn, name, span_attrs)
            except SimulatedCrash:
                # A dead process cannot roll back; recovery scavenges the
                # transaction from the engine's active registry instead.
                raise
            except BaseException:
                txn.rollback()
                raise
            try:
                txn.commit()
            except WriteConflictError:
                if attempt == attempts:
                    raise
                continue
            return result
        raise AssertionError("unreachable")

    def _traced(self, statement, txn, name, span_attrs):
        """Run one statement body under a span parented to the transaction."""
        tel = self._context.telemetry
        if not tel.tracing:
            return statement(txn)
        with tel.activate(txn.span):
            with tel.span("stmt." + name, "statement", **span_attrs):
                return statement(txn)
