"""Zero-data-copy backup and restore (Section 6.3).

Because all data and physical metadata are immutable files in the object
store, a backup is just a dump of the logical metadata — the SQL DB system
tables.  Restore (optionally to a point in time) rebuilds the catalog from
a backup, filtering ``Manifests`` rows by commit time; data files need no
copying, and anything left unreferenced is reclaimed by the next garbage
collection.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.common.errors import TransactionStateError
from repro.fe.context import ServiceContext
from repro.sqldb import system_tables as st
from repro.sqldb.engine import SqlDbEngine

_SYSTEM_TABLES = (st.TABLES, st.MANIFESTS, st.WRITESETS, st.CHECKPOINTS)


def create_backup(context: ServiceContext) -> bytes:
    """Serialize the current committed catalog state."""
    payload = {
        "taken_at": context.clock.now,
        "tables": {
            name: context.sqldb.dump_table(name) for name in _SYSTEM_TABLES
        },
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def restore_backup(
    context: ServiceContext, backup: bytes, as_of: Optional[float] = None
) -> None:
    """Replace the catalog with a backup's state (optionally point-in-time).

    ``as_of`` drops ``Manifests`` and ``Checkpoints`` rows committed after
    that instant, restoring every table to its state at that time.  The
    object store is untouched; superseded files become GC candidates.
    Requires no transactions to be in flight.
    """
    if context.sqldb.active_transactions:
        raise TransactionStateError("cannot restore with active transactions")
    payload = json.loads(backup.decode("utf-8"))
    engine = SqlDbEngine(clock=context.clock)
    txn = engine.begin()
    max_table_id = 0
    max_sequence_id = 0
    for name in _SYSTEM_TABLES:
        for row in payload["tables"].get(name, []):
            if as_of is not None and name == st.MANIFESTS:
                if row["committed_at"] > as_of:
                    continue
            if as_of is not None and name == st.CHECKPOINTS:
                if row["created_at"] > as_of:
                    continue
            txn.put(name, _primary_key(name, row), row)
            if name == st.TABLES:
                max_table_id = max(max_table_id, row["table_id"])
            if name == st.MANIFESTS:
                max_sequence_id = max(max_sequence_id, row["sequence_id"])
    txn.commit()
    # New commits must continue strictly above every restored sequence id,
    # or snapshot reconstruction would see history run backwards.
    engine.advance_commit_seq_past(max_sequence_id)
    context.sqldb = engine
    # Fresh engine means fresh visibility; cached snapshots may reference
    # rolled-back history, so they are discarded wholesale.
    from repro.fe.manifest_io import make_snapshot_cache

    context.cache = make_snapshot_cache(context)
    while context.table_ids.last <= max_table_id:
        context.table_ids.next()


def _primary_key(table: str, row: dict) -> tuple:
    if table == st.TABLES:
        return (row["table_id"],)
    if table == st.MANIFESTS:
        return (row["table_id"], row["sequence_id"])
    if table == st.WRITESETS:
        if "data_file_name" in row:
            return (row["table_id"], row["data_file_name"])
        return (row["table_id"],)
    if table == st.CHECKPOINTS:
        return (row["table_id"], row["sequence_id"])
    raise ValueError(f"unknown system table {table!r}")
