"""Persistence steps of ANALYZE and CREATE INDEX, with crash windows.

The optimizer (:mod:`repro.optimizer.manager`) computes statistics and
index contents; the two functions here perform the actual durable
writes, because they are where a process can die mid-protocol:

* ``persist_table_stats`` — the stats row is buffered in the caller's
  transaction; a crash *before* the put leaves the catalog untouched
  (nothing was durable yet), the baseline every later state must degrade
  to gracefully.
* ``publish_index`` — the index blob is written to the object store
  *before* the catalog row is buffered.  A crash in the window between
  the two leaves an orphaned ``_indexes/`` blob that recovery's catalog
  reconciliation scavenges, exactly like orphaned checkpoints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.chaos.crashpoints import crashpoint
from repro.sqldb import system_tables as catalog

if TYPE_CHECKING:
    from repro.fe.context import ServiceContext
    from repro.fe.transaction import PolarisTransaction
    from repro.optimizer.statistics import TableStatistics


def persist_table_stats(
    txn: "PolarisTransaction", table_id: int, stats: "TableStatistics"
) -> None:
    """Buffer a versioned ``TableStats`` row in the caller's transaction."""
    crashpoint("fe.analyze.before_stats_put")
    catalog.put_table_stats(
        txn.root, table_id, stats.sequence_id, stats.to_row()
    )


def publish_index(
    context: "ServiceContext",
    txn: "PolarisTransaction",
    table_id: int,
    index_name: str,
    path: str,
    data: bytes,
    payload: Dict[str, Any],
) -> None:
    """Write the index blob, then buffer its ``Indexes`` catalog row."""
    context.store.put(path, data)
    crashpoint("fe.index.after_file_put")
    catalog.put_index(txn.root, table_id, index_name, payload)
