"""Zero-copy table clones (Section 6.2).

Cloning duplicates only logical metadata: the clone gets a fresh table id
and the source's visible ``Manifests`` rows are re-inserted under that id
(optionally only those at or before a point in time).  No data or physical
metadata is copied — both tables replay the same manifest files and
reference the same immutable data files, then evolve independently.  The
clone runs inside the caller's root transaction, so it is consistent under
SI and never interferes with concurrent activity on the source.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import CatalogError
from repro.fe.catalog import create_table, describe_table, table_schema
from repro.fe.context import ServiceContext
from repro.sqldb import system_tables as catalog
from repro.sqldb.transaction import SqlDbTransaction


def clone_table(
    context: ServiceContext,
    txn: SqlDbTransaction,
    source_name: str,
    target_name: str,
    as_of: Optional[float] = None,
) -> int:
    """Clone ``source_name`` into a new table; returns the clone's id."""
    source = describe_table(txn, source_name)
    if catalog.find_table_by_name(txn, target_name) is not None:
        raise CatalogError(f"table {target_name!r} already exists")
    clone_id = create_table(
        context,
        txn,
        target_name,
        table_schema(source),
        distribution_column=source.get("distribution_column"),
        sort_column=source.get("sort_column"),
    )
    for row in catalog.manifests_for_table(txn, source["table_id"]):
        if as_of is not None and row["committed_at"] > as_of:
            continue
        # Clones re-insert *historical* rows (source sequence ids, not a
        # fresh commit sequence) as buffered writes of the caller's root
        # transaction; the engine installs them under the commit lock at
        # commit, so no lock is needed lexically here.
        catalog.insert_manifest(  # repro: ignore[commit-lock-discipline]
            txn,
            clone_id,
            row["manifest_file_name"],
            row["sequence_id"],
            row["transaction_id"],
            row["committed_at"],
            row["manifest_path"],
        )
    return clone_id
