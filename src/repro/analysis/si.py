"""The snapshot-isolation history sanitizer.

The linter half of :mod:`repro.analysis` checks *code*; this half checks
*behavior*.  A :class:`HistoryRecorder` taps the deployment's EventBus and
assembles one :class:`TxnRecord` per user transaction — begin snapshot,
observed reads, committed write-set, commit sequence.  :func:`check_history`
then verifies the SI axioms of Section 4 of the paper over the recorded
history:

* **first-committer-wins** — no two *concurrent* committed transactions
  share a conflict unit (table or file, mirroring
  ``txn.conflict_granularity``).  Two transactions are concurrent when
  neither committed before the other's snapshot was taken.
* **reads-from-snapshot** — a snapshot/serializable transaction never
  observes a manifest sequence committed after its begin snapshot, and
  repeated reads of a table observe the same sequence (RCSI transactions
  are exempt by design: each statement re-snapshots).
* **no-lost-updates** — a committed transaction that read a table and then
  committed updates/deletes against it must not have raced a concurrent
  commit to the same conflict unit between its snapshot and its commit.

Histories can be recorded live (attach a recorder to ``warehouse.context
.bus``) or replayed from a JSONL trace (:func:`load_history_jsonl`, one
event object per line), so the sanitizer runs both as a pytest fixture and
over captured production traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.events import Event, EventBus

#: Bus topics the recorder consumes (also the JSONL ``topic`` values).
TXN_TOPICS = ("txn.begin", "txn.read", "txn.finished", "txn.aborted")


@dataclass
class TxnRecord:
    """Everything the sanitizer knows about one user transaction."""

    txid: int
    begin_seq: Optional[int] = None
    begin_ts: Optional[float] = None
    isolation: str = "snapshot"
    #: ``(table_id, observed manifest sequence)`` in observation order.
    reads: List[Tuple[int, int]] = field(default_factory=list)
    #: Conflict units committed by this transaction ("table:<id>" or
    #: "file:<id>/<name>", mirroring the configured granularity).
    units: Tuple[str, ...] = ()
    #: Ids of tables this transaction committed manifests for.
    tables: Tuple[int, ...] = ()
    commit_seq: Optional[int] = None
    committed: bool = False
    aborted: bool = False
    abort_reason: Optional[str] = None

    @property
    def finished(self) -> bool:
        """Whether the transaction reached a terminal state."""
        return self.committed or self.aborted


@dataclass(frozen=True)
class SiViolation:
    """One violated SI axiom, with the transactions involved."""

    check: str
    message: str
    txids: Tuple[int, ...]

    def render(self) -> str:
        """``check: message (txns ...)`` report line."""
        ids = ", ".join(str(t) for t in self.txids)
        return f"{self.check}: {self.message} (txns {ids})"


class HistoryRecorder:
    """Collects transaction lifecycle events into :class:`TxnRecord` objects.

    Attach to a deployment's bus before running a workload; records are
    keyed by txid and updated in event order.  The recorder is also the
    JSONL bridge: :meth:`dump_jsonl` writes the raw event stream, and
    :func:`load_history_jsonl` rebuilds records from such a file.
    """

    def __init__(self) -> None:
        self._records: Dict[int, TxnRecord] = {}
        self._events: List[Dict[str, Any]] = []
        self._bus: Optional[EventBus] = None

    # -- live capture ---------------------------------------------------------

    def attach(self, bus: EventBus) -> "HistoryRecorder":
        """Subscribe to the transaction topics on ``bus`` (returns self)."""
        if self._bus is not None:
            raise RuntimeError("recorder is already attached to a bus")
        for topic in TXN_TOPICS:
            bus.subscribe(topic, self._on_event)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        if self._bus is None:
            return
        for topic in TXN_TOPICS:
            self._bus.unsubscribe(topic, self._on_event)
        self._bus = None

    def _on_event(self, event: Event) -> None:
        payload = dict(event.payload)
        payload["topic"] = event.topic
        self.ingest(payload)

    # -- ingestion (shared by live capture and JSONL replay) ------------------

    def ingest(self, event: Dict[str, Any]) -> None:
        """Apply one event dict (must carry ``topic`` and ``txid``)."""
        topic = event.get("topic")
        txid = event.get("txid")
        if topic not in TXN_TOPICS or txid is None:
            return
        self._events.append(dict(event))
        record = self._records.get(txid)
        if record is None:
            record = self._records[txid] = TxnRecord(txid=txid)
        if topic == "txn.begin":
            record.begin_seq = event.get("begin_seq")
            record.begin_ts = event.get("begin_ts")
            record.isolation = event.get("isolation", "snapshot")
        elif topic == "txn.read":
            record.reads.append((event.get("table_id"), event.get("sequence_id")))
        elif topic == "txn.finished":
            record.committed = True
            record.commit_seq = event.get("commit_seq")
            record.units = tuple(event.get("units") or ())
            record.tables = tuple(event.get("tables") or ())
        elif topic == "txn.aborted":
            record.aborted = True
            record.abort_reason = event.get("reason")

    # -- access ---------------------------------------------------------------

    def history(self) -> List[TxnRecord]:
        """All records, ordered by txid (stable across runs)."""
        return [self._records[txid] for txid in sorted(self._records)]

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The raw event stream, in arrival order."""
        return list(self._events)

    def dump_jsonl(self, path: "str | Path") -> str:
        """Write the raw event stream as JSONL; returns the path."""
        text = "\n".join(json.dumps(event, sort_keys=True) for event in self._events)
        Path(path).write_text(text + ("\n" if text else ""), encoding="utf-8")
        return str(path)


def load_history_jsonl(path: "str | Path") -> List[TxnRecord]:
    """Rebuild transaction records from a JSONL event trace.

    Each line is one JSON object with at least ``topic`` (one of
    ``txn.begin``/``txn.read``/``txn.finished``/``txn.aborted``) and
    ``txid``; unknown topics are skipped, so a combined telemetry stream
    can be fed in unfiltered.
    """
    recorder = HistoryRecorder()
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        recorder.ingest(json.loads(line))
    return recorder.history()


# -- the axioms ----------------------------------------------------------------


def _concurrent(a: TxnRecord, b: TxnRecord) -> bool:
    """Whether neither transaction's commit is in the other's snapshot."""
    if None in (a.begin_seq, a.commit_seq, b.begin_seq, b.commit_seq):
        return False
    a_sees_b = b.commit_seq <= a.begin_seq
    b_sees_a = a.commit_seq <= b.begin_seq
    return not (a_sees_b or b_sees_a)


def check_history(records: Iterable[TxnRecord]) -> List[SiViolation]:
    """Verify the SI axioms over a recorded history; returns violations.

    An empty result means the history is consistent with the paper's
    commit protocol (Section 4.1.2).  Incomplete records (no begin event —
    e.g. the recorder attached mid-run) are skipped rather than guessed at.
    """
    violations: List[SiViolation] = []
    committed = [
        r
        for r in records
        if r.committed and r.commit_seq is not None and r.begin_seq is not None
    ]
    all_records = list(records)

    # first-committer-wins: concurrent committed writers must not share units.
    for i, a in enumerate(committed):
        if not a.units:
            continue
        for b in committed[i + 1 :]:
            if not b.units or not _concurrent(a, b):
                continue
            shared = sorted(set(a.units) & set(b.units))
            if shared:
                violations.append(
                    SiViolation(
                        check="first-committer-wins",
                        message=(
                            "concurrent transactions both committed writes "
                            f"to {', '.join(shared)}"
                        ),
                        txids=(a.txid, b.txid),
                    )
                )

    # reads-from-snapshot: SI reads pinned to the begin snapshot.
    for record in all_records:
        if record.begin_seq is None or record.isolation == "rcsi":
            continue
        seen: Dict[int, int] = {}
        for table_id, observed in record.reads:
            if observed is None or table_id is None:
                continue
            if observed > record.begin_seq:
                violations.append(
                    SiViolation(
                        check="reads-from-snapshot",
                        message=(
                            f"read of table {table_id} observed sequence "
                            f"{observed}, committed after the begin snapshot "
                            f"{record.begin_seq}"
                        ),
                        txids=(record.txid,),
                    )
                )
            elif table_id in seen and seen[table_id] != observed:
                violations.append(
                    SiViolation(
                        check="reads-from-snapshot",
                        message=(
                            f"non-repeatable read of table {table_id}: "
                            f"observed sequence {seen[table_id]}, then "
                            f"{observed}, inside one snapshot transaction"
                        ),
                        txids=(record.txid,),
                    )
                )
            seen.setdefault(table_id, observed)

    # no-lost-updates: an update committed over a stale read of the table.
    for record in committed:
        if not record.units:
            continue
        read_tables = {table_id for table_id, _ in record.reads}
        for other in committed:
            if other.txid == record.txid:
                continue
            shared = set(record.units) & set(other.units)
            if not shared:
                continue
            if (
                other.commit_seq is not None
                and record.begin_seq < other.commit_seq < record.commit_seq
                and any(
                    _unit_table(unit) in read_tables for unit in shared
                )
            ):
                violations.append(
                    SiViolation(
                        check="no-lost-updates",
                        message=(
                            f"txn {record.txid} committed updates over "
                            f"{', '.join(sorted(shared))} although txn "
                            f"{other.txid} committed to the same unit(s) "
                            "between its snapshot and its commit"
                        ),
                        txids=(record.txid, other.txid),
                    )
                )
    return violations


def _unit_table(unit: str) -> Optional[int]:
    """Table id encoded in a conflict unit string (None if unparseable)."""
    try:
        kind, rest = unit.split(":", 1)
    except ValueError:
        return None
    head = rest.split("/", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None


def format_violations(violations: Iterable[SiViolation]) -> str:
    """Render violations one per line for CLI / assertion messages."""
    return "\n".join(violation.render() for violation in violations)
