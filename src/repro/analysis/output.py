"""Finding output formats: stable IDs, JSON, SARIF 2.1.0, and the baseline.

The same layer serves the classic lint mode and ``--deep``:

* **Stable IDs** — ``sha256(rule | posix-path | message)`` truncated to
  12 hex chars, with a ``-N`` occurrence suffix for duplicates.  Line
  numbers are deliberately *not* hashed, so unrelated edits above a
  finding do not churn the baseline; the occurrence index keeps repeated
  identical findings in one file distinct.
* **JSON** — ``{"version": 1, "findings": [...]}``, machine-readable and
  round-trippable into a baseline.
* **SARIF 2.1.0** — the minimum valid document (tool driver + results
  with ``ruleId``/``message``/``locations``/``partialFingerprints``) so
  CI systems can annotate PRs.
* **Baseline ratchet** — a committed JSON file of known finding IDs; a
  run fails only on findings *not* in the baseline, so legacy debt is
  tracked without blocking, while new violations always fail.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.framework import Finding

#: SARIF schema/version pinned by the tests.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def finding_ids(findings: Sequence[Finding]) -> List[str]:
    """Stable, line-independent IDs, one per finding (order-aligned)."""
    seen: Dict[str, int] = {}
    out: List[str] = []
    for finding in findings:
        posix = finding.path.replace("\\", "/")
        digest = hashlib.sha256(
            f"{finding.rule}|{posix}|{finding.message}".encode("utf-8")
        ).hexdigest()[:12]
        count = seen.get(digest, 0)
        seen[digest] = count + 1
        out.append(digest if count == 0 else f"{digest}-{count + 1}")
    return out


def to_json_doc(findings: Sequence[Finding]) -> Dict:
    """The JSON document for a finding list."""
    ids = finding_ids(findings)
    return {
        "version": 1,
        "findings": [
            {
                "id": fid,
                "path": finding.path.replace("\\", "/"),
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for fid, finding in zip(ids, findings)
        ],
    }


def to_sarif_doc(findings: Sequence[Finding]) -> Dict:
    """A minimal valid SARIF 2.1.0 document for a finding list."""
    ids = finding_ids(findings)
    rules = sorted({finding.rule for finding in findings})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://example.invalid/repro-analysis"
                        ),
                        "rules": [{"id": rule} for rule in rules],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path.replace("\\", "/")
                                    },
                                    "region": {"startLine": finding.line},
                                }
                            }
                        ],
                        "partialFingerprints": {
                            "reproAnalysis/v1": fid
                        },
                    }
                    for fid, finding in zip(ids, findings)
                ],
            }
        ],
    }


def render(findings: Sequence[Finding], fmt: str) -> str:
    """Render findings as ``text``, ``json``, or ``sarif``."""
    if fmt == "json":
        return json.dumps(to_json_doc(findings), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(to_sarif_doc(findings), indent=2, sort_keys=True)
    return "\n".join(finding.render() for finding in findings)


# -- baseline ratchet ----------------------------------------------------------


def load_baseline(path: Path) -> List[str]:
    """Known finding IDs from a baseline file (JSON doc or bare ID list)."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(doc, list):
        return [str(item) for item in doc]
    return [str(entry["id"]) for entry in doc.get("findings", [])]


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Write the current findings as the new baseline."""
    Path(path).write_text(
        json.dumps(to_json_doc(findings), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def partition_baseline(
    findings: Sequence[Finding], known_ids: Iterable[str]
) -> Tuple[List[Finding], List[Finding]]:
    """``(new, known)`` relative to a baseline.

    Duplicate-occurrence accounting matches by multiset: N identical
    findings against a baseline listing M of them yields ``N - M`` new.
    """
    known = set(known_ids)
    new: List[Finding] = []
    old: List[Finding] = []
    for fid, finding in zip(finding_ids(findings), findings):
        (old if fid in known else new).append(finding)
    return new, old
