"""Whole-program call graph over a package tree.

:class:`Program` parses every module under one or more roots (reusing the
framework's :class:`~repro.analysis.framework.ModuleSource` loader, so
suppression comments stay available to the deep analyses), indexes every
function, method, and class by module-qualified name, and resolves call
sites interprocedurally:

* plain and aliased imports (``import a.b as c``, ``from m import f``),
  including relative imports and *re-exports* (``from a import f`` in
  ``b`` makes ``b.f`` resolve to ``a.f``);
* ``self.method()`` / ``cls.method()`` dispatch, walking base classes;
* method dispatch on *annotated* parameters and locals (``x: Pool`` then
  ``x.acquire()``), on constructor-inferred locals (``x = Pool(...)``),
  and on ``self.attr`` whose type is inferred from class-body annotations
  or ``self.attr = Pool(...)`` assignments in any method;
* constructor calls (``Pool(...)`` adds an edge to ``Pool.__init__``).

Besides real call edges the graph records *reference* edges — a bare
``fn`` / ``self.method`` mentioned outside call position (callbacks
handed to schedulers, event-bus subscriptions) — and *lexical* edges from
a function to the functions nested inside it (closures executed by a
framework the resolver cannot see through).  Reachability queries choose
which edge kinds they trust.

Everything is stdlib-``ast`` only and deliberately context-insensitive:
one summary per function, unioned over call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import ModuleSource, parse_suppressions

#: Edge kinds, in decreasing order of confidence.
CALL, REF, LEXICAL = "call", "ref", "lexical"


@dataclass
class ClassInfo:
    """One indexed class: bases, methods, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base-class qualnames (best effort; unresolvable bases dropped).
    bases: List[str] = field(default_factory=list)
    #: method name -> function qualname (own methods only; MRO via lookup).
    methods: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> class qualname inferred from annotations or
    #: ``self.attr = ClassName(...)`` assignments.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    module: str
    name: str
    node: ast.AST
    #: Owning class qualname for methods, else None.
    cls: Optional[str] = None
    #: Lexically enclosing function qualname for nested defs, else None.
    parent: Optional[str] = None

    @property
    def lineno(self) -> int:
        """Definition line."""
        return getattr(self.node, "lineno", 1)

    @property
    def is_public(self) -> bool:
        """Whether the function's own name is public (no leading ``_``)."""
        return not self.name.startswith("_")


@dataclass(frozen=True)
class CallSite:
    """One resolved edge: ``caller`` mentions ``callee`` at ``lineno``."""

    caller: str
    callee: str
    lineno: int
    kind: str  # CALL | REF | LEXICAL


class Program:
    """A parsed package tree with its call graph.

    Build with :meth:`load` (directories and/or files).  Module names are
    derived from package layout: a root directory containing
    ``__init__.py`` contributes ``<rootname>.<sub>...`` modules, a bare
    file contributes its stem.
    """

    def __init__(self) -> None:
        #: module name -> parsed source.
        self.modules: Dict[str, ModuleSource] = {}
        #: module name -> local symbol -> qualified target (pre-canonical).
        self._symbols: Dict[str, Dict[str, str]] = {}
        #: function qualname -> info.
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qualname -> info.
        self.classes: Dict[str, ClassInfo] = {}
        #: every resolved call/ref/lexical edge.
        self.calls: List[CallSite] = []
        #: per-function unresolved call names (trailing identifier only).
        self.unresolved: Dict[str, Set[str]] = {}
        self._succ: Dict[str, List[CallSite]] = {}
        self._pred: Dict[str, List[CallSite]] = {}
        self._class_name_index: Optional[Dict[str, Optional[str]]] = None

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Program":
        """Parse every ``*.py`` under ``paths`` and build the call graph."""
        program = cls()
        for root in paths:
            root = Path(root).resolve()
            program._load_root(root)
        program._index()
        program._resolve_all()
        return program

    def _load_root(self, root: Path) -> None:
        if root.is_file():
            self._load_file(root, root.stem, root.parent)
            return
        prefix = root.name if (root / "__init__.py").exists() else ""
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            parts = list(rel.parts[:-1])
            stem = rel.stem
            if stem != "__init__":
                parts.append(stem)
            modname = ".".join(([prefix] if prefix else []) + parts)
            if not modname:
                modname = root.name
            base = root if prefix else root
            self._load_file(path, modname, base)

    def _load_file(self, path: Path, modname: str, base: Path) -> None:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return
        try:
            relpath = str(path.relative_to(base.parent))
        except ValueError:
            relpath = str(path)
        self.modules[modname] = ModuleSource(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )

    # -- indexing ----------------------------------------------------------

    def _index(self) -> None:
        for modname, module in self.modules.items():
            self._symbols[modname] = self._module_symbols(modname, module.tree)
            for node in module.tree.body:
                self._index_node(modname, node, owner=None, parent=None)

    def _module_symbols(self, modname: str, tree: ast.Module) -> Dict[str, str]:
        symbols: Dict[str, str] = {}
        is_package = self.modules[modname].path.name == "__init__.py"
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        symbols[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        symbols[head] = head
            elif isinstance(node, ast.ImportFrom):
                source = self._import_from_base(modname, node, is_package)
                if source is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    symbols[alias.asname or alias.name] = (
                        f"{source}.{alias.name}"
                    )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbols[node.name] = f"{modname}.{node.name}"
            elif isinstance(node, ast.ClassDef):
                symbols[node.name] = f"{modname}.{node.name}"
        return symbols

    @staticmethod
    def _import_from_base(
        modname: str, node: ast.ImportFrom, is_package: bool
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = modname.split(".")
        if not is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    def _index_node(
        self,
        modname: str,
        node: ast.AST,
        owner: Optional[ClassInfo],
        parent: Optional[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if owner is not None and parent is None:
                qualname = f"{owner.qualname}.{node.name}"
                cls_name: Optional[str] = owner.qualname
            elif parent is not None:
                qualname = f"{parent}.{node.name}"
                cls_name = None
            else:
                qualname = f"{modname}.{node.name}"
                cls_name = None
            info = FunctionInfo(
                qualname=qualname,
                module=modname,
                name=node.name,
                node=node,
                cls=cls_name,
                parent=parent,
            )
            self.functions[qualname] = info
            if owner is not None and parent is None:
                owner.methods[node.name] = qualname
            for child in node.body:
                self._index_node(modname, child, owner=None, parent=qualname)
        elif isinstance(node, ast.ClassDef) and owner is None and parent is None:
            info = ClassInfo(
                qualname=f"{modname}.{node.name}",
                module=modname,
                name=node.name,
                node=node,
            )
            self.classes[info.qualname] = info
            for child in node.body:
                self._index_node(modname, child, owner=info, parent=None)
        elif isinstance(
            node, (ast.If, ast.Try, ast.With, ast.For, ast.While)
        ):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._index_node(modname, child, owner=owner, parent=parent)

    # -- symbol canonicalisation -------------------------------------------

    def canonical(self, qualified: str) -> Optional[str]:
        """Chase re-export aliases to a function/class/module qualname.

        Returns the canonical name when it denotes something indexed (a
        function, class, or module), else None.
        """
        seen: Set[str] = set()
        current = qualified
        while current not in seen:
            seen.add(current)
            if (
                current in self.functions
                or current in self.classes
                or current in self.modules
            ):
                return current
            head, _, tail = current.rpartition(".")
            if not head:
                return None
            # ``pkg.mod.name``: if pkg.mod is a module, follow its symbol
            # table (covers re-exports through __init__ and plain modules).
            if head in self.modules:
                target = self._symbols.get(head, {}).get(tail)
                if target is None or target == current:
                    return None
                current = target
                continue
            # ``pkg.Class.method``: resolve the class, then the method.
            head_canon = self.canonical(head)
            if head_canon is None or head_canon == head:
                return None
            current = f"{head_canon}.{tail}"
        return None

    def resolve_method(self, class_qualname: str, name: str) -> Optional[str]:
        """Look up a method on a class, walking base classes (DFS)."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    # -- call resolution ---------------------------------------------------

    def _resolve_all(self) -> None:
        self._link_bases()
        self._infer_attr_types()
        for info in list(self.functions.values()):
            self._resolve_function(info)
        for site in self.calls:
            self._succ.setdefault(site.caller, []).append(site)
            self._pred.setdefault(site.callee, []).append(site)

    def _link_bases(self) -> None:
        for info in self.classes.values():
            symbols = self._symbols.get(info.module, {})
            for base in info.node.bases:
                name = _dotted(base)
                if name is None:
                    continue
                head, _, rest = name.partition(".")
                target = symbols.get(head)
                if target is None:
                    continue
                full = target + ("." + rest if rest else "")
                canon = self.canonical(full)
                if canon in self.classes:
                    info.bases.append(canon)

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            symbols = self._symbols.get(info.module, {})
            for item in info.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    cls = self._annotation_class(item.annotation, symbols)
                    if cls is not None:
                        info.attr_types[item.target.id] = cls
            for method in info.node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                param_types: Dict[str, str] = {}
                for arg in list(method.args.args) + list(
                    method.args.kwonlyargs
                ):
                    cls = self._annotation_class(arg.annotation, symbols)
                    if cls is not None:
                        param_types[arg.arg] = cls
                for node in ast.walk(method):
                    # self.attr: T = ... inside a method body.
                    if isinstance(node, ast.AnnAssign) and _is_self_attr(
                        node.target
                    ):
                        cls = self._annotation_class(node.annotation, symbols)
                        if cls is not None:
                            info.attr_types.setdefault(node.target.attr, cls)
                        continue
                    if not isinstance(node, ast.Assign):
                        continue
                    cls = None
                    if isinstance(node.value, ast.Call):
                        cls = self._call_constructs(node.value, symbols)
                    elif isinstance(node.value, ast.Name):
                        # self.attr = param, with the param annotated.
                        cls = param_types.get(node.value.id)
                    if cls is None:
                        continue
                    for target in node.targets:
                        if _is_self_attr(target):
                            info.attr_types.setdefault(target.attr, cls)

    def attr_type(self, class_qualname: str, attr: str) -> Optional[str]:
        """Inferred type of ``attr`` on a class, walking base classes."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            stack.extend(cls.bases)
        return None

    def _chain_method(
        self, start_class: str, chain: List[str]
    ) -> Optional[str]:
        """Resolve ``a.b.method`` through inferred attribute types."""
        current = start_class
        for attr in chain[:-1]:
            next_cls = self.attr_type(current, attr)
            if next_cls is None:
                return None
            current = next_cls
        return self.resolve_method(current, chain[-1])

    def _annotation_class(
        self, node: Optional[ast.AST], symbols: Dict[str, str]
    ) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        # Optional[X] / "X" / X — take the first resolvable class name.
        for sub in ast.walk(node):
            name = _dotted(sub)
            if name is None:
                continue
            head, _, rest = name.partition(".")
            target = symbols.get(head, head)
            canon = self.canonical(target + ("." + rest if rest else ""))
            if canon in self.classes:
                return canon
            # Unimported forward reference ("SqlDbEngine" as a string
            # annotation with no matching import): accept the class name
            # when it is unique program-wide.
            if not rest and head not in symbols:
                unique = self._unique_class(head)
                if unique is not None:
                    return unique
        return None

    def _unique_class(self, name: str) -> Optional[str]:
        if self._class_name_index is None:
            index: Dict[str, Optional[str]] = {}
            for qualname, info in self.classes.items():
                # Two classes sharing a name -> ambiguous -> None.
                index[info.name] = (
                    qualname if info.name not in index else None
                )
            self._class_name_index = index
        return self._class_name_index.get(name)

    def _call_constructs(
        self, call: ast.Call, symbols: Dict[str, str]
    ) -> Optional[str]:
        name = _dotted(call.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = symbols.get(head)
        if target is None:
            return None
        canon = self.canonical(target + ("." + rest if rest else ""))
        return canon if canon in self.classes else None

    def _resolve_function(self, info: FunctionInfo) -> None:
        symbols = dict(self._symbols.get(info.module, {}))
        # Sibling nested defs and own nested defs shadow module scope.
        for qualname, other in self.functions.items():
            if other.parent == info.qualname or (
                info.parent is not None and other.parent == info.parent
            ):
                symbols[other.name] = qualname
        owner = self.classes.get(info.cls) if info.cls else None
        local_types = self._local_types(info, symbols, owner)
        call_funcs = set()
        body = getattr(info.node, "body", [])
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
                    callee = self._resolve_target(
                        node.func, info, symbols, owner, local_types
                    )
                    if callee is not None:
                        self.calls.append(
                            CallSite(info.qualname, callee, node.lineno, CALL)
                        )
                    else:
                        tail = _trailing_name(node.func)
                        if tail is not None:
                            self.unresolved.setdefault(
                                info.qualname, set()
                            ).add(tail)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested = f"{info.qualname}.{node.name}"
                    if nested in self.functions:
                        self.calls.append(
                            CallSite(info.qualname, nested, node.lineno, LEXICAL)
                        )
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Name, ast.Attribute)) and id(
                    node
                ) not in call_funcs:
                    callee = self._resolve_target(
                        node, info, symbols, owner, local_types, quiet=True
                    )
                    if callee is not None and callee != info.qualname:
                        self.calls.append(
                            CallSite(info.qualname, callee, node.lineno, REF)
                        )

    def _local_types(
        self,
        info: FunctionInfo,
        symbols: Dict[str, str],
        owner: Optional[ClassInfo],
    ) -> Dict[str, str]:
        types: Dict[str, str] = {}
        args = getattr(info.node, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                cls = self._annotation_class(arg.annotation, symbols)
                if cls is not None:
                    types[arg.arg] = cls
        for node in ast.walk(info.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = self._annotation_class(node.annotation, symbols)
                if cls is not None:
                    types[node.target.id] = cls
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                cls = self._call_constructs(node.value, symbols)
                if cls is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = cls
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Attribute
            ):
                value = node.value
                if (
                    owner is not None
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and value.attr in owner.attr_types
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = owner.attr_types[value.attr]
        return types

    def _resolve_target(
        self,
        node: ast.AST,
        info: FunctionInfo,
        symbols: Dict[str, str],
        owner: Optional[ClassInfo],
        local_types: Dict[str, str],
        quiet: bool = False,
    ) -> Optional[str]:
        if isinstance(node, ast.Name):
            target = symbols.get(node.id)
            if target is None:
                return None
            canon = self.canonical(target)
            if canon in self.functions:
                return canon
            if canon in self.classes and not quiet:
                init = self.resolve_method(canon, "__init__")
                return init
            return None
        if not isinstance(node, ast.Attribute):
            return None
        chain: List[str] = []
        base: ast.AST = node
        while isinstance(base, ast.Attribute):
            chain.append(base.attr)
            base = base.value
        chain.reverse()
        if not isinstance(base, ast.Name):
            return None
        # self.method() / cls.method() / self.attr[...].method(): walk the
        # attribute chain through inferred attribute types.
        if base.id in ("self", "cls") and owner is not None:
            return self._chain_method(owner.qualname, chain)
        # annotated/inferred local: x.method(), x.attr.method()
        if base.id in local_types:
            return self._chain_method(local_types[base.id], chain)
        # module or imported class: mod.func(), mod.Class.method(), Cls.m()
        target = symbols.get(base.id)
        if target is None:
            return None
        canon = self.canonical(target + "." + ".".join(chain))
        if canon in self.functions:
            return canon
        if canon in self.classes and not quiet:
            return self.resolve_method(canon, "__init__")
        return None

    # -- graph queries -----------------------------------------------------

    def callees_of(self, qualname: str) -> List[CallSite]:
        """Outgoing edges of one function."""
        return self._succ.get(qualname, [])

    def callers_of(self, qualname: str) -> List[CallSite]:
        """Incoming edges of one function."""
        return self._pred.get(qualname, [])

    def reachable_from(
        self,
        roots: Sequence[str],
        kinds: Tuple[str, ...] = (CALL, REF, LEXICAL),
    ) -> Set[str]:
        """Functions reachable from ``roots`` following ``kinds`` edges."""
        seen: Set[str] = set(roots)
        stack = list(roots)
        while stack:
            current = stack.pop()
            for site in self._succ.get(current, []):
                if site.kind in kinds and site.callee not in seen:
                    seen.add(site.callee)
                    stack.append(site.callee)
        return seen

    def transitive_callers(
        self, targets: Sequence[str], kinds: Tuple[str, ...] = (CALL,)
    ) -> Set[str]:
        """Functions from which some target is reachable (targets included)."""
        seen: Set[str] = set(targets)
        stack = list(targets)
        while stack:
            current = stack.pop()
            for site in self._pred.get(current, []):
                if site.kind in kinds and site.caller not in seen:
                    seen.add(site.caller)
                    stack.append(site.caller)
        return seen

    def functions_in(self, module: str) -> Iterator[FunctionInfo]:
        """Every function defined in one module."""
        for info in self.functions.values():
            if info.module == module:
                yield info


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_self_attr(node: ast.AST) -> bool:
    """Whether ``node`` is a ``self.<attr>`` attribute target."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _trailing_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a call target (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
