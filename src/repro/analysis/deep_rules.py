"""The whole-program ("deep") analyses: ``python -m repro.analysis --deep``.

Five analyses run over a :class:`~repro.analysis.callgraph.Program`
instead of one module at a time:

``lock-order``
    builds the global lock-order graph from every ``with lock.held():``
    / ``with some_lock:`` / ``acquire()``/``release()`` site, propagated
    through the call graph, and reports cycles (potential deadlocks),
    re-entrant acquisitions, and inversions of the canonical order.
``crash-unwind``
    every function from which a registered crashpoint is reachable must
    let ``SimulatedCrash`` unwind: the first handler that could catch it
    (bare / ``BaseException`` / ``SimulatedCrash``) must re-raise on
    every path.  ``chaos/`` is the process boundary and is exempt.
``resource-leak``
    acquire/release pairing on all CFG paths for gateway sessions,
    telemetry spans, and query-store execution tokens.  Non-``with``
    acquisitions must be released in a ``finally`` or on every exit
    edge; error paths are checked with ``exc-base`` (crash-only) edges
    excluded, because a simulated process crash is *supposed* to leave
    in-flight state for recovery scavenging.
``determinism-taint``
    interprocedural lift of wallclock-purity and seeded-randomness: a
    call from engine code into a helper that (transitively) reads the
    wall clock or unseeded randomness is flagged at the laundering call
    site, even though the call site itself looks innocent.
``crashpoint-reachability``
    every name in ``CRASHPOINTS`` must be instrumented by a
    ``crashpoint()`` call whose enclosing function is reachable from a
    public FE/service/STO entrypoint — otherwise the chaos sweep
    "covers" a site that no real workload can ever hit.

Suppressions use the same ``# repro: ignore[rule]`` comments as the
linter; the deep runner honours and (in strict mode) validates the ones
naming deep rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import CALL, LEXICAL, REF, FunctionInfo, Program
from repro.analysis.cfg import build_cfg, completion
from repro.analysis.dataflow import GenKill, drop_exc_base
from repro.analysis.framework import (
    Finding,
    ModuleSource,
    import_map,
    register_external_rules,
    resolve_name,
)
from repro.analysis.rules import WALLCLOCK_BANNED

#: The deep rule names (suppressible like lint rules).
DEEP_RULES: List[str] = [
    "lock-order",
    "crash-unwind",
    "resource-leak",
    "determinism-taint",
    "crashpoint-reachability",
]

register_external_rules(DEEP_RULES)

#: Outermost-first canonical lock order; acquiring a lock that appears
#: *earlier* in this list while holding a later one is an inversion even
#: before a full cycle exists.  Extend as the system grows more locks.
CANONICAL_LOCK_ORDER: Tuple[str, ...] = (
    "gateway_lock",
    "pool_lock",
    "commit_lock",
)

#: Modules treated as the crash process boundary (may catch SimulatedCrash).
_CRASH_BOUNDARY_DIRS = ("chaos",)

#: Modules where direct wall-clock use is lint-exempt; a *call into* them
#: that reaches the wall clock is exactly what determinism-taint flags.
_WALLCLOCK_EXEMPT_DIRS = ("telemetry",)
_WALLCLOCK_EXEMPT_FILES = ("common/clock.py",)

#: Public entry surfaces for crashpoint reachability (posix suffixes).
ENTRY_SUFFIXES: Tuple[str, ...] = (
    "fe/session.py",
    "fe/warehouse.py",
    "service/gateway.py",
    "service/__main__.py",
    "sto/orchestrator.py",
    "sql/runner.py",
    "chaos/harness.py",
    "chaos/recovery.py",
)


@dataclass(frozen=True)
class ResourceSpec:
    """One acquire/release protocol tracked by the leak analysis."""

    kind: str
    acquire: str
    release: Tuple[str, ...]
    #: Class-name suffixes whose methods match (resolved via call graph).
    receiver_classes: Tuple[str, ...]
    #: Receiver identifier hints when resolution fails (last segment,
    #: ``self.``/leading underscores stripped).
    receiver_hints: Tuple[str, ...]


#: The protocols the repo actually uses.  Admission tokens are absent by
#: design: ``TokenBucket.try_take`` consumes budget that refills with
#: simulated time — there is no release operation to pair.
RESOURCE_SPECS: Tuple[ResourceSpec, ...] = (
    ResourceSpec(
        kind="gateway-session",
        acquire="acquire",
        release=("release", "close_all"),
        receiver_classes=("SessionPool",),
        receiver_hints=("pool", "session_pool", "sessions"),
    ),
    ResourceSpec(
        kind="span",
        acquire="start_span",
        release=("end_span",),
        receiver_classes=("Telemetry",),
        receiver_hints=("tel", "telemetry"),
    ),
    ResourceSpec(
        kind="query-execution",
        acquire="start",
        release=("finish", "scavenge"),
        receiver_classes=("QueryStore",),
        receiver_hints=("store", "querystore", "query_store"),
    ),
)


# -- shared helpers ------------------------------------------------------------


def _own_nodes(func_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function/class bodies."""
    stack: List[ast.AST] = list(getattr(func_node, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _in_dir(module: ModuleSource, directory: str) -> bool:
    return f"/{directory}/" in "/" + module.posix


def _endswith(module: ModuleSource, suffix: str) -> bool:
    return ("/" + module.posix).endswith("/" + suffix)


def _receiver_chain(node: ast.AST) -> Optional[List[str]]:
    """``self._pool.acquire`` -> ``["self", "_pool"]`` (without the method)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts[:-1] if len(parts) > 1 else []


def _hint_name(chain: List[str]) -> Optional[str]:
    """The significant identifier of a receiver chain, normalised."""
    for part in reversed(chain):
        if part in ("self", "cls"):
            continue
        return part.lstrip("_")
    return None


def _is_lock_token(name: str) -> bool:
    """Identifier names a lock: has a ``lock``/``mutex`` segment."""
    segments = name.lstrip("_").lower().split("_")
    return any(seg in ("lock", "locks", "mutex") for seg in segments)


def _finding(
    module: ModuleSource, lineno: int, rule: str, message: str
) -> Finding:
    return Finding(path=module.relpath, line=lineno, rule=rule, message=message)


def _callsite_index(
    program: Program,
) -> Dict[Tuple[str, int, str], str]:
    """(caller, lineno, method-name) -> resolved callee qualname."""
    index: Dict[Tuple[str, int, str], str] = {}
    for site in program.calls:
        if site.kind != CALL:
            continue
        method = site.callee.rpartition(".")[2]
        index[(site.caller, site.lineno, method)] = site.callee
    return index


# -- lock-order ----------------------------------------------------------------


def _lock_token_of_with_item(item: ast.withitem) -> Optional[str]:
    """The lock token a ``with`` item acquires, if it is a lock."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) and func.attr in ("held", "acquire"):
            chain = _receiver_chain(func)
            if chain is not None:
                name = _hint_name(chain)
                if name:
                    return name
        return None
    if isinstance(expr, ast.Name) and _is_lock_token(expr.id):
        return expr.id.lstrip("_")
    if isinstance(expr, ast.Attribute) and _is_lock_token(expr.attr):
        return expr.attr.lstrip("_")
    return None


def _scan_lock_events(
    func: FunctionInfo,
) -> Tuple[List[Tuple[str, ast.AST, Set[str]]], List[Tuple[ast.Call, Set[str]]]]:
    """``(acquisitions, calls)`` with the lexically-held set at each.

    Acquisitions are ``with``-based lock grabs plus explicit
    ``x.acquire()`` calls on lock-named receivers; ``calls`` is every
    call site (for interprocedural propagation).
    """
    acquisitions: List[Tuple[str, ast.AST, Set[str]]] = []
    calls: List[Tuple[ast.Call, Set[str]]] = []

    def visit(stmts: Sequence[ast.stmt], held: Set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = set(held)
                for item in stmt.items:
                    token = _lock_token_of_with_item(item)
                    if token is not None:
                        acquisitions.append((token, stmt, set(inner)))
                        inner.add(token)
                    for call in _calls_in_expr(item.context_expr):
                        calls.append((call, set(held)))
                visit(stmt.body, inner)
                continue
            for call in _calls_in_stmt_head(stmt):
                calls.append((call, set(held)))
                token = _explicit_lock_call(call)
                if token is not None:
                    acquisitions.append((token, call, set(held)))
            for child in _child_stmt_lists(stmt):
                visit(child, held)

    visit(getattr(func.node, "body", []), set())
    return acquisitions, calls


def _explicit_lock_call(call: ast.Call) -> Optional[str]:
    """Token for an explicit ``x.acquire()`` on a lock-named receiver."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "acquire":
        chain = _receiver_chain(func)
        if chain is not None:
            name = _hint_name(chain)
            if name and _is_lock_token(name):
                return name
    return None


def _child_stmt_lists(stmt: ast.stmt) -> List[List[ast.stmt]]:
    out = []
    for attr in ("body", "orelse", "finalbody"):
        child = getattr(stmt, attr, None)
        if child:
            out.append(child)
    for handler in getattr(stmt, "handlers", []) or []:
        out.append(handler.body)
    return out


def _calls_in_stmt_head(stmt: ast.stmt) -> List[ast.Call]:
    """Call nodes evaluated by this statement itself (not nested stmts)."""
    exprs: List[ast.AST] = []
    if isinstance(stmt, (ast.If, ast.While)):
        exprs = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        exprs = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        exprs = []
    else:
        exprs = [stmt]
    calls: List[ast.Call] = []
    for expr in exprs:
        calls.extend(_calls_in_expr(expr))
    return calls


def _calls_in_expr(expr: ast.AST) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(expr)
        if isinstance(node, ast.Call)
        and not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def check_lock_order(program: Program) -> List[Finding]:
    """Build the global lock-order graph; report cycles and inversions."""
    # 1. per-function acquisition scans.
    per_func: Dict[str, Tuple[list, list]] = {}
    for qualname, info in program.functions.items():
        per_func[qualname] = _scan_lock_events(info)

    # 2. transitive lock sets: locks a call into f may acquire.
    acq_trans: Dict[str, Set[str]] = {
        q: {token for token, _, _ in events[0]} for q, events in per_func.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname in per_func:
            for site in program.callees_of(qualname):
                if site.kind != CALL:
                    continue
                extra = acq_trans.get(site.callee, set()) - acq_trans[qualname]
                if extra:
                    acq_trans[qualname] |= extra
                    changed = True

    # 3. order edges: held -> acquired, with an example site each.
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def add_edge(held: str, acquired: str, module: str, lineno: int) -> None:
        edges.setdefault((held, acquired), (module, lineno))

    callsites = {
        (s.caller, s.lineno): s.callee
        for s in program.calls
        if s.kind == CALL
    }
    for qualname, (acquisitions, calls) in per_func.items():
        info = program.functions[qualname]
        for token, node, held in acquisitions:
            for h in held:
                add_edge(h, token, info.module, node.lineno)
        for call, held in calls:
            if not held:
                continue
            callee = callsites.get((qualname, call.lineno))
            if callee is None:
                continue
            for token in acq_trans.get(callee, set()):
                for h in held:
                    add_edge(h, token, info.module, call.lineno)

    findings: List[Finding] = []

    def module_of(name: str) -> ModuleSource:
        return program.modules[name]

    # 4a. re-entrant self-loops.
    for (held, acquired), (modname, lineno) in sorted(edges.items()):
        if held == acquired:
            findings.append(
                _finding(
                    module_of(modname),
                    lineno,
                    "lock-order",
                    f"lock '{acquired}' acquired while already held "
                    "(non-reentrant locks deadlock here)",
                )
            )

    # 4b. cycles via DFS over the order graph.
    graph: Dict[str, Set[str]] = {}
    for held, acquired in edges:
        if held != acquired:
            graph.setdefault(held, set()).add(acquired)
    for cycle in _find_cycles(graph):
        members = set(cycle)
        modname, lineno = next(
            (
                site
                for (held, acquired), site in sorted(edges.items())
                if held in members and acquired in members
            ),
            next(iter(edges.values())),
        )
        pretty = " -> ".join(cycle + [cycle[0]])
        findings.append(
            _finding(
                module_of(modname),
                lineno,
                "lock-order",
                f"lock-order cycle {pretty}: concurrent threads taking "
                "these locks in different orders can deadlock",
            )
        )

    # 4c. canonical-order inversions.
    rank = {name: i for i, name in enumerate(CANONICAL_LOCK_ORDER)}
    for (held, acquired), (modname, lineno) in sorted(edges.items()):
        if held in rank and acquired in rank and rank[held] > rank[acquired]:
            findings.append(
                _finding(
                    module_of(modname),
                    lineno,
                    "lock-order",
                    f"'{acquired}' acquired while holding '{held}' inverts "
                    "the canonical lock order "
                    f"({' -> '.join(CANONICAL_LOCK_ORDER)})",
                )
            )
    return findings


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Minimal cycle enumeration: one representative cycle per SCC > 1."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1:
                sccs.append(sorted(component))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs


# -- crash-unwind --------------------------------------------------------------

_CRASH_CATCHERS = {"SimulatedCrash", "BaseException"}


def _crashpoint_functions(program: Program) -> Set[str]:
    out: Set[str] = set()
    for qualname, info in program.functions.items():
        for node in _own_nodes(info.node):
            if (
                isinstance(node, ast.Call)
                and _call_tail(node) == "crashpoint"
            ):
                out.add(qualname)
                break
    return out


def _call_tail(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _handler_catches_crash(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in nodes:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name in _CRASH_CATCHERS:
            return True
    return False


def check_crash_unwind(program: Program) -> List[Finding]:
    """No handler reachable from a crashpoint may swallow SimulatedCrash."""
    cp_funcs = _crashpoint_functions(program)
    if not cp_funcs:
        return []
    can_crash = program.transitive_callers(sorted(cp_funcs), kinds=(CALL,))
    callsites = {
        (s.caller, s.lineno): s.callee
        for s in program.calls
        if s.kind == CALL
    }
    findings: List[Finding] = []
    for qualname in sorted(can_crash):
        info = program.functions[qualname]
        module = program.modules[info.module]
        if any(_in_dir(module, d) for d in _CRASH_BOUNDARY_DIRS):
            continue
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Try):
                continue
            if not _try_body_can_crash(node, qualname, cp_funcs, can_crash, callsites):
                continue
            for handler in node.handlers:
                if not _handler_catches_crash(handler):
                    continue
                falls, returns = completion(handler.body)
                if falls or returns:
                    how = "falls through" if falls else "returns"
                    findings.append(
                        _finding(
                            module,
                            handler.lineno,
                            "crash-unwind",
                            "handler catches SimulatedCrash raised inside "
                            f"this try (via a crashpoint) but {how} without "
                            "re-raising; a simulated crash must unwind to "
                            "the chaos harness — add `except SimulatedCrash: "
                            "raise` above it or re-raise",
                        )
                    )
                break  # later handlers never see the crash
    return findings


def _try_body_can_crash(
    node: ast.Try,
    qualname: str,
    cp_funcs: Set[str],
    can_crash: Set[str],
    callsites: Dict[Tuple[str, int], str],
) -> bool:
    stack: List[ast.AST] = list(node.body)
    while stack:
        inner = stack.pop()
        if isinstance(
            inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(inner, ast.Call):
            if _call_tail(inner) == "crashpoint":
                return True
            callee = callsites.get((qualname, inner.lineno))
            if callee is not None and callee in can_crash:
                return True
        stack.extend(ast.iter_child_nodes(inner))
    return False


# -- resource-leak -------------------------------------------------------------


@dataclass
class _Token:
    key: str
    spec: ResourceSpec
    var: Optional[str]
    lineno: int
    guard: Optional[str] = None


def _match_spec_call(
    call: ast.Call,
    method_names: Set[str],
    func: FunctionInfo,
    callsite_index: Dict[Tuple[str, int, str], str],
) -> Optional[Tuple[str, Optional[str]]]:
    """``(method, resolved-callee-class)`` when the call's method matches."""
    tail = _call_tail(call)
    if tail not in method_names:
        return None
    callee = callsite_index.get((func.qualname, call.lineno, tail))
    cls = callee.rpartition(".")[0].rpartition(".")[2] if callee else None
    return tail, cls


def _spec_for_acquire(
    call: ast.Call,
    func: FunctionInfo,
    callsite_index: Dict[Tuple[str, int, str], str],
) -> Optional[ResourceSpec]:
    tail = _call_tail(call)
    for spec in RESOURCE_SPECS:
        if tail != spec.acquire:
            continue
        callee = callsite_index.get((func.qualname, call.lineno, tail))
        if callee is not None:
            cls = callee.rpartition(".")[0].rpartition(".")[2]
            if cls in spec.receiver_classes:
                return spec
            continue
        chain = (
            _receiver_chain(call.func)
            if isinstance(call.func, ast.Attribute)
            else None
        )
        hint = _hint_name(chain) if chain else None
        if hint is not None and hint.lower() in spec.receiver_hints:
            return spec
    return None


def _release_matches(
    call: ast.Call,
    spec: ResourceSpec,
    func: FunctionInfo,
    callsite_index: Dict[Tuple[str, int, str], str],
) -> bool:
    tail = _call_tail(call)
    if tail not in spec.release:
        return False
    callee = callsite_index.get((func.qualname, call.lineno, tail))
    if callee is not None:
        cls = callee.rpartition(".")[0].rpartition(".")[2]
        return cls in spec.receiver_classes
    chain = (
        _receiver_chain(call.func)
        if isinstance(call.func, ast.Attribute)
        else None
    )
    hint = _hint_name(chain) if chain else None
    if hint is not None and hint.lower() in spec.receiver_hints:
        return True
    # ``token.release()`` — receiver is the tracked variable itself.
    return False


def check_resource_leaks(program: Program) -> List[Finding]:
    """Acquire/release pairing on every CFG path, per function."""
    findings: List[Finding] = []
    callsite_index = _callsite_index(program)
    summaries = _release_summaries(program, callsite_index)
    for qualname in sorted(program.functions):
        info = program.functions[qualname]
        module = program.modules[info.module]
        findings.extend(
            _check_function_leaks(info, module, callsite_index, summaries)
        )
    return findings


def _param_names(info: FunctionInfo) -> List[str]:
    node = info.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    return [a.arg for a in node.args.args] + [
        a.arg for a in node.args.kwonlyargs
    ]


@dataclass
class _ReleaseSummaries:
    """Which functions release which of their parameters.

    ``released``: qualname -> {param name: resource kind}; ``params_of``:
    qualname -> positional parameter names (for arg-to-param mapping).
    """

    released: Dict[str, Dict[str, str]]
    params_of: Dict[str, List[str]]


def _release_summaries(
    program: Program,
    callsite_index: Dict[Tuple[str, int, str], str],
) -> _ReleaseSummaries:
    """Per-function release summaries, to a fixpoint.

    A function *releases a parameter* when it passes that parameter to a
    release call of some resource spec (``tel.end_span(span, ...)``), or
    — transitively — forwards it to a callee that does.  Call sites that
    hand a tracked token to such a helper count as releases.
    """
    params_of = {q: _param_names(i) for q, i in program.functions.items()}
    released: Dict[str, Dict[str, str]] = {q: {} for q in program.functions}
    for qualname, info in program.functions.items():
        own_params = set(params_of[qualname])
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            for spec in RESOURCE_SPECS:
                if tail not in spec.release:
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in own_params:
                        released[qualname].setdefault(arg.id, spec.kind)
    changed = True
    while changed:
        changed = False
        for qualname, info in program.functions.items():
            own_params = set(params_of[qualname])
            for node in _own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                tail = _call_tail(node)
                if tail is None:
                    continue
                callee = callsite_index.get((qualname, node.lineno, tail))
                if callee is None or not released.get(callee):
                    continue
                for arg_name, kind in _released_args(
                    node, callee, params_of, released[callee]
                ):
                    if (
                        arg_name in own_params
                        and arg_name not in released[qualname]
                    ):
                        released[qualname][arg_name] = kind
                        changed = True
    return _ReleaseSummaries(
        released={q: s for q, s in released.items() if s},
        params_of=params_of,
    )


def _released_args(
    call: ast.Call,
    callee: str,
    params_of: Dict[str, List[str]],
    released_params: Dict[str, str],
) -> List[Tuple[str, str]]:
    """``(caller-side arg name, kind)`` pairs a call releases via ``callee``.

    Positional arguments are mapped onto the callee's parameter list,
    skipping a leading ``self``/``cls`` (bound method calls do not pass
    it explicitly).
    """
    params = params_of.get(callee, [])
    offset = 1 if params[:1] and params[0] in ("self", "cls") else 0
    out: List[Tuple[str, str]] = []
    for j, arg in enumerate(call.args):
        if not isinstance(arg, ast.Name):
            continue
        idx = offset + j
        if idx < len(params) and params[idx] in released_params:
            out.append((arg.id, released_params[params[idx]]))
    for kw in call.keywords:
        if (
            kw.arg is not None
            and isinstance(kw.value, ast.Name)
            and kw.arg in released_params
        ):
            out.append((kw.value.id, released_params[kw.arg]))
    return out


def _with_call_ids(func_node: ast.AST) -> Set[int]:
    out: Set[int] = set()
    for node in _own_nodes(func_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for call in ast.walk(item.context_expr):
                    if isinstance(call, ast.Call):
                        out.add(id(call))
    return out


def _escaped_names(func_node: ast.AST) -> Set[str]:
    """Variable names whose value escapes the function's ownership."""
    escaped: Set[str] = set()
    for node in _own_nodes(func_node):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            escaped.add(node.value.id)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value
            if isinstance(value, ast.Name):
                escaped.add(value.id)
        elif isinstance(node, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ) and isinstance(node.value, ast.Name):
                escaped.add(node.value.id)
    return escaped


def _check_function_leaks(
    info: FunctionInfo,
    module: ModuleSource,
    callsite_index: Dict[Tuple[str, int, str], str],
    summaries: _ReleaseSummaries,
) -> List[Finding]:
    node = info.node
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    with_calls = _with_call_ids(node)

    # -- find acquisitions bound to locals ---------------------------------
    tokens: Dict[str, _Token] = {}
    discarded: List[Tuple[ResourceSpec, int]] = []
    for stmt in _own_nodes(node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            var = stmt.targets[0].id
            guard = None
            value = stmt.value
            if isinstance(value, ast.IfExp) and isinstance(
                _first_name(value.test), ast.Name
            ):
                guard = _first_name(value.test).id
            for call in _calls_in_expr(stmt.value):
                if id(call) in with_calls:
                    continue
                spec = _spec_for_acquire(call, info, callsite_index)
                if spec is not None:
                    key = f"{spec.kind}:{var}"
                    tokens[key] = _Token(
                        key=key,
                        spec=spec,
                        var=var,
                        lineno=stmt.lineno,
                        guard=guard,
                    )
        elif isinstance(stmt, ast.Expr):
            for call in _calls_in_expr(stmt.value):
                if id(call) in with_calls:
                    continue
                spec = _spec_for_acquire(call, info, callsite_index)
                if spec is not None:
                    discarded.append((spec, call.lineno))
    findings = [
        _finding(
            module,
            lineno,
            "resource-leak",
            f"{spec.kind} acquired via {spec.acquire}() and immediately "
            "discarded; bind it and release it (or use a `with` block)",
        )
        for spec, lineno in discarded
    ]
    if not tokens:
        return findings

    escaped = _escaped_names(node)
    tokens = {
        key: tok
        for key, tok in tokens.items()
        if tok.var not in escaped
    }
    if not tokens:
        return findings

    # -- build gen/kill over the CFG ---------------------------------------
    cfg = build_cfg(node)
    gen: Dict[int, Set[str]] = {}
    kill: Dict[int, Set[str]] = {}
    by_var = {tok.var: tok for tok in tokens.values()}
    for block in cfg.blocks:
        if block.stmt is None:
            continue
        for call in _calls_in_stmt_head(block.stmt):
            if id(call) in with_calls:
                continue
            spec = _spec_for_acquire(call, info, callsite_index)
            if spec is not None and isinstance(block.stmt, ast.Assign):
                targets = block.stmt.targets
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    key = f"{spec.kind}:{targets[0].id}"
                    if key in tokens:
                        gen.setdefault(block.bid, set()).add(key)
            for key, tok in tokens.items():
                if _kills_token(call, tok, info, callsite_index, summaries):
                    kill.setdefault(block.bid, set()).add(key)
        # rebinding the variable to something else drops the old value.
        if isinstance(block.stmt, ast.Assign):
            targets = block.stmt.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                var = targets[0].id
                tok = by_var.get(var)
                if tok is not None and tok.key not in gen.get(
                    block.bid, set()
                ):
                    kill.setdefault(block.bid, set()).add(tok.key)

    # -- guard promotion at if-joins ---------------------------------------
    extra_kills: Dict[int, Set[str]] = {}
    for stmt in _own_nodes(node):
        if not isinstance(stmt, ast.If):
            continue
        join = cfg.if_joins.get(id(stmt))
        if join is None:
            continue
        guard = _guard_test(stmt.test)
        if guard is None:
            continue
        test_name, truthy_means_live = guard
        live_branch = stmt.body if truthy_means_live else stmt.orelse
        for key, tok in tokens.items():
            guard_names = {tok.var}
            if tok.guard:
                guard_names.add(tok.guard)
            if test_name not in guard_names:
                continue
            if _branch_releases(
                live_branch, tok, info, callsite_index, summaries
            ):
                extra_kills.setdefault(join.bid, set()).add(key)

    analysis = GenKill(gen=gen, kill=kill, extra_kills=extra_kills)
    in_states = analysis.solve(cfg, edge_filter=drop_exc_base)
    held_exit = in_states[cfg.exit_block.bid]
    held_raise = in_states[cfg.raise_block.bid]
    for key in sorted(tokens):
        tok = tokens[key]
        on_normal = key in held_exit
        on_error = key in held_raise
        if not on_normal and not on_error:
            continue
        if on_normal and on_error:
            where = "on both normal and error paths"
        elif on_normal:
            where = "on a normal path"
        else:
            where = "on an error path (release it in a `finally`)"
        findings.append(
            _finding(
                module,
                tok.lineno,
                "resource-leak",
                f"{tok.spec.kind} '{tok.var}' acquired here may never be "
                f"released {where}",
            )
        )
    return findings


def _first_name(expr: ast.AST) -> Optional[ast.Name]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            return node
    return None


def _guard_test(test: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(name, truthy-means-live)`` for a None/truthiness guard test.

    ``if x:`` / ``if x is not None:`` -> ``(x, True)`` — the *body* runs
    with the token live.  ``if not x:`` / ``if x is None:`` ->
    ``(x, False)`` — the *else* branch is the live one.
    """
    if isinstance(test, ast.Name):
        return test.id, True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _guard_test(test.operand)
        if inner is not None:
            return inner[0], not inner[1]
        return None
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return test.left.id, isinstance(test.ops[0], ast.IsNot)
    return None


def _branch_releases(
    stmts: Sequence[ast.stmt],
    tok: _Token,
    info: FunctionInfo,
    callsite_index: Dict[Tuple[str, int, str], str],
    summaries: _ReleaseSummaries,
) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and _kills_token(
                node, tok, info, callsite_index, summaries
            ):
                return True
    return False


def _kills_token(
    call: ast.Call,
    tok: _Token,
    info: FunctionInfo,
    callsite_index: Dict[Tuple[str, int, str], str],
    summaries: _ReleaseSummaries,
) -> bool:
    tail = _call_tail(call)
    if tail in tok.spec.release:
        # token passed as an argument: pool.release(sess), store.finish(tok).
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id == tok.var:
                return True
        # token as receiver: sess.release() style.
        if isinstance(call.func, ast.Attribute):
            chain = _receiver_chain(call.func)
            if chain and chain[-1] == tok.var:
                return True
        # no token argument at all: close_all()/scavenge() sweep the kind,
        # provided the receiver matches the spec.
        has_name_args = any(isinstance(a, ast.Name) for a in call.args)
        if not has_name_args and _release_matches(
            call, tok.spec, info, callsite_index
        ):
            return True
        return False
    # interprocedural: the token is handed to a helper whose summary says
    # it releases that argument (self._record_attempt(tel, span, ...)).
    if tail is None:
        return False
    callee = callsite_index.get((info.qualname, call.lineno, tail))
    if callee is None:
        return False
    released = summaries.released.get(callee)
    if not released:
        return False
    for arg_name, kind in _released_args(
        call, callee, summaries.params_of, released
    ):
        if arg_name == tok.var and kind == tok.spec.kind:
            return True
    return False


# -- determinism-taint ---------------------------------------------------------


def _wallclock_exempt(module: ModuleSource) -> bool:
    return any(_in_dir(module, d) for d in _WALLCLOCK_EXEMPT_DIRS) or any(
        _endswith(module, f) for f in _WALLCLOCK_EXEMPT_FILES
    )


def _direct_taints(program: Program) -> Tuple[Set[str], Set[str]]:
    """(wallclock-tainted, randomness-tainted) functions, direct only."""
    wall: Set[str] = set()
    rand: Set[str] = set()
    imports_by_module = {
        name: import_map(mod.tree) for name, mod in program.modules.items()
    }
    for qualname, info in program.functions.items():
        imports = imports_by_module[info.module]
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            full = resolve_name(node.func, imports)
            if full is None:
                continue
            if full in WALLCLOCK_BANNED:
                wall.add(qualname)
            elif full == "random.Random":
                if not node.args and not node.keywords:
                    rand.add(qualname)
            elif full.startswith("random.") and full != "random.Random":
                rand.add(qualname)
    return wall, rand


def check_determinism_taint(program: Program) -> List[Finding]:
    """Flag cross-module calls that launder wallclock time or randomness."""
    wall_direct, rand_direct = _direct_taints(program)
    wall_tainted = program.transitive_callers(sorted(wall_direct), kinds=(CALL,))
    rand_tainted = program.transitive_callers(sorted(rand_direct), kinds=(CALL,))
    findings: List[Finding] = []
    for site in program.calls:
        if site.kind != CALL:
            continue
        caller = program.functions.get(site.caller)
        callee = program.functions.get(site.callee)
        if caller is None or callee is None:
            continue
        if caller.module == callee.module:
            continue
        caller_module = program.modules[caller.module]
        callee_module = program.modules[callee.module]
        if site.callee in wall_tainted and not _wallclock_exempt(
            caller_module
        ):
            # Only boundary crossings into the exempt zone are news; a
            # tainted callee in a checked module is already lint-flagged
            # at its own direct wall-clock call.
            if _wallclock_exempt(callee_module):
                findings.append(
                    _finding(
                        caller_module,
                        site.lineno,
                        "determinism-taint",
                        f"call into {site.callee}() reaches a wall-clock "
                        "read; engine code must take time from "
                        "SimulatedClock even through telemetry helpers",
                    )
                )
        if site.callee in rand_tainted and site.callee not in rand_direct:
            findings.append(
                _finding(
                    caller_module,
                    site.lineno,
                    "determinism-taint",
                    f"call into {site.callee}() transitively uses unseeded "
                    "global randomness; thread a seeded random.Random "
                    "instance instead",
                )
            )
        elif site.callee in rand_direct:
            findings.append(
                _finding(
                    caller_module,
                    site.lineno,
                    "determinism-taint",
                    f"call into {site.callee}() uses unseeded global "
                    "randomness; thread a seeded random.Random instance "
                    "instead",
                )
            )
    return findings


# -- crashpoint-reachability ---------------------------------------------------


def check_crashpoint_reachability(
    program: Program,
    registry: Optional[Dict[str, str]] = None,
    entry_suffixes: Sequence[str] = ENTRY_SUFFIXES,
) -> List[Finding]:
    """Every registered crashpoint is instrumented *and* reachable."""
    if registry is None:
        from repro.chaos.crashpoints import CRASHPOINTS

        registry = CRASHPOINTS
    # instrumented sites: name -> [(function qualname, lineno)].
    sites: Dict[str, List[Tuple[str, int]]] = {}
    for qualname, info in program.functions.items():
        for node in _own_nodes(info.node):
            if (
                isinstance(node, ast.Call)
                and _call_tail(node) == "crashpoint"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                sites.setdefault(node.args[0].value, []).append(
                    (qualname, node.lineno)
                )

    roots: List[str] = []
    for qualname, info in program.functions.items():
        module = program.modules[info.module]
        if not any(_endswith(module, suffix) for suffix in entry_suffixes):
            continue
        if not info.is_public:
            continue
        if info.cls is not None and info.cls.rpartition(".")[2].startswith("_"):
            continue
        roots.append(qualname)
    reachable = program.reachable_from(sorted(roots), kinds=(CALL, REF, LEXICAL))

    registry_module = next(
        (
            mod
            for mod in program.modules.values()
            if _endswith(mod, "chaos/crashpoints.py")
        ),
        None,
    )
    findings: List[Finding] = []
    for name in sorted(registry):
        here = sites.get(name)
        if not here:
            if registry_module is not None:
                findings.append(
                    _finding(
                        registry_module,
                        _registry_line(registry_module, name),
                        "crashpoint-reachability",
                        f"crashpoint {name!r} is registered but never "
                        "instrumented by a crashpoint() call — the chaos "
                        "sweep reports it covered while no code path can "
                        "hit it",
                    )
                )
            continue
        if not any(func in reachable for func, _ in here):
            func, lineno = here[0]
            info = program.functions[func]
            findings.append(
                _finding(
                    program.modules[info.module],
                    lineno,
                    "crashpoint-reachability",
                    f"crashpoint {name!r} is instrumented in {func} but "
                    "that function is not reachable from any public "
                    "FE/service/STO entrypoint",
                )
            )
    return findings


def _registry_line(module: ModuleSource, name: str) -> int:
    for lineno, line in enumerate(module.source.splitlines(), start=1):
        if f'"{name}"' in line or f"'{name}'" in line:
            return lineno
    return 1


# -- the deep runner -----------------------------------------------------------

#: check name -> callable(program) (crashpoint-reachability is special-cased).
_CHECKS = {
    "lock-order": check_lock_order,
    "crash-unwind": check_crash_unwind,
    "resource-leak": check_resource_leaks,
    "determinism-taint": check_determinism_taint,
}


def run_deep(
    paths: Sequence[Path],
    strict: bool = False,
    checks: Optional[Sequence[str]] = None,
    crashpoint_registry: Optional[Dict[str, str]] = None,
    entry_suffixes: Sequence[str] = ENTRY_SUFFIXES,
) -> List[Finding]:
    """Run the whole-program analyses over ``paths``.

    Suppressions on the flagged line (``# repro: ignore[rule]``) are
    honoured; in strict mode a suppression naming *only* deep rules that
    matched nothing is reported as ``useless-suppression``.  The
    crashpoint-reachability check runs only when the scanned tree
    contains the registry module (``chaos/crashpoints.py``) or when a
    registry is injected explicitly.
    """
    program = Program.load([Path(p) for p in paths])
    wanted = set(checks) if checks is not None else set(DEEP_RULES)
    findings: List[Finding] = []
    for name, check in _CHECKS.items():
        if name in wanted:
            findings.extend(check(program))
    if "crashpoint-reachability" in wanted:
        has_registry = crashpoint_registry is not None or any(
            _endswith(mod, "chaos/crashpoints.py")
            for mod in program.modules.values()
        )
        if has_registry:
            findings.extend(
                check_crashpoint_reachability(
                    program,
                    registry=crashpoint_registry,
                    entry_suffixes=entry_suffixes,
                )
            )
    findings = _apply_suppressions(program, findings, strict=strict)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def _apply_suppressions(
    program: Program, findings: List[Finding], strict: bool
) -> List[Finding]:
    by_relpath = {mod.relpath: mod for mod in program.modules.values()}
    used: Set[Tuple[str, int]] = set()
    kept: List[Finding] = []
    for finding in findings:
        module = by_relpath.get(finding.path)
        names = (
            module.suppressions.get(finding.line) if module is not None else None
        )
        if names is not None and ("*" in names or finding.rule in names):
            used.add((finding.path, finding.line))
            continue
        kept.append(finding)
    if strict:
        deep = set(DEEP_RULES)
        for module in program.modules.values():
            for lineno, names in sorted(module.suppressions.items()):
                explicit = names - {"*"}
                if not explicit or not explicit <= deep:
                    continue
                if (module.relpath, lineno) not in used:
                    kept.append(
                        _finding(
                            module,
                            lineno,
                            "useless-suppression",
                            "deep-analysis suppression matched no finding",
                        )
                    )
    return kept
