"""Command-line front end: ``python -m repro.analysis`` / ``repro-analysis``.

Exit status is 0 when the tree is clean and 1 when there are findings (or
SI violations), so CI can gate on it directly.  Reports are one finding
per line, ``path:line: rule: message``, sorted by file.

Usage::

    python -m repro.analysis [--strict] [paths...]   # lint (default: repro pkg)
    python -m repro.analysis --deep [--strict]       # + whole-program analyses
    python -m repro.analysis --format=json|sarif     # machine-readable output
    python -m repro.analysis --deep --baseline analysis-baseline.json
    python -m repro.analysis --deep --write-baseline analysis-baseline.json
    python -m repro.analysis --list-rules            # show the rule catalogue
    python -m repro.analysis --rules a,b paths...    # run a subset of rules
    python -m repro.analysis --si-history t.jsonl    # sanitize a recorded trace
    python -m repro.analysis --si-smoke              # end-to-end self-check

With ``--baseline``, only findings whose stable ID is *not* listed in the
baseline file fail the run (ratchet semantics): known debt is tracked,
new violations always exit 1.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.deep_rules import run_deep
from repro.analysis.framework import all_rules, lint_paths
from repro.analysis.output import (
    load_baseline,
    partition_baseline,
    render,
    write_baseline,
)
from repro.analysis.si import (
    check_history,
    format_violations,
    load_history_jsonl,
)


def _default_target() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis.deep_rules import DEEP_RULES

    rules = None
    deep_checks = None
    if args.rules:
        wanted = {name.strip() for name in args.rules.split(",") if name.strip()}
        known = {rule.name: rule for rule in all_rules()}
        deep_checks = sorted(wanted & set(DEEP_RULES))
        unknown = sorted(wanted - set(known) - set(DEEP_RULES))
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known) + sorted(DEEP_RULES))}",
                file=sys.stderr,
            )
            return 2
        rules = [known[name] for name in sorted(wanted & set(known))]
    targets = [Path(p) for p in args.paths] or [_default_target()]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(targets, rules=rules, strict=args.strict)
    if args.deep:
        findings = findings + run_deep(
            targets, strict=args.strict, checks=deep_checks
        )
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if args.write_baseline:
        write_baseline(findings, Path(args.write_baseline))
        print(
            f"baseline written: {len(findings)} finding(s) -> "
            f"{args.write_baseline}"
        )
        return 0

    known_count = 0
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(
                f"error: baseline file not found: {args.baseline}",
                file=sys.stderr,
            )
            return 2
        findings, known = partition_baseline(
            findings, load_baseline(baseline_path)
        )
        known_count = len(known)

    if findings:
        print(render(findings, args.format))
        label = "new finding(s)" if args.baseline else "finding(s)"
        print(f"\n{len(findings)} {label}", file=sys.stderr)
        return 1
    if args.format != "text":
        print(render(findings, args.format))
        return 0
    checked = ", ".join(str(t) for t in targets)
    mode = "lint+deep" if args.deep else "lint"
    suffix = f" ({known_count} baselined)" if known_count else ""
    print(
        f"clean [{mode}]: "
        f"{len(all_rules() if rules is None else rules)} rule(s) over "
        f"{checked}{suffix}"
    )
    return 0


def _run_si_history(path: str) -> int:
    records = load_history_jsonl(path)
    violations = check_history(records)
    if violations:
        print(format_violations(violations))
        print(f"\n{len(violations)} SI violation(s)", file=sys.stderr)
        return 1
    committed = sum(1 for r in records if r.committed)
    print(
        f"clean: {len(records)} transaction(s) ({committed} committed) "
        "satisfy the SI axioms"
    )
    return 0


def _run_si_smoke() -> int:
    """End-to-end self-check of the sanitizer against a live warehouse.

    Runs a small concurrent workload (including a forced first-committer-
    wins conflict), asserts the recorded history is clean, then tampers
    with the history and asserts the checker flags the tampered version —
    proving both halves: real histories pass, violating ones are caught.
    """
    import numpy as np

    from repro import PolarisConfig, Schema, Warehouse
    from repro.analysis.si import HistoryRecorder
    from repro.common.errors import WriteConflictError

    config = PolarisConfig()
    config.distributions = 4
    config.rows_per_cell = 1_000
    warehouse = Warehouse(config=config, auto_optimize=False)
    recorder = HistoryRecorder().attach(warehouse.context.bus)

    session = warehouse.session()
    session.create_table(
        "t", Schema.of(("id", "int64"), ("v", "float64")), distribution_column="id"
    )
    session.insert(
        "t",
        {"id": np.arange(200, dtype=np.int64), "v": np.zeros(200)},
    )
    # Forced write-write conflict: two snapshot transactions update the
    # same table; the second committer must lose.
    from repro import BinOp, Col, Lit

    a, b = warehouse.session(), warehouse.session()
    a.begin()
    b.begin()
    a.update("t", BinOp("<", Col("id"), Lit(50)), {"v": Lit(1.0)})
    b.update("t", BinOp("<", Col("id"), Lit(10)), {"v": Lit(2.0)})
    a.commit()
    conflicted = False
    try:
        b.commit()
    except WriteConflictError:
        conflicted = True
    if not conflicted:
        print("error: expected a first-committer-wins conflict", file=sys.stderr)
        return 1

    recorder.detach()
    history = recorder.history()
    violations = check_history(history)
    if violations:
        print(format_violations(violations), file=sys.stderr)
        print("error: live history should be clean", file=sys.stderr)
        return 1

    committed = sum(1 for r in history if r.committed)
    # Tamper: pretend the losing transaction committed anyway.  The records
    # are mutated in place (shallow copy), which is fine: the clean-history
    # verdict above is already in, and the stats are already counted.
    tampered = [r for r in history]
    loser = next(
        r for r in tampered if r.aborted and not r.committed and r.reads
    )
    loser.committed = True
    loser.aborted = False
    loser.commit_seq = max(
        (r.commit_seq or 0) for r in tampered if r.commit_seq is not None
    ) + 1
    winner = next(r for r in tampered if r.committed and r.units)
    loser.units = winner.units
    caught = check_history(tampered)
    if not any(v.check == "first-committer-wins" for v in caught):
        print("error: sanitizer missed the tampered double-commit", file=sys.stderr)
        return 1
    print(
        f"si-smoke ok: {len(history)} txns recorded ({committed} committed), "
        "live history clean, tampered double-commit caught "
        f"({len(caught)} violation(s) flagged)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="Invariant linter + snapshot-isolation sanitizer",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also flag suppression comments that suppress nothing",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program analyses (call graph + CFG)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="ratchet file of known finding IDs; only new findings fail",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--si-history",
        metavar="JSONL",
        help="verify SI axioms over a recorded transaction-history JSONL",
    )
    parser.add_argument(
        "--si-smoke",
        action="store_true",
        help="run the end-to-end sanitizer self-check on a live warehouse",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0
    if args.si_history:
        return _run_si_history(args.si_history)
    if args.si_smoke:
        return _run_si_smoke()
    return _run_lint(args)


if __name__ == "__main__":
    sys.exit(main())
