"""Per-function control-flow graphs for the deep analyses.

One :class:`Block` per statement, plus synthetic empty blocks for control
joins.  Edges carry a kind:

``normal``
    ordinary fall-through / branch flow;
``exc``
    the statement (or ``try`` dispatch) raised and the exception is
    propagating — *any* exception type;
``exc-base``
    only a ``BaseException`` that is **not** an ``Exception`` travels
    this edge — it is the unmatched edge out of a ``try`` whose handlers
    catch ``Exception`` (or bare).  In this codebase that means
    ``SimulatedCrash``, whose escape is a *process crash*, so analyses
    that reason about ordinary error paths filter these edges out.

``try``/``except``/``else``/``finally`` are modelled precisely enough
for may-analyses: the ``finally`` body is built once for the normal
continuation and once for the exceptional continuation, and abrupt exits
(``return``/``break``/``continue``) are routed through every enclosing
``finally`` before reaching their target.  Every function has a single
:attr:`Cfg.exit_block` (normal completion) and a single
:attr:`Cfg.raise_block` (uncaught exception).

``with`` bodies are *not* given special release semantics here — context
managers release in ``__exit__`` on every path, which the analyses model
at a higher level (``with`` acquisitions are exempt from leak pairing).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Edge kinds.
NORMAL, EXC, EXC_BASE = "normal", "exc", "exc-base"

#: Names that, caught by a handler, stop *every* exception (nothing escapes).
_CATCH_ALL = {"BaseException"}
#: Names that stop every ordinary Exception but not BaseException crashes.
_CATCH_EXCEPTION = {"Exception"}


@dataclass
class Block:
    """One CFG node: at most one statement plus outgoing kind-tagged edges."""

    bid: int
    stmt: Optional[ast.stmt] = None
    label: str = ""
    succs: List[Tuple["Block", str]] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.label or type(self.stmt).__name__ if self.stmt else self.label
        return f"<B{self.bid} {tag}>"


@dataclass
class Cfg:
    """A built control-flow graph for one function body."""

    blocks: List[Block]
    entry: Block
    exit_block: Block
    raise_block: Block
    #: ``id(ast.If)`` -> synthetic join block after the If (guard promotion).
    if_joins: Dict[int, Block] = field(default_factory=dict)

    def preds(self) -> Dict[int, List[Tuple[Block, str]]]:
        """Block id -> incoming ``(source, kind)`` edges."""
        out: Dict[int, List[Tuple[Block, str]]] = {b.bid: [] for b in self.blocks}
        for block in self.blocks:
            for succ, kind in block.succs:
                out[succ.bid].append((block, kind))
        return out


@dataclass
class _FinallyFrame:
    stmts: List[ast.stmt]
    exc_depth: int
    fin_index: int


@dataclass
class _LoopFrame:
    head: Block
    fin_floor: int
    break_outs: List[Block] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.exit_block = self._new(label="exit")
        self.raise_block = self._new(label="raise")
        self.if_joins: Dict[int, Block] = {}
        self.exc_stack: List[Block] = [self.raise_block]
        self.finally_stack: List[_FinallyFrame] = []
        self.loop_stack: List[_LoopFrame] = []

    def _new(self, stmt: Optional[ast.stmt] = None, label: str = "") -> Block:
        block = Block(bid=len(self.blocks), stmt=stmt, label=label)
        self.blocks.append(block)
        return block

    @staticmethod
    def _link(src: Block, dst: Block, kind: str) -> None:
        edge = (dst, kind)
        if edge not in src.succs:
            src.succs.append(edge)

    def _link_all(self, frontier: List[Block], dst: Block, kind: str = NORMAL) -> None:
        for block in frontier:
            self._link(block, dst, kind)

    # -- abrupt-exit routing ----------------------------------------------

    def _run_finallys(self, frontier: List[Block], floor: int) -> List[Block]:
        """Route ``frontier`` through every finally frame above ``floor``."""
        for frame in reversed(self.finally_stack[floor:]):
            saved_exc = self.exc_stack
            saved_fin = self.finally_stack
            self.exc_stack = saved_exc[: frame.exc_depth]
            self.finally_stack = saved_fin[: frame.fin_index]
            entry = self._new(label="finally(abrupt)")
            self._link_all(frontier, entry)
            frontier = self._stmts(frame.stmts, [entry])
            self.exc_stack = saved_exc
            self.finally_stack = saved_fin
        return frontier

    # -- statement dispatch ------------------------------------------------

    def _stmts(self, stmts: List[ast.stmt], frontier: List[Block]) -> List[Block]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: List[Block]) -> List[Block]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, frontier)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, frontier)
        block = self._new(stmt=stmt)
        self._link_all(frontier, block)
        if _may_raise(stmt):
            self._link(block, self.exc_stack[-1], EXC)
        return [block]

    def _if(self, stmt: ast.If, frontier: List[Block]) -> List[Block]:
        head = self._new(stmt=stmt, label="if")
        self._link_all(frontier, head)
        if _expr_may_raise(stmt.test):
            self._link(head, self.exc_stack[-1], EXC)
        body_outs = self._stmts(stmt.body, [head])
        else_outs = self._stmts(stmt.orelse, [head])
        join = self._new(label="if-join")
        self._link_all(body_outs + else_outs, join)
        self.if_joins[id(stmt)] = join
        return [join]

    def _while(self, stmt: ast.While, frontier: List[Block]) -> List[Block]:
        head = self._new(stmt=stmt, label="while")
        self._link_all(frontier, head)
        if _expr_may_raise(stmt.test):
            self._link(head, self.exc_stack[-1], EXC)
        frame = _LoopFrame(head=head, fin_floor=len(self.finally_stack))
        self.loop_stack.append(frame)
        body_outs = self._stmts(stmt.body, [head])
        self._link_all(body_outs, head)
        self.loop_stack.pop()
        infinite = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        normal_exit = [] if infinite else [head]
        else_outs = self._stmts(stmt.orelse, normal_exit) if stmt.orelse else normal_exit
        return else_outs + frame.break_outs

    def _for(self, stmt: ast.stmt, frontier: List[Block]) -> List[Block]:
        head = self._new(stmt=stmt, label="for")
        self._link_all(frontier, head)
        self._link(head, self.exc_stack[-1], EXC)
        frame = _LoopFrame(head=head, fin_floor=len(self.finally_stack))
        self.loop_stack.append(frame)
        body_outs = self._stmts(stmt.body, [head])
        self._link_all(body_outs, head)
        self.loop_stack.pop()
        orelse = getattr(stmt, "orelse", [])
        else_outs = self._stmts(orelse, [head]) if orelse else [head]
        return else_outs + frame.break_outs

    def _with(self, stmt: ast.stmt, frontier: List[Block]) -> List[Block]:
        head = self._new(stmt=stmt, label="with")
        self._link_all(frontier, head)
        self._link(head, self.exc_stack[-1], EXC)
        return self._stmts(stmt.body, [head])

    def _return(self, stmt: ast.Return, frontier: List[Block]) -> List[Block]:
        block = self._new(stmt=stmt, label="return")
        self._link_all(frontier, block)
        if stmt.value is not None and _expr_may_raise(stmt.value):
            self._link(block, self.exc_stack[-1], EXC)
        outs = self._run_finallys([block], 0)
        self._link_all(outs, self.exit_block)
        return []

    def _raise(self, stmt: ast.Raise, frontier: List[Block]) -> List[Block]:
        block = self._new(stmt=stmt, label="raise-stmt")
        self._link_all(frontier, block)
        self._link(block, self.exc_stack[-1], EXC)
        return []

    def _break(self, stmt: ast.Break, frontier: List[Block]) -> List[Block]:
        block = self._new(stmt=stmt, label="break")
        self._link_all(frontier, block)
        if self.loop_stack:
            frame = self.loop_stack[-1]
            frame.break_outs.extend(self._run_finallys([block], frame.fin_floor))
        return []

    def _continue(self, stmt: ast.Continue, frontier: List[Block]) -> List[Block]:
        block = self._new(stmt=stmt, label="continue")
        self._link_all(frontier, block)
        if self.loop_stack:
            frame = self.loop_stack[-1]
            outs = self._run_finallys([block], frame.fin_floor)
            self._link_all(outs, frame.head)
        return []

    # -- try/except/else/finally ------------------------------------------

    def _try(self, stmt: ast.Try, frontier: List[Block]) -> List[Block]:
        outer_exc = self.exc_stack[-1]
        if stmt.finalbody:
            # Exceptional copy of the finally body: runs outside this
            # try's own frame, then re-propagates to the outer target.
            fin_exc_entry = self._new(label="finally(exc)")
            fin_outs = self._stmts(stmt.finalbody, [fin_exc_entry])
            self._link_all(fin_outs, outer_exc, EXC)
            effective_outer = fin_exc_entry
            self.finally_stack.append(
                _FinallyFrame(
                    stmts=stmt.finalbody,
                    exc_depth=len(self.exc_stack),
                    fin_index=len(self.finally_stack),
                )
            )
        else:
            effective_outer = outer_exc

        if stmt.handlers:
            dispatch = self._new(label="dispatch")
            self.exc_stack.append(dispatch)
            body_outs = self._stmts(stmt.body, frontier)
            self.exc_stack.pop()

            self.exc_stack.append(effective_outer)
            handler_outs: List[Block] = []
            for handler in stmt.handlers:
                entry = self._new(label=f"except:{_handler_label(handler)}")
                self._link(dispatch, entry, EXC)
                handler_outs.extend(self._stmts(handler.body, [entry]))
            if not self._catches_everything(stmt.handlers):
                kind = (
                    EXC_BASE
                    if self._catches_exception(stmt.handlers)
                    else EXC
                )
                self._link(dispatch, effective_outer, kind)
            else_outs = (
                self._stmts(stmt.orelse, body_outs) if stmt.orelse else body_outs
            )
            self.exc_stack.pop()
            normal_outs = else_outs + handler_outs
        else:
            self.exc_stack.append(effective_outer)
            normal_outs = self._stmts(stmt.body, frontier)
            self.exc_stack.pop()

        if stmt.finalbody:
            self.finally_stack.pop()
            fin_norm_entry = self._new(label="finally(normal)")
            self._link_all(normal_outs, fin_norm_entry)
            return self._stmts(stmt.finalbody, [fin_norm_entry])
        return normal_outs

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> List[str]:
        if handler.type is None:
            return ["<bare>"]
        nodes = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        out = []
        for node in nodes:
            if isinstance(node, ast.Attribute):
                out.append(node.attr)
            elif isinstance(node, ast.Name):
                out.append(node.id)
            else:
                out.append("<bare>")
        return out or ["<bare>"]

    @classmethod
    def _catches_everything(cls, handlers: List[ast.ExceptHandler]) -> bool:
        for handler in handlers:
            if handler.type is None:
                return True
            if set(cls._handler_names(handler)) & _CATCH_ALL:
                return True
        return False

    @classmethod
    def _catches_exception(cls, handlers: List[ast.ExceptHandler]) -> bool:
        for handler in handlers:
            if set(cls._handler_names(handler)) & _CATCH_EXCEPTION:
                return True
        return False


def build_cfg(func: ast.AST) -> Cfg:
    """Build the CFG for one function/method definition node."""
    builder = _Builder()
    entry = builder._new(label="entry")
    outs = builder._stmts(getattr(func, "body", []), [entry])
    builder._link_all(outs, builder.exit_block)
    return Cfg(
        blocks=builder.blocks,
        entry=entry,
        exit_block=builder.exit_block,
        raise_block=builder.raise_block,
        if_joins=builder.if_joins,
    )


def _handler_label(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "bare"
    return "/".join(_Builder._handler_names(handler))


def _expr_may_raise(node: ast.AST) -> bool:
    if isinstance(node, (ast.Name, ast.Constant)):
        return False
    # Literal containers of safe elements cannot raise at construction.
    if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
        return any(_expr_may_raise(elt) for elt in node.elts)
    if isinstance(node, ast.Dict):
        # A ``None`` key is a ``**spread`` — that one may raise.
        return any(k is None or _expr_may_raise(k) for k in node.keys) or any(
            _expr_may_raise(v) for v in node.values
        )
    # Identity tests never invoke user code (no __eq__ dispatch).
    if isinstance(node, ast.Compare):
        return not (
            all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops)
            and not _expr_may_raise(node.left)
            and not any(_expr_may_raise(c) for c in node.comparators)
        )
    return True


def _may_raise(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return False
    if isinstance(stmt, ast.Assign):
        simple_targets = all(isinstance(t, ast.Name) for t in stmt.targets)
        return not (simple_targets and not _expr_may_raise(stmt.value))
    if isinstance(stmt, ast.AnnAssign):
        # Local-variable annotations are not evaluated at runtime.
        return not (
            isinstance(stmt.target, ast.Name)
            and (stmt.value is None or not _expr_may_raise(stmt.value))
        )
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return False
    return True


def completion(stmts: List[ast.stmt]) -> Tuple[bool, bool]:
    """``(falls_through, returns)`` for a statement list, conservatively.

    ``falls_through`` — some path reaches the end of the list without an
    unconditional ``raise``/``return``; ``returns`` — some path executes a
    ``return``.  Used by crash-unwind: a handler *swallows* an exception
    when either is True (the exception stops propagating).
    """
    falls = True
    returns_any = False
    for stmt in stmts:
        if not falls:
            break
        if isinstance(stmt, ast.Return):
            returns_any = True
            falls = False
        elif isinstance(stmt, ast.Raise):
            falls = False
        elif isinstance(stmt, ast.If):
            body_falls, body_returns = completion(stmt.body)
            else_falls, else_returns = completion(stmt.orelse)
            returns_any = returns_any or body_returns or else_returns
            falls = body_falls or else_falls
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_falls, body_returns = completion(stmt.body)
            returns_any = returns_any or body_returns
            falls = body_falls
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            _, body_returns = completion(stmt.body)
            returns_any = returns_any or body_returns
            infinite = (
                isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value)
                and not any(isinstance(n, ast.Break) for n in ast.walk(stmt))
            )
            falls = not infinite
        elif isinstance(stmt, ast.Try):
            body_falls, body_returns = completion(stmt.body + stmt.orelse)
            returns_any = returns_any or body_returns
            falls = body_falls
            for handler in stmt.handlers:
                h_falls, h_returns = completion(handler.body)
                returns_any = returns_any or h_returns
                falls = falls or h_falls
            if stmt.finalbody:
                fin_falls, fin_returns = completion(stmt.finalbody)
                returns_any = returns_any or fin_returns
                falls = falls and fin_falls
    return falls, returns_any
