"""A small forward may-dataflow engine over :mod:`repro.analysis.cfg`.

Facts are ``frozenset`` elements, joined by union (may-analysis).  Each
block's transfer function produces *two* out-states: one for normal
successors and one for exception successors — so an analysis can say
"a failed acquisition never held the resource, but a failing release
still counts as released".

An ``edge_filter`` restricts which edge kinds propagate; the resource
analyses use it to drop ``exc-base`` edges (a ``SimulatedCrash`` escape
is a process crash, not an error path the code must clean up on).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis.cfg import Block, Cfg, EXC, EXC_BASE

State = FrozenSet[str]
EMPTY: State = frozenset()


class ForwardAnalysis:
    """Base class: subclass and implement :meth:`transfer`.

    Call :meth:`solve` with a CFG to get the fixpoint IN-state of every
    block (keyed by ``block.bid``).
    """

    def transfer(self, block: Block, state: State) -> Tuple[State, State]:
        """Return ``(normal_out, exc_out)`` for one block."""
        raise NotImplementedError

    def entry_state(self, cfg: Cfg) -> State:
        """The IN-state of the entry block (default: empty)."""
        return EMPTY

    def solve(
        self,
        cfg: Cfg,
        edge_filter: Optional[Callable[[str], bool]] = None,
    ) -> Dict[int, State]:
        """Iterate to fixpoint; returns block id -> IN-state."""
        in_states: Dict[int, State] = {b.bid: EMPTY for b in cfg.blocks}
        in_states[cfg.entry.bid] = self.entry_state(cfg)
        # Every block is seeded so gen-facts of blocks whose IN never
        # changes (still-empty) are propagated too.
        work: Set[int] = {b.bid for b in cfg.blocks}
        by_id = {b.bid: b for b in cfg.blocks}
        while work:
            bid = work.pop()
            block = by_id[bid]
            normal_out, exc_out = self.transfer(block, in_states[bid])
            for succ, kind in block.succs:
                if edge_filter is not None and not edge_filter(kind):
                    continue
                contribution = (
                    exc_out if kind in (EXC, EXC_BASE) else normal_out
                )
                merged = in_states[succ.bid] | contribution
                if merged != in_states[succ.bid]:
                    in_states[succ.bid] = merged
                    work.add(succ.bid)
        return in_states


class GenKill(ForwardAnalysis):
    """Gen/kill analysis: provide per-block gen and kill sets.

    On the normal out-edge ``out = (in - kill) | gen``; on the exception
    out-edge ``out = in - kill`` (the generating operation is assumed to
    have failed, the killing one to have completed).  ``extra_kills``
    adds kills at synthetic blocks (e.g. guard-promoted releases at an
    ``if`` join).
    """

    def __init__(
        self,
        gen: Dict[int, Set[str]],
        kill: Dict[int, Set[str]],
        extra_kills: Optional[Dict[int, Set[str]]] = None,
    ) -> None:
        self._gen = gen
        self._kill = kill
        self._extra = extra_kills or {}

    def transfer(self, block: Block, state: State) -> Tuple[State, State]:
        """Apply this block's gen/kill (and promoted kills) to ``state``."""
        kill = self._kill.get(block.bid, set()) | self._extra.get(
            block.bid, set()
        )
        gen = self._gen.get(block.bid, set())
        surviving = state - kill if kill else state
        normal = surviving | gen if gen else surviving
        return normal, surviving


def drop_exc_base(kind: str) -> bool:
    """Edge filter excluding ``exc-base`` (crash-only) edges."""
    return kind != EXC_BASE
