"""The repo-specific lint rules.

Each rule enforces one discipline the reproduction's correctness rests on;
``docs/ANALYSIS.md`` maps every rule to the paper section it protects.
Rules are deliberately conservative: they flag only patterns they can
resolve statically, and every flagged line accepts a
``# repro: ignore[rule]`` suppression for the rare justified exception.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from repro.chaos.crashpoints import CRASHPOINTS
from repro.telemetry.names import (
    METRIC_NAMES,
    SPAN_NAMES,
    SPAN_PREFIXES,
    WAIT_NAMES,
    is_well_formed,
)
from repro.analysis.framework import (
    Finding,
    ModuleSource,
    Rule,
    ancestors,
    call_name,
    import_map,
    iter_calls,
    parent_chain,
    register,
    resolve_name,
    with_context_calls,
)


def _in_dir(module: ModuleSource, directory: str) -> bool:
    """Whether the module lives under ``directory`` (posix path segment)."""
    posix = "/" + module.posix
    return f"/{directory}/" in posix


def _endswith(module: ModuleSource, suffix: str) -> bool:
    posix = "/" + module.posix
    return posix.endswith("/" + suffix)


# -- wallclock-purity ----------------------------------------------------------

#: Wall-clock entry points that must never appear outside the clock module.
WALLCLOCK_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallclockPurityRule(Rule):
    """All time must flow through ``SimulatedClock``.

    Reading the datacenter wall clock anywhere in the engine breaks the
    deterministic-replay contract (every experiment exactly repeatable).
    Allowed locations: ``common/clock.py`` (the one place real time could
    legitimately be bridged in) and ``telemetry/`` (export timestamps).
    """

    name = "wallclock-purity"
    description = (
        "no time.time/datetime.now/perf_counter outside common/clock.py "
        "and telemetry/"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield wall-clock usage outside the allowed modules."""
        if _endswith(module, "common/clock.py") or _in_dir(module, "telemetry"):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "time",
                "datetime",
            ):
                for alias in node.names:
                    full = f"{node.module}.{alias.name}"
                    if full in WALLCLOCK_BANNED or (
                        node.module == "datetime"
                        and f"datetime.{alias.name}.now" in WALLCLOCK_BANNED
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"import of wall-clock symbol {full!r}; all time "
                            "must flow through SimulatedClock",
                        )
            elif isinstance(node, ast.Call):
                full = resolve_name(node.func, imports)
                if full in WALLCLOCK_BANNED:
                    yield self.finding(
                        module,
                        node,
                        f"wall-clock call {full}(); use the deployment's "
                        "SimulatedClock instead",
                    )


# -- seeded-randomness ---------------------------------------------------------

#: numpy.random entry points that are seedable-by-construction.
_NUMPY_ALLOWED = {"default_rng", "Generator", "SeedSequence"}


@register
class SeededRandomnessRule(Rule):
    """All randomness must come from seeded ``random.Random`` instances.

    Module-level ``random.*`` calls share hidden global state, so two runs
    with the same config seed can diverge.  RNGs must be
    ``random.Random(seed)`` (or ``numpy.random.default_rng(seed)``)
    instances with the seed threaded from configuration.
    """

    name = "seeded-randomness"
    description = (
        "no module-level random.* calls; RNGs must be seeded "
        "random.Random instances"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield unseeded or global-state randomness usage."""
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(
                            module,
                            node,
                            f"from random import {alias.name}: binds the "
                            "shared global RNG; import Random and seed an "
                            "instance instead",
                        )
            if not isinstance(node, ast.Call):
                continue
            full = resolve_name(node.func, imports)
            if full is None:
                continue
            if full == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed is nondeterministic; "
                        "thread a seed from config",
                    )
            elif full == "random.SystemRandom" or full.startswith(
                "random.SystemRandom."
            ):
                yield self.finding(
                    module, node, "random.SystemRandom is nondeterministic"
                )
            elif full.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"module-level {full}() uses the shared global RNG; use "
                    "a seeded random.Random instance threaded from config",
                )
            elif full.startswith("numpy.random."):
                tail = full[len("numpy.random.") :].split(".")[0]
                if tail not in _NUMPY_ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"global-state {full}(); use "
                        "numpy.random.default_rng(seed) instead",
                    )
                elif tail == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "numpy.random.default_rng() without a seed is "
                        "nondeterministic; thread a seed from config",
                    )


# -- frozen-mutation -----------------------------------------------------------

#: Types whose instances are immutable once committed (registered set).
#: TableSnapshot is "immutable by convention" (a plain dataclass so replay
#: can build it cheaply) — the convention is exactly what this rule enforces.
FROZEN_TYPES = {
    "DataFileInfo",
    "DeletionVectorInfo",
    "AddDataFile",
    "RemoveDataFile",
    "AddDeletionVector",
    "RemoveDeletionVector",
    "Tombstone",
    "TableSnapshot",
    "Checkpoint",
    "PageFile",
}

#: Methods in which a frozen type may legitimately self-initialize.
_INIT_METHODS = {"__init__", "__post_init__", "__new__", "__setstate__"}


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Identifiers mentioned by a type annotation (handles Optional[...])."""
    if node is None:
        return set()
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: pull identifier-looking words.
            for word in sub.value.replace("[", " ").replace("]", " ").split():
                names.add(word.strip('"\' ,'))
    return names


@register
class FrozenMutationRule(Rule):
    """Committed LST structures are immutable.

    Manifest actions, snapshots, tombstones, checkpoints, and page-file
    footers are shared across readers at different sequence ids; mutating
    one in place corrupts every snapshot that references it.  The rule
    flags attribute assignment and ``object.__setattr__`` on variables it
    can infer (from constructor calls or annotations) to be instances of a
    registered immutable type.
    """

    name = "frozen-mutation"
    description = (
        "no attribute assignment or object.__setattr__ on registered "
        "immutable types (manifest actions, snapshots, footers)"
    )

    def _inferred_frozen_vars(self, tree: ast.AST) -> Dict[str, str]:
        inferred: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ctor = call_name(node.value)
                if ctor in FROZEN_TYPES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            inferred[target.id] = ctor
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                hit = _annotation_names(node.annotation) & FROZEN_TYPES
                if hit:
                    inferred[node.target.id] = sorted(hit)[0]
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = list(node.args.args) + list(node.args.kwonlyargs)
                for arg in args:
                    hit = _annotation_names(arg.annotation) & FROZEN_TYPES
                    if hit:
                        inferred[arg.arg] = sorted(hit)[0]
        return inferred

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield mutations of registered immutable types."""
        inferred = self._inferred_frozen_vars(module.tree)
        parents = parent_chain(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in inferred
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"mutation of {inferred[target.value.id]}."
                            f"{target.attr}: committed LST structures are "
                            "immutable; build a new instance instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                    and node.args
                ):
                    first = node.args[0]
                    enclosing = self._enclosing_method(node, parents)
                    if isinstance(first, ast.Name) and first.id in inferred:
                        yield self.finding(
                            module,
                            node,
                            "object.__setattr__ on "
                            f"{inferred[first.id]} bypasses immutability",
                        )
                    elif (
                        isinstance(first, ast.Name)
                        and first.id == "self"
                        and enclosing is not None
                        and enclosing[0] in FROZEN_TYPES
                        and enclosing[1] not in _INIT_METHODS
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"object.__setattr__ on frozen {enclosing[0]} "
                            f"outside {sorted(_INIT_METHODS)}",
                        )

    @staticmethod
    def _enclosing_method(node: ast.AST, parents) -> Optional[tuple]:
        """(class name, method name) lexically containing ``node``, if any."""
        method: Optional[str] = None
        for ancestor in ancestors(node, parents):
            if (
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                and method is None
            ):
                method = ancestor.name
            elif isinstance(ancestor, ast.ClassDef) and method is not None:
                return (ancestor.name, method)
        return None


# -- commit-lock-discipline ----------------------------------------------------

#: Catalog mutation APIs that stamp commit-ordered rows: callers must hold
#: the commit lock, because the sequence id only exists inside it
#: (Section 4.1.2 steps 2-3).  ``upsert_writeset`` is exempt: WriteSets
#: upserts buffer into the root transaction (step 1, before the lock) and
#: are installed under the lock by the engine.
COMMIT_LOCKED_APIS = {"insert_manifest"}


@register
class CommitLockDisciplineRule(Rule):
    """Manifests stamping must happen inside the commit-lock critical section.

    Applies to frontend and STO code (``fe/``, ``sto/``).  A call is
    compliant when it is lexically inside a ``with <lock>.held(...)`` block
    or inside a function registered as a pre-install hook
    (``txn.set_pre_install_hook(fn)``) — the engine invokes those hooks
    under the lock with the freshly assigned sequence id.
    """

    name = "commit-lock-discipline"
    description = (
        "Manifests mutation APIs in fe/ and sto/ must run inside "
        "with commit_lock.held(...) or a registered pre-install hook"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield commit-lock-scoped calls made outside the critical section."""
        if not (_in_dir(module, "fe") or _in_dir(module, "sto")):
            return
        parents = parent_chain(module.tree)
        hook_names = self._pre_install_hook_functions(module.tree)
        for node in iter_calls(module.tree):
            if call_name(node) not in COMMIT_LOCKED_APIS:
                continue
            if self._inside_lock(node, parents, hook_names):
                continue
            yield self.finding(
                module,
                node,
                f"{call_name(node)}() outside the commit-lock critical "
                "section; wrap in `with commit_lock.held(...)` or register "
                "the enclosing function via set_pre_install_hook",
            )

    @staticmethod
    def _pre_install_hook_functions(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in iter_calls(tree):
            if call_name(node) == "set_pre_install_hook":
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
        return names

    @staticmethod
    def _inside_lock(node: ast.AST, parents, hook_names: Set[str]) -> bool:
        for ancestor in ancestors(node, parents):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) and call_name(expr) == "held":
                        return True
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ancestor.name in hook_names:
                    return True
        return False


# -- span-discipline -----------------------------------------------------------


@register
class SpanDisciplineRule(Rule):
    """Tracer spans must be used as context managers.

    ``telemetry.span(...)`` returns a scope that closes the span on exit; a
    bare call leaks an open span and corrupts the trace tree.  Long-lived
    spans use the explicit ``start_span``/``end_span`` pair, which this
    rule leaves alone.  The telemetry implementation itself is exempt.
    """

    name = "span-discipline"
    description = "telemetry .span(...) calls only as `with` context managers"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield span-factory calls not used as context managers."""
        if _in_dir(module, "telemetry"):
            return
        allowed = with_context_calls(module.tree)
        for node in iter_calls(module.tree):
            if call_name(node) == "span" and id(node) not in allowed:
                yield self.finding(
                    module,
                    node,
                    ".span(...) outside a `with` statement leaks an open "
                    "span; use `with tel.span(...)` or start_span/end_span",
                )


# -- no-swallowed-errors -------------------------------------------------------


@register
class NoSwallowedErrorsRule(Rule):
    """Broad exception handlers must re-raise.

    A swallowed exception in a retry or commit path converts a loud
    protocol violation into silent data divergence.  Bare ``except:`` is
    always flagged; ``except Exception``/``except BaseException`` is
    flagged unless the handler body contains a ``raise``.
    """

    name = "no-swallowed-errors"
    description = (
        "no bare except: or except (Base)Exception without re-raising"
    )

    _BROAD = {"Exception", "BaseException"}

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield exception handlers that swallow broad exceptions."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: swallows KeyboardInterrupt and protocol "
                    "errors alike; catch a specific exception",
                )
                continue
            broad = self._names(node.type) & self._BROAD
            if broad and not any(
                isinstance(sub, ast.Raise) for sub in ast.walk(node)
            ):
                caught = sorted(broad)[0]
                yield self.finding(
                    module,
                    node,
                    f"except {caught} without re-raising swallows errors; "
                    "re-raise or catch a specific exception",
                )

    @staticmethod
    def _names(node: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                out.add(sub.attr)
        return out


# -- docstring-coverage --------------------------------------------------------


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_property_companion(node: ast.AST) -> bool:
    """Whether a def is a ``@x.setter``/``@x.deleter`` companion."""
    for deco in getattr(node, "decorator_list", []):
        if isinstance(deco, ast.Attribute) and deco.attr in ("setter", "deleter"):
            return True
    return False


@register
class DocstringCoverageRule(Rule):
    """Every public module, class, function, and method carries a docstring.

    The AST twin of the original runtime walker
    (``tests/test_docstring_coverage.py``, now a thin wrapper): public-API
    hygiene reported by the same tool as the protocol invariants.
    """

    name = "docstring-coverage"
    description = "public modules, classes, functions and methods documented"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield undocumented public items of the module."""
        if ast.get_docstring(module.tree) is None:
            yield Finding(
                path=module.relpath,
                line=1,
                rule=self.name,
                message="module is missing a docstring",
            )
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name) and ast.get_docstring(node) is None:
                    yield self.finding(
                        module, node, f"public function {node.name!r} undocumented"
                    )
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                if ast.get_docstring(node) is None:
                    yield self.finding(
                        module, node, f"public class {node.name!r} undocumented"
                    )
                for item in node.body:
                    if not isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if not _is_public(item.name) or _is_property_companion(item):
                        continue
                    if ast.get_docstring(item) is None:
                        yield self.finding(
                            module,
                            item,
                            f"public method {node.name}.{item.name} "
                            "undocumented",
                        )


# -- crashpoint-discipline -----------------------------------------------------

#: Directories whose modules may carry crash-injection sites.  Crashpoints
#: model process death inside the commit/write/STO protocols; sprinkling
#: them elsewhere (tests, analysis, telemetry) would let a chaos sweep
#: "crash" in places no real process boundary exists.
CRASHPOINT_DIRS = ("fe", "sqldb", "sto", "service", "chaos")


@register
class CrashpointDisciplineRule(Rule):
    """``crashpoint()`` sites are literal, registered, and confined.

    The chaos sweep enumerates :data:`repro.chaos.crashpoints.CRASHPOINTS`
    and relies on three properties this rule enforces statically: every
    site name is a string literal (so the catalogue is greppable), every
    name is registered (an unregistered name would never be swept), and
    sites live only in the instrumented protocol layers.  Duplicate names
    within a module defeat "crash there once" semantics and are flagged;
    cross-module uniqueness is covered by the chaos test suite.
    """

    name = "crashpoint-discipline"
    description = (
        "crashpoint() sites are literal, registered, unique, and confined "
        "to fe/, sqldb/, sto/, service/, chaos/"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield misused crash-injection sites in the module."""
        seen: Set[str] = set()
        for call in iter_calls(module.tree):
            if call_name(call) != "crashpoint":
                continue
            if not any(_in_dir(module, d) for d in CRASHPOINT_DIRS):
                yield self.finding(
                    module,
                    call,
                    "crashpoint() outside the instrumented layers "
                    f"({', '.join(CRASHPOINT_DIRS)})",
                )
                continue
            if (
                len(call.args) != 1
                or call.keywords
                or not isinstance(call.args[0], ast.Constant)
                or not isinstance(call.args[0].value, str)
            ):
                yield self.finding(
                    module,
                    call,
                    "crashpoint() takes exactly one string-literal site name",
                )
                continue
            site = call.args[0].value
            if site not in CRASHPOINTS:
                yield self.finding(
                    module,
                    call,
                    f"crashpoint {site!r} is not registered in "
                    "repro.chaos.crashpoints.CRASHPOINTS",
                )
                continue
            if site in seen:
                yield self.finding(
                    module,
                    call,
                    f"crashpoint {site!r} appears more than once in this "
                    "module; wrap the shared step in one helper instead",
                )
            seen.add(site)


# -- metric-naming -------------------------------------------------------------

#: Instrument-factory methods whose first argument names a metric family.
_METRIC_FACTORIES = {"counter", "gauge", "histogram"}

#: Span-factory methods whose first argument names a span or span event.
_SPAN_FACTORIES = {"span", "start_span", "add_event"}


@register
class MetricNamingRule(Rule):
    """Metric and span names are literal, well-formed, and registered.

    ``sys.dm_metrics``, watchdog rules and the benchmark regression
    harness address instrument families by name, so the vocabulary must
    be statically enumerable: every ``.counter/.gauge/.histogram`` name
    is a dotted-lowercase string literal registered in
    :data:`repro.telemetry.names.METRIC_NAMES`, and every span or
    span-event name outside ``telemetry/`` is either a literal in
    :data:`~repro.telemetry.names.SPAN_NAMES` or a ``"prefix" + expr``
    concatenation whose literal prefix is registered in
    :data:`~repro.telemetry.names.SPAN_PREFIXES`.  This mirrors
    crashpoint-discipline: one module owns the catalogue, the linter
    keeps call sites honest.
    """

    name = "metric-naming"
    description = (
        "metric/span names are string literals registered in "
        "repro.telemetry.names (METRIC_NAMES / SPAN_NAMES / SPAN_PREFIXES)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield unregistered or dynamic metric and span names."""
        span_exempt = _in_dir(module, "telemetry")
        for call in iter_calls(module.tree):
            func = call_name(call)
            if func in _METRIC_FACTORIES:
                yield from self._check_metric(module, call, func)
            elif func in _SPAN_FACTORIES and not span_exempt:
                yield from self._check_span(module, call, func)

    def _check_metric(
        self, module: ModuleSource, call: ast.Call, func: str
    ) -> Iterator[Finding]:
        name = _literal_str(call.args[0]) if call.args else None
        if name is None:
            yield self.finding(
                module,
                call,
                f".{func}(...) metric name must be a string literal so "
                "the metric vocabulary is statically enumerable",
            )
            return
        if not is_well_formed(name):
            yield self.finding(
                module,
                call,
                f"metric name {name!r} is not dotted lowercase "
                "(segment(.segment)*)",
            )
        if name not in METRIC_NAMES:
            yield self.finding(
                module,
                call,
                f"metric {name!r} is not registered in "
                "repro.telemetry.names.METRIC_NAMES",
            )

    def _check_span(
        self, module: ModuleSource, call: ast.Call, func: str
    ) -> Iterator[Finding]:
        arg = call.args[0] if call.args else None
        literal = _literal_str(arg) if arg is not None else None
        if literal is not None:
            if literal not in SPAN_NAMES:
                yield self.finding(
                    module,
                    call,
                    f"span/event name {literal!r} is not registered in "
                    "repro.telemetry.names.SPAN_NAMES",
                )
            return
        if (
            isinstance(arg, ast.BinOp)
            and isinstance(arg.op, ast.Add)
            and isinstance(arg.left, ast.Constant)
            and isinstance(arg.left.value, str)
        ):
            prefix = arg.left.value
            if prefix not in SPAN_PREFIXES:
                yield self.finding(
                    module,
                    call,
                    f"span-name prefix {prefix!r} is not registered in "
                    "repro.telemetry.names.SPAN_PREFIXES",
                )
            return
        yield self.finding(
            module,
            call,
            f".{func}(...) span/event name is dynamic; use a literal from "
            "SPAN_NAMES or a '<registered prefix>' + suffix concatenation",
        )


def _literal_str(node: Optional[ast.AST]) -> Optional[str]:
    """The string value of a literal node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# -- wait-naming ---------------------------------------------------------------

#: WaitStats methods whose first argument names a wait kind.
_WAIT_FACTORIES = {"record_wait", "waiting"}


@register
class WaitNamingRule(Rule):
    """Wait kinds are literal and registered in WAIT_NAMES.

    ``sys.dm_wait_stats`` rows, the ``commit_lock_contention`` watchdog
    rule and the critical-path profiler all address waits by kind, so —
    exactly like metric names — the wait vocabulary must be statically
    enumerable: every ``.record_wait(...)``/``.waiting(...)`` call site
    passes a string literal registered in
    :data:`repro.telemetry.names.WAIT_NAMES`.
    """

    name = "wait-naming"
    description = (
        "wait kinds passed to record_wait()/waiting() are string literals "
        "registered in repro.telemetry.names.WAIT_NAMES"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield unregistered or dynamic wait kinds."""
        for call in iter_calls(module.tree):
            func = call_name(call)
            if func not in _WAIT_FACTORIES:
                continue
            kind = _literal_str(call.args[0]) if call.args else None
            if kind is None:
                yield self.finding(
                    module,
                    call,
                    f".{func}(...) wait kind must be a string literal so "
                    "the wait vocabulary is statically enumerable",
                )
                continue
            if not is_well_formed(kind):
                yield self.finding(
                    module,
                    call,
                    f"wait kind {kind!r} is not dotted lowercase "
                    "(segment(.segment)*)",
                )
            if kind not in WAIT_NAMES:
                yield self.finding(
                    module,
                    call,
                    f"wait kind {kind!r} is not registered in "
                    "repro.telemetry.names.WAIT_NAMES",
                )


# -- dmv-schema-discipline -----------------------------------------------------

#: Valid system-view names: the reserved sys.dm_ prefix, lowercase.
_DMV_NAME_RE = re.compile(r"^sys\.dm_[a-z0-9_]+$")

#: Column types the view batch materializer can produce stable empty
#: arrays for (``Schema.field.numpy_dtype``) — the schema-stability
#: contract of every view.
_DMV_COLUMN_TYPES = {"int64", "float64", "string", "bool"}


@register
class DmvSchemaDisciplineRule(Rule):
    """``sys.dm_*`` views declare their schemas in one literal table.

    The DMV catalog is a public, SQL-visible surface: every view's
    columns and types must be statically enumerable from the ``VIEWS``
    class table (one literal ``name -> (Schema.of(...), "_provider")``
    entry each) so the schema-stability tests, the docs, and the SQL
    binder all derive from the same source.  Dynamic registration
    (``VIEWS[...] = ...``, ``VIEWS.update(...)``) would let a view appear
    whose schema no test covers — flagged anywhere in the tree.
    """

    name = "dmv-schema-discipline"
    description = (
        "sys.dm_* views declare literal (column, type) schemas in one "
        "VIEWS table; no dynamic registration"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield VIEWS-table entries that break the literal-schema contract."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and _names_views(
                        target.value
                    ):
                        yield self.finding(
                            module,
                            node,
                            "dynamic system-view registration via "
                            "VIEWS[...] assignment; declare the view in "
                            "the literal VIEWS class table",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("update", "setdefault", "pop", "clear")
                    and _names_views(func.value)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"dynamic system-view registration via "
                        f"VIEWS.{func.attr}(...); declare views in the "
                        "literal VIEWS class table",
                    )

    def _check_class(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        views = _views_table_of(cls)
        if views is None:
            return
        if not isinstance(views, ast.Dict):
            yield self.finding(
                module,
                views,
                "VIEWS must be a literal dict of "
                "name -> (Schema.of(...), provider)",
            )
            return
        methods = {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for key, value in zip(views.keys, views.values):
            name = _literal_str(key)
            if name is None or not _DMV_NAME_RE.match(name):
                yield self.finding(
                    module,
                    key if key is not None else views,
                    "view name must be a literal 'sys.dm_*' string "
                    "(lowercase identifier after the prefix)",
                )
                continue
            yield from self._check_entry(module, name, value, methods)

    def _check_entry(
        self,
        module: ModuleSource,
        name: str,
        value: ast.AST,
        methods: Set[str],
    ) -> Iterator[Finding]:
        if not (isinstance(value, ast.Tuple) and len(value.elts) == 2):
            yield self.finding(
                module,
                value,
                f"{name}: entry must be a (Schema.of(...), provider) pair",
            )
            return
        schema_node, provider_node = value.elts
        yield from self._check_schema(module, name, schema_node)
        provider = _literal_str(provider_node)
        if provider is None:
            yield self.finding(
                module,
                provider_node,
                f"{name}: provider must be a literal method-name string",
            )
        elif provider not in methods:
            yield self.finding(
                module,
                provider_node,
                f"{name}: provider {provider!r} is not a method of the "
                "declaring class",
            )

    def _check_schema(
        self, module: ModuleSource, name: str, node: ast.AST
    ) -> Iterator[Finding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "of"
        ):
            yield self.finding(
                module,
                node,
                f"{name}: schema must be an inline Schema.of(...) call "
                "with literal (column, type) pairs",
            )
            return
        for arg in node.args:
            if not (isinstance(arg, ast.Tuple) and len(arg.elts) == 2):
                yield self.finding(
                    module,
                    arg,
                    f"{name}: each column must be a literal "
                    "(name, type) pair",
                )
                continue
            column = _literal_str(arg.elts[0])
            type_name = _literal_str(arg.elts[1])
            if column is None or type_name is None:
                yield self.finding(
                    module,
                    arg,
                    f"{name}: column name and type must be string literals",
                )
                continue
            if type_name not in _DMV_COLUMN_TYPES:
                yield self.finding(
                    module,
                    arg,
                    f"{name}: column {column!r} has type {type_name!r}; "
                    "allowed: " + ", ".join(sorted(_DMV_COLUMN_TYPES)),
                )


def _views_table_of(cls: ast.ClassDef) -> Optional[ast.AST]:
    """The value node of a class-level ``VIEWS = ...`` table, if any."""
    for item in cls.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "VIEWS":
                    return item.value
        elif isinstance(item, ast.AnnAssign):
            target = item.target
            if (
                isinstance(target, ast.Name)
                and target.id == "VIEWS"
                and item.value is not None
            ):
                return item.value
    return None


def _names_views(node: ast.AST) -> bool:
    """Whether an expression refers to a ``VIEWS`` table."""
    if isinstance(node, ast.Name):
        return node.id == "VIEWS"
    if isinstance(node, ast.Attribute):
        return node.attr == "VIEWS"
    return False


#: Names of the rules shipped with the framework (import side effect of
#: this module registers them; the list is for documentation/tests).
SHIPPED_RULES: List[str] = [
    "wallclock-purity",
    "seeded-randomness",
    "frozen-mutation",
    "commit-lock-discipline",
    "span-discipline",
    "no-swallowed-errors",
    "docstring-coverage",
    "crashpoint-discipline",
    "metric-naming",
    "wait-naming",
    "dmv-schema-discipline",
]
