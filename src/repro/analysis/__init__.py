"""Static invariant enforcement for the reproduction.

The correctness of this codebase rests on a handful of discipline rules the
test suite can only probe indirectly: all time flows through
:class:`~repro.common.clock.SimulatedClock`, all randomness comes from
seeded ``random.Random`` instances, committed LST structures are immutable,
and ``Manifests`` stamping happens only inside the commit-lock critical
section (Section 4.1.2 of the paper).  This package turns those implicit
rules into enforced ones:

* :mod:`repro.analysis.framework` — an AST-based lint framework (stdlib
  ``ast`` only) with a rule registry and per-line
  ``# repro: ignore[rule]`` suppressions.
* :mod:`repro.analysis.rules` — the repo-specific rules.
* :mod:`repro.analysis.si` — a snapshot-isolation *history sanitizer* that
  consumes a recorded transaction history (live via the EventBus or from a
  JSONL trace) and verifies SI axioms: first-committer-wins on overlapping
  write-sets, reads-from-snapshot, and no lost updates.

Run ``python -m repro.analysis --strict`` (or the ``repro-analysis``
console script) to lint the tree; see ``docs/ANALYSIS.md`` for the full
rule catalogue and rationale.
"""

from __future__ import annotations

from repro.analysis.framework import (
    Finding,
    ModuleSource,
    Rule,
    all_rules,
    format_findings,
    get_rule,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis.si import (
    HistoryRecorder,
    SiViolation,
    TxnRecord,
    check_history,
    load_history_jsonl,
)

# Importing the rules module populates the registry as a side effect;
# deep_rules registers the deep rule names for suppression validation.
from repro.analysis import rules as _rules  # noqa: F401  (registration)
from repro.analysis.callgraph import Program
from repro.analysis.cfg import Cfg, build_cfg
from repro.analysis.deep_rules import DEEP_RULES, run_deep
from repro.analysis.output import (
    finding_ids,
    load_baseline,
    partition_baseline,
    render,
    to_json_doc,
    to_sarif_doc,
    write_baseline,
)

__all__ = [
    "Program",
    "Cfg",
    "build_cfg",
    "DEEP_RULES",
    "run_deep",
    "finding_ids",
    "load_baseline",
    "partition_baseline",
    "render",
    "to_json_doc",
    "to_sarif_doc",
    "write_baseline",
    "Finding",
    "ModuleSource",
    "Rule",
    "all_rules",
    "format_findings",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "HistoryRecorder",
    "SiViolation",
    "TxnRecord",
    "check_history",
    "load_history_jsonl",
]
