"""The lint framework: findings, rules, suppressions, and the runner.

Everything here is stdlib-only (``ast`` + ``tokenize``-free line scanning)
so the linter can run in any environment the reproduction runs in.  A
:class:`Rule` inspects one parsed module at a time and yields
:class:`Finding` objects; the runner handles file discovery, suppression
comments, and report formatting.

Suppression syntax (per line, on the flagged line itself)::

    something_suspicious()  # repro: ignore[rule-name]
    other_thing()           # repro: ignore[rule-a,rule-b]

A bare ``# repro: ignore`` (no bracket list) suppresses every rule on that
line.  Suppressions naming unknown rules are themselves reported (rule
``bad-suppression``) and cannot be suppressed; in ``--strict`` mode a
suppression that suppressed nothing is reported too (``useless-suppression``)
so stale baselining comments cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Matches a suppression comment; group 1 is the optional bracket list.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([^\]]*)\])?")

#: Rule names: lowercase kebab-case.
_RULE_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical ``path:line: rule: message`` report line."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class ModuleSource:
    """One parsed module handed to every rule.

    ``relpath`` is the path rendered in findings — relative to the scan
    root when possible, so reports are stable across machines.  Rules that
    scope themselves by location (e.g. commit-lock discipline applies to
    ``fe/`` and ``sto/``) match against the POSIX form of this path.
    """

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: line number -> suppressed rule names ("*" means all rules).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def posix(self) -> str:
        """``relpath`` with forward slashes (for scope matching)."""
        return self.relpath.replace("\\", "/")


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name` and :attr:`description` and implement
    :meth:`check`.  Register with the :func:`register` decorator so the
    CLI and the test suite discover them.
    """

    #: Unique kebab-case identifier (used in reports and suppressions).
    name: str = ""
    #: One-line human description (shown by ``--list-rules``).
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` at ``node``'s location."""
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            rule=self.name,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}

#: Rule names owned by other runners (the deep analyses).  They are valid
#: in suppression comments, but per-module linting neither runs them nor
#: judges whether their suppressions were useful — the owning runner does.
_EXTERNAL_RULES: Set[str] = set()


def register_external_rules(names: Iterable[str]) -> None:
    """Declare rule names checked outside the per-module lint pass."""
    for name in names:
        if not _RULE_NAME_RE.match(name):
            raise ValueError(f"invalid rule name {name!r}")
        _EXTERNAL_RULES.add(name)


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add a rule to the global registry."""
    rule = rule_cls()
    if not rule.name or not _RULE_NAME_RE.match(rule.name):
        raise ValueError(f"invalid rule name {rule.name!r}")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rule(name: str) -> Rule:
    """Look up one rule by name (``KeyError`` with a hint if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {name!r}; known rules: {known}") from None


def known_rule_names() -> Set[str]:
    """Registered rule names, including externally-checked (deep) ones."""
    return set(_REGISTRY) | set(_EXTERNAL_RULES)


# -- suppression parsing -------------------------------------------------------


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names suppressed on that line.

    Only genuine comment tokens count (a suppression *mentioned* in a
    docstring or string literal is inert).  The special entry ``"*"``
    suppresses every rule.  Rule-name validity is checked later (against
    the registry) so parsing stays registry-free.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        listed = match.group(1)
        if listed is None:
            out[lineno] = {"*"}
        else:
            names = {part.strip() for part in listed.split(",") if part.strip()}
            out[lineno] = names or {"*"}
    return out


# -- running -------------------------------------------------------------------


def _load_module(path: Path, relpath: str) -> ModuleSource:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleSource(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        yield path


def lint_module(
    module: ModuleSource,
    rules: Optional[Sequence[Rule]] = None,
    strict: bool = False,
) -> List[Finding]:
    """Run ``rules`` (default: all registered) over one parsed module.

    Suppressed findings are dropped; invalid or (in strict mode) unused
    suppressions are reported as findings of their own.
    """
    active = list(rules) if rules is not None else all_rules()
    known = known_rule_names()
    used_suppressions: Set[int] = set()
    findings: List[Finding] = []

    for rule in active:
        for finding in rule.check(module):
            suppressed = module.suppressions.get(finding.line)
            if suppressed is not None and (
                "*" in suppressed or finding.rule in suppressed
            ):
                used_suppressions.add(finding.line)
                continue
            findings.append(finding)

    for lineno, names in sorted(module.suppressions.items()):
        unknown = sorted(name for name in names - {"*"} if name not in known)
        if unknown:
            findings.append(
                Finding(
                    path=module.relpath,
                    line=lineno,
                    rule="bad-suppression",
                    message=(
                        "suppression names unknown rule(s): "
                        + ", ".join(unknown)
                    ),
                )
            )
        elif (
            strict
            and lineno not in used_suppressions
            and not (names & _EXTERNAL_RULES)
        ):
            findings.append(
                Finding(
                    path=module.relpath,
                    line=lineno,
                    rule="useless-suppression",
                    message="suppression comment matched no finding",
                )
            )
    return findings


def lint_source(
    source: str,
    relpath: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    strict: bool = False,
) -> List[Finding]:
    """Lint an in-memory source string (the test-fixture entry point)."""
    tree = ast.parse(source, filename=relpath)
    module = ModuleSource(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    return lint_module(module, rules=rules, strict=strict)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    strict: bool = False,
) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths``; findings sorted by file."""
    findings: List[Finding] = []
    for root in paths:
        root = root.resolve()
        base = root if root.is_dir() else root.parent
        for path in _iter_python_files(root):
            try:
                relpath = str(path.relative_to(base))
            except ValueError:
                relpath = str(path)
            module = _load_module(path, relpath)
            findings.extend(lint_module(module, rules=rules, strict=strict))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def format_findings(findings: Iterable[Finding]) -> str:
    """Render findings as a newline-joined ``path:line: rule: message`` report."""
    return "\n".join(finding.render() for finding in findings)


# -- shared AST helpers (used by the rules) ------------------------------------


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import random`` -> ``{"random": "random"}``;
    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from random import Random`` -> ``{"Random": "random.Random"}``.
    """
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def resolve_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted origin name, if importable.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``"numpy.random.default_rng"``; unresolvable expressions return None.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id)
    if head is None:
        return None
    parts.append(head)
    return ".".join(reversed(parts))


def parent_chain(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """Child -> parent mapping for lexical-ancestry checks."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    """Walk from ``node`` to the module root (exclusive of ``node``)."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def call_name(node: ast.Call) -> Optional[str]:
    """The trailing identifier of a call (``a.b.c()`` -> ``"c"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """All Call nodes under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def with_context_calls(tree: ast.Module) -> Set[int]:
    """ids of Call nodes used directly as a ``with`` context expression."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    out.add(id(item.context_expr))
    return out
