"""Trace export: JSONL span dumps and Chrome trace-event files.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load) maps naturally onto the simulation: one *process* row per trace
track — the FE/coordinator plus one per DCP compute node — with a node's
task slots as the threads inside it.  Span trees become nested "X"
(complete) events; span events become "i" (instant) marks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.telemetry.spans import FE_TRACK, Span

#: Simulated seconds -> trace microseconds.
_US = 1_000_000.0


def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span as a plain JSON-able dict (the JSONL record shape)."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "category": span.category,
        "start": span.start,
        "end": span.end,
        "track": span.track,
        "tid": span.tid,
        "status": span.status,
        "attributes": _jsonable_attrs(span.attributes),
        "events": [
            {
                "name": event.name,
                "timestamp": event.timestamp,
                "attributes": _jsonable_attrs(event.attributes),
            }
            for event in span.events
        ],
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """All spans as newline-delimited JSON, one record per span."""
    return "\n".join(json.dumps(span_to_dict(span)) for span in spans)


def write_jsonl(spans: Iterable[Span], path: str) -> None:
    """Write :func:`spans_to_jsonl` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        text = spans_to_jsonl(spans)
        if text:
            handle.write(text + "\n")


def _track_order(spans: Sequence[Span]) -> List[str]:
    """Distinct tracks: FE first, then node tracks by node id."""
    seen = {span.track for span in spans}
    tracks: List[str] = []
    if FE_TRACK in seen:
        tracks.append(FE_TRACK)
        seen.discard(FE_TRACK)

    def sort_key(track: str):
        prefix, __, suffix = track.partition(":")
        return (prefix, int(suffix)) if suffix.isdigit() else (track, 0)

    tracks.extend(sorted(seen, key=sort_key))
    return tracks


def _track_label(track: str) -> str:
    if track == FE_TRACK:
        return "FE / coordinator"
    if track == "waits":
        # Wait intervals get their own Perfetto row so stall time is
        # visually separate from compute (see repro.telemetry.waits).
        return "Waits / stalls"
    prefix, __, suffix = track.partition(":")
    if prefix == "node":
        return f"DCP node {suffix}"
    return track


def chrome_trace_events(
    spans: Sequence[Span], pid_base: int = 1, process_prefix: str = ""
) -> Tuple[List[Dict[str, Any]], int]:
    """Trace events for one span set; returns ``(events, next_free_pid)``.

    Each distinct track becomes one process (pid) starting at ``pid_base``,
    named via "process_name" metadata (prefixed by ``process_prefix`` when
    merging several deployments into a single file).
    """
    finished = [span for span in spans if span.finished]
    tracks = _track_order(finished)
    pids = {track: pid_base + index for index, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = []
    for track in tracks:
        label = _track_label(track)
        if process_prefix:
            label = f"{process_prefix} {label}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pids[track],
                "tid": 0,
                "args": {"name": label},
            }
        )
    for span in finished:
        pid = pids[span.track]
        args = dict(_jsonable_attrs(span.attributes))
        args["status"] = span.status
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": pid,
                "tid": span.tid,
                "ts": span.start * _US,
                "dur": max(span.duration, 0.0) * _US,
                "args": args,
            }
        )
        for event in span.events:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": event.name,
                    "cat": span.category,
                    "pid": pid,
                    "tid": span.tid,
                    "ts": event.timestamp * _US,
                    "args": _jsonable_attrs(event.attributes),
                }
            )
    return events, pid_base + len(tracks)


def chrome_trace(
    spans: Sequence[Span], process_prefix: str = ""
) -> Dict[str, Any]:
    """A complete Chrome trace document for one deployment's spans."""
    events, __ = chrome_trace_events(spans, 1, process_prefix)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def combined_chrome_trace(
    groups: Sequence[Tuple[str, Sequence[Span]]]
) -> Dict[str, Any]:
    """Merge several deployments' spans into one trace document.

    ``groups`` is ``[(label, spans), ...]``; each group's tracks get a
    disjoint pid range and the label as a process-name prefix.
    """
    events: List[Dict[str, Any]] = []
    pid = 1
    for label, spans in groups:
        prefix = label if len(groups) > 1 else ""
        group_events, pid = chrome_trace_events(spans, pid, prefix)
        events.extend(group_events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(document: Dict[str, Any], path: str) -> None:
    """Write a trace document as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def _jsonable_attrs(attributes: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
