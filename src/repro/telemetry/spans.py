"""Hierarchical spans over the simulated clock.

A :class:`Span` is one timed unit of work — a transaction, a statement, a
DCP task, a storage request, a background job.  Spans nest: the tracer
keeps the active span in a :mod:`contextvars` variable, so any component
that starts a span automatically becomes a child of whatever its caller
was doing, across every layer of the stack, without threading a span
argument through the codebase.

Timestamps are *simulated* seconds from the deployment's shared
:class:`~repro.common.clock.SimulatedClock` — traces therefore show where
simulated time goes, which is the quantity the paper's figures plot.
Components that model time off-clock (the DCP lays task IO out on
per-node timelines) record spans with explicit start/end instants instead.
"""

from __future__ import annotations

import itertools
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.clock import SimulatedClock

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_ROLLBACK = "rollback"

#: Default trace track (Chrome trace "process" row) for frontend work.
FE_TRACK = "fe"


@dataclass
class SpanEvent:
    """A point-in-time annotation attached to a span (e.g. a retry)."""

    name: str
    timestamp: float
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed, attributed unit of work in the trace tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start: float
    end: Optional[float] = None
    #: Trace row this span renders on: ``"fe"`` or ``"node:<id>"``.
    track: str = FE_TRACK
    #: Sub-row within the track (a node's task slot; 1 for the FE).
    tid: int = 1
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    status: str = STATUS_OK
    #: Local IO-time cursor for child storage spans recorded while the
    #: shared clock is frozen (DCP task bodies); see Tracer.child_window.
    io_cursor: Optional[float] = None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        """Whether the span has ended."""
        return self.end is not None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def add_event(
        self, name: str, timestamp: float, **attributes: Any
    ) -> SpanEvent:
        """Attach a point-in-time event to this span."""
        event = SpanEvent(name=name, timestamp=timestamp, attributes=attributes)
        self.events.append(event)
        return event


class _ActiveSpan:
    """Context manager that makes ``span`` the contextvar parent."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Optional[Span]:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._current.reset(self._token)
        return False


class _SpanScope:
    """Context manager that opens, activates, and closes one span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._current.reset(self._token)
        if exc_type is not None and self._span.status == STATUS_OK:
            self._span.status = STATUS_ERROR
            self._span.attributes.setdefault("error.type", exc_type.__name__)
            self._span.attributes.setdefault("error.message", str(exc))
        self._tracer.end_span(self._span)
        return False


class Tracer:
    """Creates, nests, and retains spans against a simulated clock."""

    def __init__(self, clock: SimulatedClock, max_spans: int = 250_000) -> None:
        self._clock = clock
        self._max_spans = max_spans
        self._ids = itertools.count(1)
        self._current: ContextVar[Optional[Span]] = ContextVar(
            "repro_active_span", default=None
        )
        #: Finished spans, in end order.
        self.finished: List[Span] = []
        #: Spans discarded once ``max_spans`` was reached.
        self.dropped: int = 0

    @property
    def current(self) -> Optional[Span]:
        """The span new spans will become children of."""
        return self._current.get()

    def start_span(
        self,
        name: str,
        category: str = "fe",
        *,
        parent: Optional[Span] = None,
        track: Optional[str] = None,
        tid: Optional[int] = None,
        start_time: Optional[float] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span; the caller must eventually :meth:`end_span` it.

        Without an explicit ``parent`` the contextvar-active span is the
        parent.  ``track``/``tid`` default to the parent's placement so
        storage requests issued inside a DCP task land on the task's node
        row.  ``start_time`` overrides the clock (per-node timelines).
        """
        if parent is None:
            parent = self._current.get()
        return Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category,
            start=self._clock.now if start_time is None else start_time,
            track=track
            if track is not None
            else (parent.track if parent is not None else FE_TRACK),
            tid=tid if tid is not None else (parent.tid if parent is not None else 1),
            attributes=dict(attributes) if attributes else {},
        )

    def end_span(
        self,
        span: Span,
        status: Optional[str] = None,
        end_time: Optional[float] = None,
        **attributes: Any,
    ) -> None:
        """Close ``span``; double-ending is a no-op."""
        if span.finished:
            return
        span.end = self._clock.now if end_time is None else end_time
        if span.end < span.start:
            span.end = span.start
        if status is not None:
            span.status = status
        if attributes:
            span.attributes.update(attributes)
        if len(self.finished) < self._max_spans:
            self.finished.append(span)
        else:
            self.dropped += 1

    def span(
        self,
        name: str,
        category: str = "fe",
        *,
        parent: Optional[Span] = None,
        track: Optional[str] = None,
        tid: Optional[int] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> _SpanScope:
        """Context manager: open, activate, and close a span.

        An exception escaping the body marks the span failed (with
        ``error.type``/``error.message`` attributes) and re-raises.
        """
        return _SpanScope(
            self,
            self.start_span(
                name,
                category,
                parent=parent,
                track=track,
                tid=tid,
                attributes=attributes,
            ),
        )

    def activate(self, span: Optional[Span]) -> _ActiveSpan:
        """Context manager making ``span`` the parent for its body.

        Used for long-lived spans (a transaction across statements) that
        are opened and closed explicitly rather than lexically.
        """
        return _ActiveSpan(self, span)

    def add_event(self, name: str, **attributes: Any) -> Optional[SpanEvent]:
        """Attach an event to the active span (dropped if none is active)."""
        span = self._current.get()
        if span is None:
            return None
        return span.add_event(name, self._clock.now, **attributes)

    def child_window(self, cost: float) -> tuple:
        """A ``(start, end)`` window for an off-clock child of duration ``cost``.

        While the DCP executes a task body the shared clock is frozen at
        DAG submission time, but the task span has an explicit simulated
        window.  Storage requests issued inside it are laid out back to
        back from the task's start using a per-span cursor, so the trace
        shows a plausible IO sub-timeline instead of a pile-up at one
        instant.  Outside any explicit window this is just
        ``(now - cost, now)`` — the request that was charged ending now.
        """
        parent = self._current.get()
        now = self._clock.now
        if parent is not None and parent.start >= now:
            cursor = parent.io_cursor if parent.io_cursor is not None else parent.start
            parent.io_cursor = cursor + cost
            return cursor, cursor + cost
        return max(now - cost, 0.0), now
