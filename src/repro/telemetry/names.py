"""The canonical telemetry-name registry.

Metric and span names are part of the public observability surface: the
``sys.dm_metrics`` view, watchdog rules, dashboards and the benchmark
regression harness all address instruments by name, so a typo at a call
site silently forks a series.  Every name is therefore declared here
once, with its meaning, and the ``metric-naming`` lint rule
(:mod:`repro.analysis.rules`) statically verifies that each
``counter``/``gauge``/``histogram`` and span call site uses a dotted
lowercase string literal registered in this module — the same discipline
:data:`repro.chaos.crashpoints.CRASHPOINTS` enforces for crash sites.

Names are ``segment(.segment)*`` where each segment is a lowercase
identifier; a single segment (``txn``) is the degenerate dotted form.
Dynamic suffixes (per-statement-kind spans such as ``sql.select``) are
covered by a registered prefix in :data:`SPAN_PREFIXES`.
"""

from __future__ import annotations

import re
from typing import Dict

#: ``segment(.segment)*`` — lowercase identifiers joined by dots.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def is_well_formed(name: str) -> bool:
    """Whether ``name`` is a dotted lowercase telemetry name."""
    return NAME_RE.match(name) is not None


#: Every metric instrument name in the source tree, with its meaning.
METRIC_NAMES: Dict[str, str] = {
    "bus.events": "EventBus publishes, labeled by topic.",
    "chaos.crashes": "SimulatedCrash injections, labeled by site.",
    "dcp.dag_makespan_s": "Simulated makespan of one executed task DAG.",
    "dcp.dags": "Task DAGs executed by the scheduler.",
    "dcp.task_duration_s": "Simulated task runtimes, labeled by pool.",
    "dcp.task_failures": "Transient task-attempt failures.",
    "dcp.task_retries": "Task attempts beyond the first.",
    "dcp.tasks": "Tasks executed, labeled by pool.",
    "optimizer.analyze.runs": (
        "ANALYZE executions, labeled by source (analyze vs auto)."
    ),
    "optimizer.analyze.rows_scanned": "Rows scanned by ANALYZE statements.",
    "optimizer.index.builds": "Secondary-index builds (and rebuilds).",
    "optimizer.index.entries": "Distinct (key, file) entries written to indexes.",
    "optimizer.index.files_pruned": (
        "Data files skipped because an index proved they cannot match."
    ),
    "optimizer.index.lookups": "Equality probes answered by an index.",
    "optimizer.plan.algorithm_switches": (
        "Join operators whose algorithm the cost model changed."
    ),
    "optimizer.plan.reorders": "Plans whose join order the optimizer changed.",
    "optimizer.plan.rewrites": "Plans changed by the cost-based rewrite pass.",
    "optimizer.plan.transitive_conjuncts": (
        "Scan predicates added by transitive equality propagation."
    ),
    "querystore.plan_regressions": (
        "Fingerprints whose recent p95 regressed past their baseline."
    ),
    "querystore.recorded": (
        "Statement executions folded into the query store, by kind."
    ),
    "recovery.gateway_requests_scavenged": (
        "Admitted-but-unfinished gateway requests scavenged on restart."
    ),
    "recovery.querystore_discarded": (
        "Crashed in-flight query-store executions discarded on restart."
    ),
    "recovery.waits_discarded": (
        "Open wait scopes discarded on restart (never counted as waits)."
    ),
    "recovery.in_doubt_aborted": "In-doubt transactions aborted by recovery.",
    "recovery.in_doubt_committed": (
        "In-doubt transactions resolved committed by recovery."
    ),
    "recovery.publishes_completed": "Missed Delta publishes completed.",
    "recovery.runs": "Recovery passes executed.",
    "recovery.staged_blocks_discarded": "Staged blocks scavenged on restart.",
    "service.admitted": "Requests admitted into a class queue.",
    "service.completions": "Requests completed, labeled by workload class.",
    "service.failures": "Requests failed in execution, labeled by error.",
    "service.queue_depth": "Gauge: requests queued across both classes.",
    "service.queue_wait_s": "Queue wait of dispatched requests, by class.",
    "service.request_latency_s": (
        "Submit-to-completion latency of completed requests, by class."
    ),
    "service.requests": "Requests submitted, by tenant and workload class.",
    "service.retry_after_s": "Retry-after hints handed to shed requests.",
    "service.sessions_open": "Gauge: pooled FE sessions currently open.",
    "service.sessions_reaped": "Idle sessions closed by the reaper.",
    "service.shed": "Requests refused by admission, labeled by reason.",
    "service.timeouts": "Requests expired past their queue deadline.",
    "sqldb.commit_lock_acquisitions": "Commit-lock acquisitions.",
    "sqldb.commit_lock_hold_s": (
        "Commit-lock hold durations (measured critical section plus the "
        "modeled txn.commit_hold_s service time)."
    ),
    "sqldb.commit_lock_wait_s": (
        "Time committers queued behind the commit lock before acquiring it."
    ),
    "sto.checkpoints": "Checkpoints taken.",
    "sto.compactions": "Compaction runs, labeled by outcome.",
    "sto.files_rewritten": "Data files rewritten by compactions.",
    "sto.gc_files_deleted": "Files deleted by garbage collection.",
    "sto.gc_runs": "Garbage-collection runs.",
    "sto.manifests_collapsed": "Manifests absorbed into checkpoints.",
    "sto.publishes": "Manifest publishes to open formats.",
    "sto.unhealthy_tables": (
        "Gauge: tables currently below the storage-health thresholds."
    ),
    "storage.bytes_read": "Bytes read from the object store.",
    "storage.bytes_written": "Bytes written to the object store.",
    "storage.faults_injected": "Injected transient faults, labeled by op.",
    "storage.integrity_blobs_verified": "Blobs audited by scrub passes.",
    "storage.integrity_corruptions_injected": (
        "Injected corruption faults, labeled by kind and op."
    ),
    "storage.integrity_errors": "Checksum mismatches caught on read.",
    "storage.integrity_quarantined": "Corrupt blobs moved to quarantine.",
    "storage.integrity_repaired": (
        "Quarantined blobs re-materialized from redundant metadata."
    ),
    "storage.integrity_unrepairable": (
        "Corrupt blobs with no redundant source to repair from."
    ),
    "storage.request_latency_s": "Per-request simulated latency, by op.",
    "storage.requests": "Object-store requests, labeled by op.",
    "storage.retry_attempts": "Failed attempts inside with_retries.",
    "storage.retry_backoff_s": "Simulated backoff charged between retries.",
    "storage.retry_outcomes": "Retried operations, by label and outcome.",
    "storage.sim_latency_s": "Simulated latency charged, by op and mode.",
    "txn.commit_failures": "Failed commit attempts, labeled by error type.",
    "waits.recorded": "Completed waits folded into the stats, by kind.",
    "waits.wait_s": "Simulated seconds spent waiting, labeled by kind.",
    "txn.commits": "Successful transaction commits.",
    "txn.rollbacks": "Explicit transaction rollbacks.",
    "watchdog.alerts": "Watchdog rule firings, labeled by rule.",
}

#: Every literal span / span-event name used outside dynamic prefixes.
SPAN_NAMES: Dict[str, str] = {
    "chaos.crash": "Span event marking an injected crash, with its site.",
    "dcp.dag": "One scheduled task DAG, start to makespan.",
    "recovery.run": "One full restart-recovery pass.",
    "retry": "Span event: one failed attempt inside with_retries.",
    "retry.exhausted": "Span event: a retried operation ran out of attempts.",
    "service.request": "One gateway request, dispatch to completion.",
    "sto.analyze": "One auto-ANALYZE statistics-collection job.",
    "sto.checkpoint": "One checkpoint job.",
    "sto.compaction": "One compaction job.",
    "sto.index_refresh": "One secondary-index maintenance job.",
    "sto.gc": "One garbage-collection job.",
    "sto.publish": "One open-format publish of a committed manifest.",
    "sto.scrub": "One integrity-scrub job over every live table.",
    "sto.scrub.finding": "Span event: one corrupt blob found by the scrubber.",
    "sto.trigger.analyze": "Span event: auto-ANALYZE trigger fired.",
    "sto.trigger.checkpoint": "Span event: checkpoint trigger fired.",
    "sto.trigger.compaction": "Span event: compaction trigger fired.",
    "storage.corruption": "Span event: an injected corruption fault.",
    "storage.fault": "Span event: an injected transient storage fault.",
    "storage.integrity_violation": (
        "Span event: a checksum mismatch caught on a verified read."
    ),
    "txn": "One user transaction, begin to finish.",
    "txn.commit": "The validation phase of one commit.",
}

#: Registered literal prefixes for spans whose suffix is dynamic.
SPAN_PREFIXES: Dict[str, str] = {
    "event:": "Bus events mirrored into the active span, by topic.",
    "sql.": "One span per SQL statement, suffixed by statement kind.",
    "stmt.": "One span per session statement, suffixed by statement name.",
    "store.": "One span per object-store request, suffixed by operation.",
    "wait.": "One span per recorded wait interval, suffixed by wait kind.",
}

#: Every wait-event kind, with its meaning.  The ``wait-naming`` lint rule
#: enforces that each ``record_wait``/``waiting`` call site passes one of
#: these literals — exactly the discipline ``metric-naming`` applies to
#: instrument names, because ``sys.dm_wait_stats`` rows, watchdog rules
#: and the critical-path profiler all address waits by kind.
WAIT_NAMES: Dict[str, str] = {
    "admission_queue": (
        "Submit-to-dispatch time a request spent in its gateway class "
        "queue before execution started."
    ),
    "commit_lock": (
        "Time a committer queued behind the sqldb commit lock (the "
        "serialized validation phase of Section 4.1.2)."
    ),
    "dcp_dispatch": (
        "Time a ready DCP task waited for a free node slot before its "
        "attempt could start."
    ),
    "queue_deadline": (
        "Full queue wait of a request that expired past its deadline at "
        "dispatch; the wait bought nothing."
    ),
    "session_pool": (
        "Session-pool acquisition failures at dispatch (count-only: "
        "acquisition never blocks, it fails fast on quota)."
    ),
    "sto_schedule": (
        "Lag between a compaction trigger's due time and the tick that "
        "actually ran it."
    ),
    "storage_retry": (
        "Retry backoff charged to the simulated clock between failed "
        "object-store attempts."
    ),
    "throttle": (
        "Retry-after hint handed to a request shed by admission control "
        "(the stall a well-behaved client honors before retrying)."
    ),
}
