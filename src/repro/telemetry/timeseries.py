"""Metrics time series: periodic sampling and declarative watchdogs.

:class:`MetricsSampler` snapshots the metrics registry on the simulated
clock at a fixed interval into a bounded ring buffer — the data behind
the ``sys.dm_metrics_history`` view and the JSONL export.  A
:class:`Watchdog` subscribes to those samples and evaluates declarative
:class:`WatchdogRule` thresholds (on absolute values or on per-second
rates between consecutive samples), emitting ``watchdog.alert`` bus
events plus a ``watchdog.alerts`` counter when a rule fires.  Both are
inert unless explicitly constructed and started, so a deployment with
sampling off pays nothing.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.common.clock import SimulatedClock
from repro.common.events import EventBus
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class MetricSample:
    """One point-in-time snapshot of the metrics registry."""

    #: Monotonically increasing sample number (survives ring eviction).
    sample_id: int
    #: Simulated time the sample was taken.
    at: float
    #: :meth:`MetricsRegistry.snapshot` output — rendered series key to
    #: number (counters/gauges) or summary dict (histograms).
    values: Dict[str, Any]


def flatten_sample(values: Dict[str, Any]) -> Dict[str, float]:
    """One scalar series per key; histogram summaries become suffixed keys.

    A histogram ``h{...}`` expands to ``h{...}.count``, ``.sum``, ``.p50``,
    ``.p95`` and ``.p99`` so time-series consumers only ever see numbers.
    """
    out: Dict[str, float] = {}
    for key, value in values.items():
        if isinstance(value, dict):
            for stat in ("count", "sum", "p50", "p95", "p99"):
                out[f"{key}.{stat}"] = float(value[stat])
        else:
            out[key] = float(value)
    return out


def series_value(values: Dict[str, Any], metric: str) -> float:
    """Total of every series of one metric family within a sample.

    Label sets are summed (``txn.commit_failures{error=X}`` and ``{error=Y}``
    both count); a histogram contributes its ``sum``, so rate rules over
    histograms measure accumulation per second (e.g. backoff saturation).
    """
    total = 0.0
    prefix = metric + "{"
    for key, value in values.items():
        if key != metric and not key.startswith(prefix):
            continue
        total += value["sum"] if isinstance(value, dict) else value
    return total


class MetricsSampler:
    """Periodic metrics snapshots into a bounded ring buffer.

    The tick runs on the simulated clock's watcher mechanism: each firing
    takes one sample, notifies observers, and re-arms the next tick — no
    real event loop, no catch-up storm after a large ``advance``.  The
    clock has no cancel API, so :meth:`stop` sets a flag the next firing
    observes (and then declines to re-arm).
    """

    def __init__(
        self,
        clock: SimulatedClock,
        metrics: MetricsRegistry,
        interval_s: float = 1.0,
        capacity: int = 512,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampler interval_s must be positive")
        if capacity <= 0:
            raise ValueError("sampler capacity must be positive")
        self._clock = clock
        self._metrics = metrics
        self.interval_s = float(interval_s)
        self._ring: Deque[MetricSample] = deque(maxlen=capacity)
        self._observers: List[Callable[[MetricSample], None]] = []
        self._next_id = 0
        self._armed = False
        self._stopped = False

    def start(self) -> None:
        """Arm the periodic tick (idempotent)."""
        if self._armed:
            return
        self._armed = True
        self._stopped = False
        self._clock.call_at(self._clock.now + self.interval_s, self._tick)

    def stop(self) -> None:
        """Stop sampling: the next tick is a no-op and does not re-arm."""
        self._stopped = True
        self._armed = False

    def subscribe(self, observer: Callable[[MetricSample], None]) -> None:
        """Call ``observer(sample)`` after every new sample."""
        self._observers.append(observer)

    def sample_now(self) -> MetricSample:
        """Take one sample immediately (the periodic tick calls this too)."""
        sample = MetricSample(
            sample_id=self._next_id,
            at=self._clock.now,
            values=self._metrics.snapshot(),
        )
        self._next_id += 1
        self._ring.append(sample)
        for observer in list(self._observers):
            observer(sample)
        return sample

    def _tick(self, now: float) -> None:
        if self._stopped:
            return
        self.sample_now()
        self._clock.call_at(now + self.interval_s, self._tick)

    @property
    def samples(self) -> List[MetricSample]:
        """The retained samples, oldest first."""
        return list(self._ring)

    def export_jsonl(self, path: str) -> str:
        """Write one JSON object per retained sample; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            for sample in self._ring:
                fh.write(
                    json.dumps(
                        {
                            "sample_id": sample.sample_id,
                            "at": sample.at,
                            "values": sample.values,
                        },
                        sort_keys=True,
                    )
                )
                fh.write("\n")
        return path


@dataclass(frozen=True)
class WatchdogRule:
    """One declarative threshold over the sampled time series.

    ``mode="value"`` compares the metric's current total against the
    threshold; ``mode="rate"`` compares its per-second delta between
    consecutive samples.  ``hold_s`` requires the breach to persist that
    long before alerting (a RED table must *linger*); ``cooldown_s``
    rate-limits repeat alerts while the breach continues.
    """

    name: str
    metric: str
    threshold: float
    comparison: str = "gte"
    mode: str = "value"
    hold_s: float = 0.0
    cooldown_s: float = 0.0

    def __post_init__(self) -> None:
        if self.comparison not in ("gte", "lte"):
            raise ValueError(f"unknown comparison {self.comparison!r}")
        if self.mode not in ("value", "rate"):
            raise ValueError(f"unknown watchdog mode {self.mode!r}")
        if not self.name:
            raise ValueError("watchdog rule needs a name")


class Watchdog:
    """Evaluates :class:`WatchdogRule` thresholds over incoming samples.

    Subscribe :meth:`observe` to a :class:`MetricsSampler`.  Alerts are
    published as ``watchdog.alert`` bus events, counted in the
    ``watchdog.alerts`` metric (labeled by rule), and retained in
    :attr:`alerts` for direct inspection.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        bus: Optional[EventBus],
        rules: Iterable[WatchdogRule] = (),
    ) -> None:
        self._metrics = metrics
        self._bus = bus
        self.rules: List[WatchdogRule] = list(rules)
        self._previous: Optional[MetricSample] = None
        self._first_breach_at: Dict[str, float] = {}
        self._last_alert_at: Dict[str, float] = {}
        #: Alert records, oldest first: rule/metric/value/threshold/at.
        self.alerts: List[Dict[str, Any]] = []

    def add_rule(self, rule: WatchdogRule) -> None:
        """Register one more rule (evaluated from the next sample on)."""
        self.rules.append(rule)

    def observe(self, sample: MetricSample) -> None:
        """Evaluate every rule against one new sample."""
        previous = self._previous
        self._previous = sample
        for rule in self.rules:
            value = self._evaluate(rule, sample, previous)
            if value is None:
                continue
            breached = (
                value >= rule.threshold
                if rule.comparison == "gte"
                else value <= rule.threshold
            )
            if not breached:
                self._first_breach_at.pop(rule.name, None)
                continue
            first = self._first_breach_at.setdefault(rule.name, sample.at)
            if sample.at - first < rule.hold_s:
                continue
            last = self._last_alert_at.get(rule.name)
            if last is not None and sample.at - last < rule.cooldown_s:
                continue
            self._last_alert_at[rule.name] = sample.at
            self._alert(rule, value, sample.at)

    @staticmethod
    def _evaluate(
        rule: WatchdogRule,
        sample: MetricSample,
        previous: Optional[MetricSample],
    ) -> Optional[float]:
        current = series_value(sample.values, rule.metric)
        if rule.mode == "value":
            return current
        if previous is None:
            return None
        elapsed = sample.at - previous.at
        if elapsed <= 0:
            return None
        return (current - series_value(previous.values, rule.metric)) / elapsed

    def _alert(self, rule: WatchdogRule, value: float, at: float) -> None:
        record = {
            "rule": rule.name,
            "metric": rule.metric,
            "value": value,
            "threshold": rule.threshold,
            "mode": rule.mode,
            "at": at,
        }
        self.alerts.append(record)
        self._metrics.counter("watchdog.alerts", rule=rule.name).inc()
        if self._bus is not None:
            self._bus.publish("watchdog.alert", **record)


def default_rules(
    abort_rate_per_s: float = 0.5,
    red_table_hold_s: float = 120.0,
    backoff_saturation: float = 0.5,
    admission_queue_depth: float = 100.0,
    admission_queue_hold_s: float = 30.0,
    plan_regression_rate_per_s: float = 0.01,
    commit_lock_saturation: float = 0.5,
) -> List[WatchdogRule]:
    """The stock rule set wired in by ``TelemetryConfig.watchdog_enabled``.

    * ``abort_rate_spike`` — commit failures accumulating faster than
      ``abort_rate_per_s`` per simulated second.
    * ``red_table_lingering`` — at least one table stuck below the
      storage-health thresholds for ``red_table_hold_s``.
    * ``retry_backoff_saturation`` — more than ``backoff_saturation``
      seconds of retry backoff charged per second of simulated time.
    * ``admission_queue_saturation`` — the gateway's admission queues
      holding at least ``admission_queue_depth`` requests continuously
      for ``admission_queue_hold_s`` (load shedding should engage long
      before the queues pin at capacity).
    * ``plan_latency_regression`` — query-store fingerprints whose recent
      p95 regressed past their stored baseline, accumulating faster than
      ``plan_regression_rate_per_s`` per simulated second (requires
      ``TelemetryConfig.query_store_enabled``; the counter never moves
      otherwise).
    * ``integrity_unrepairable`` — the scrubber found at least one corrupt
      blob with no redundant source to rebuild from (permanent data loss;
      fires immediately, no hold).
    * ``commit_lock_contention`` — committers accumulating more than
      ``commit_lock_saturation`` seconds of commit-lock queue wait per
      second of simulated time: the serialized validation phase has
      become the bottleneck (the evidence the group-commit work needs).
    """
    return [
        WatchdogRule(
            name="abort_rate_spike",
            metric="txn.commit_failures",
            threshold=abort_rate_per_s,
            mode="rate",
        ),
        WatchdogRule(
            name="red_table_lingering",
            metric="sto.unhealthy_tables",
            threshold=1.0,
            mode="value",
            hold_s=red_table_hold_s,
        ),
        WatchdogRule(
            name="retry_backoff_saturation",
            metric="storage.retry_backoff_s",
            threshold=backoff_saturation,
            mode="rate",
        ),
        WatchdogRule(
            name="admission_queue_saturation",
            metric="service.queue_depth",
            threshold=admission_queue_depth,
            mode="value",
            hold_s=admission_queue_hold_s,
        ),
        WatchdogRule(
            name="plan_latency_regression",
            metric="querystore.plan_regressions",
            threshold=plan_regression_rate_per_s,
            mode="rate",
        ),
        WatchdogRule(
            name="integrity_unrepairable",
            metric="storage.integrity_unrepairable",
            threshold=1.0,
            mode="value",
        ),
        WatchdogRule(
            name="commit_lock_contention",
            metric="sqldb.commit_lock_wait_s",
            threshold=commit_lock_saturation,
            mode="rate",
        ),
    ]
