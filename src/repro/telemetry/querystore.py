"""The query store: fingerprinted per-statement profiles with feedback.

Production warehouses keep a *query store* — per-query-shape execution
history that outlives sessions: SQL Server's ``sys.query_store_*``
catalog, Snowflake's ``QUERY_HISTORY``.  This module reproduces that
substrate for the Polaris reproduction:

* :func:`normalize_sql` strips literals from statement text (numbers and
  strings become ``?``, identifiers lowercase, IN-lists and VALUES row
  groups collapse) so every execution of the same query *shape* maps to
  one stable :func:`fingerprint` — the ``query_hash``.
* :class:`QueryStore` folds every SQL statement executed through
  :class:`repro.sql.runner.SqlSession` into one :class:`QueryProfile`
  per fingerprint: executions, errors, p50/p95/p99 simulated latency,
  rows, bytes read, plan-text hashes, per-operator estimated-vs-actual
  cardinality records (the feedback a cost-based optimizer consumes),
  and per-tenant/workload-class attribution when the statement arrived
  through the gateway.
* A per-fingerprint latency-regression detector increments the
  ``querystore.plan_regressions`` counter the ``plan_latency_regression``
  watchdog rule (:func:`repro.telemetry.timeseries.default_rules`) fires
  on.

Everything runs on the simulated clock and seeded histograms, so two
same-seed runs produce byte-identical :meth:`QueryStore.snapshot`
output.  In-flight executions (started, never finished — a simulated
crash) are held apart from the aggregates until :meth:`QueryStore.finish`
lands; :class:`repro.chaos.RecoveryManager` calls
:meth:`QueryStore.scavenge` so a crashed execution is discarded, never
double-counted.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from repro.common.config import TelemetryConfig
from repro.engine.explain import misestimate_ratio
from repro.sql.lexer import tokenize
from repro.telemetry.metrics import Histogram

if TYPE_CHECKING:
    from repro.common.clock import SimulatedClock
    from repro.common.events import EventBus
    from repro.telemetry.metrics import MetricsRegistry

#: Hex digits of SHA-256 kept as a query/plan hash (cross-run stable,
#: unlike Python's ``hash``).
HASH_LENGTH = 16

#: Single-quoted string literals inside rendered plan text.
_PLAN_STRING_RE = re.compile(r"'[^']*'")

#: Numeric literals inside rendered plan text (not identifier-embedded).
_PLAN_NUMBER_RE = re.compile(r"(?<![\w.'])\d+(?:\.\d+)?(?:e[+-]?\d+)?")


def normalize_sql(text: str) -> str:
    """Literal-stripped canonical form of one SQL statement.

    Numbers and strings become ``?``; identifiers are lowercased
    (keywords are already uppercased by the lexer); whitespace and
    comments vanish with tokenization; runs of ``?, ?, ...`` collapse to
    one ``?`` (IN-lists) and repeated ``( ? )`` groups collapse to one
    (multi-row VALUES).  Two statements differing only in literals,
    case, whitespace, or list arity therefore normalize identically.
    """
    out: List[str] = []
    for token in tokenize(text):
        if token.kind == "eof":
            break
        if token.kind in ("number", "string"):
            value = "?"
        elif token.kind == "ident":
            value = token.value.lower()
        else:
            value = token.value
        if value == "?" and out[-2:] == ["?", ","]:
            out.pop()  # "?, ?" -> "?" : drop the comma, skip the repeat
            continue
        out.append(value)
    collapsed: List[str] = []
    i = 0
    while i < len(out):
        if (
            out[i] == ","
            and collapsed[-3:] == ["(", "?", ")"]
            and out[i + 1 : i + 4] == ["(", "?", ")"]
        ):
            i += 4  # "( ? ) , ( ? )" -> "( ? )"
            continue
        collapsed.append(out[i])
        i += 1
    return " ".join(collapsed)


def fingerprint(text: str) -> str:
    """The stable ``query_hash`` of one statement's normalized form."""
    normalized = normalize_sql(text)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:HASH_LENGTH]


def plan_fingerprint(plan_text: str) -> str:
    """A literal-stripped hash of rendered plan text.

    Plan text embeds the statement's literals (``filter=(id < 50)``);
    stripping them keeps two literal-variants of one plan shape on the
    same ``plan_hash``, so per-fingerprint plan counts measure genuine
    plan changes.
    """
    normalized = _PLAN_NUMBER_RE.sub("?", _PLAN_STRING_RE.sub("?", plan_text))
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:HASH_LENGTH]


def _percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


class PendingExecution:
    """One in-flight statement between :meth:`QueryStore.start` and finish.

    Holds everything measured before the statement completes.  A
    simulated crash abandons the pending record mid-flight; recovery
    discards it via :meth:`QueryStore.scavenge`, so nothing it measured
    ever reaches the per-fingerprint aggregates.
    """

    __slots__ = (
        "token",
        "text",
        "statement_kind",
        "query_hash",
        "normalized_text",
        "started_at",
        "bytes_read_before",
        "tenant",
        "workload_class",
        "plan_text",
        "operators",
    )

    def __init__(
        self,
        token: int,
        text: str,
        statement_kind: str,
        query_hash: str,
        normalized_text: str,
        started_at: float,
        bytes_read_before: float,
        tenant: str,
        workload_class: str,
    ) -> None:
        self.token = token
        self.text = text
        self.statement_kind = statement_kind
        self.query_hash = query_hash
        self.normalized_text = normalized_text
        self.started_at = started_at
        self.bytes_read_before = bytes_read_before
        self.tenant = tenant
        self.workload_class = workload_class
        self.plan_text: Optional[str] = None
        self.operators: List[Dict[str, Any]] = []

    def record_plan(
        self, plan_text: str, operators: List[Dict[str, Any]]
    ) -> None:
        """Attach the compiled plan text and per-operator profile records."""
        self.plan_text = plan_text
        self.operators = operators


class QueryProfile:
    """Aggregated execution history of one query fingerprint."""

    def __init__(
        self,
        query_hash: str,
        statement_kind: str,
        normalized_text: str,
        first_seen: float,
        config: TelemetryConfig,
        seed: int,
    ) -> None:
        self.query_hash = query_hash
        self.statement_kind = statement_kind
        self.normalized_text = normalized_text
        self.first_seen = first_seen
        self.last_seen = first_seen
        self.executions = 0
        self.errors = 0
        self.total_rows = 0
        self.total_bytes_read = 0
        #: Seeded reservoir over successful-execution latencies.
        self.latency = Histogram(config.histogram_max_samples, seed=seed)
        #: Sliding window feeding the regression detector.
        self.recent: Deque[float] = deque(maxlen=config.query_store_recent_window)
        #: Frozen once ``query_store_min_history`` executions accumulate.
        self.baseline_p95_s = 0.0
        self.regressions = 0
        self._in_regression = False
        #: plan_hash -> {"plan_text", "executions", "first_seen", "last_seen"}.
        self.plans: Dict[str, Dict[str, Any]] = {}
        #: operator_id -> cumulative per-operator cardinality feedback.
        self.operators: Dict[int, Dict[str, Any]] = {}
        #: (tenant, workload_class) -> executions attributed.
        self.attribution: Dict[Tuple[str, str], int] = {}
        self._min_history = config.query_store_min_history
        self._factor = config.query_store_regression_factor

    # -- folding --------------------------------------------------------------

    def fold(
        self, pending: PendingExecution, latency_s: float, rows: int, bytes_read: int
    ) -> bool:
        """Fold one successful execution; returns True on a new regression."""
        self.executions += 1
        self.last_seen = pending.started_at + latency_s
        self.total_rows += rows
        self.total_bytes_read += bytes_read
        self.latency.observe(latency_s)
        self.recent.append(latency_s)
        key = (pending.tenant, pending.workload_class)
        self.attribution[key] = self.attribution.get(key, 0) + 1
        if pending.plan_text is not None:
            self._fold_plan(pending)
        for record in pending.operators:
            self._fold_operator(record)
        return self._check_regression()

    def fold_error(self, pending: PendingExecution, at: float) -> None:
        """Fold one failed execution (no latency/rows pollution)."""
        self.errors += 1
        self.last_seen = at

    def _fold_plan(self, pending: PendingExecution) -> None:
        plan_hash = plan_fingerprint(pending.plan_text or "")
        entry = self.plans.get(plan_hash)
        if entry is None:
            entry = self.plans[plan_hash] = {
                "plan_text": pending.plan_text,
                "executions": 0,
                "first_seen": pending.started_at,
                "last_seen": pending.started_at,
            }
        entry["executions"] += 1
        entry["last_seen"] = self.last_seen

    def _fold_operator(self, record: Dict[str, Any]) -> None:
        op_id = record["operator_id"]
        slot = self.operators.get(op_id)
        if slot is None:
            slot = self.operators[op_id] = {
                "operator": record["operator"],
                "executions": 0,
                "est_rows_total": 0.0,
                "actual_rows_total": 0.0,
                "sim_time_s": 0.0,
                "files": 0,
                "files_pruned": 0,
                "row_groups": 0,
                "row_groups_pruned": 0,
            }
        slot["executions"] += 1
        slot["est_rows_total"] += float(record.get("est_rows", 0))
        slot["actual_rows_total"] += float(record.get("actual_rows", 0))
        slot["sim_time_s"] += float(record.get("sim_time_s") or 0.0)
        for field in ("files", "files_pruned", "row_groups", "row_groups_pruned"):
            slot[field] += int(record.get(field, 0))

    def _check_regression(self) -> bool:
        if self.executions == self._min_history:
            self.baseline_p95_s = _percentile(list(self.recent), 95.0)
            return False
        if self.executions < self._min_history or self.baseline_p95_s <= 0:
            return False
        recent_p95 = _percentile(list(self.recent), 95.0)
        regressed = recent_p95 >= self._factor * self.baseline_p95_s
        if regressed and not self._in_regression:
            self._in_regression = True
            self.regressions += 1
            return True
        if not regressed:
            self._in_regression = False
        return False

    # -- reading --------------------------------------------------------------

    def recent_p95_s(self) -> float:
        """p95 over the sliding recent-latency window."""
        return _percentile(list(self.recent), 95.0)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-serializable view of this profile."""
        summary = self.latency.summary()
        return {
            "query_hash": self.query_hash,
            "statement_kind": self.statement_kind,
            "normalized_text": self.normalized_text,
            "executions": self.executions,
            "errors": self.errors,
            "total_rows": self.total_rows,
            "total_bytes_read": self.total_bytes_read,
            "latency": summary,
            "recent_p95_s": self.recent_p95_s(),
            "baseline_p95_s": self.baseline_p95_s,
            "regressions": self.regressions,
            "first_seen": self.first_seen,
            "last_seen": self.last_seen,
            "plans": {
                plan_hash: dict(entry)
                for plan_hash, entry in sorted(self.plans.items())
            },
            "operators": {
                str(op_id): dict(slot)
                for op_id, slot in sorted(self.operators.items())
            },
            "attribution": {
                f"{tenant}/{workload}": count
                for (tenant, workload), count in sorted(self.attribution.items())
            },
        }


class QueryStore:
    """Per-deployment query store over the simulated clock.

    Constructed by :meth:`repro.fe.context.ServiceContext.create` when
    ``telemetry.query_store_enabled`` is on and reachable as
    ``context.telemetry.querystore`` (None when disabled, so the SQL
    runner's fast path pays one attribute check).
    """

    def __init__(
        self,
        clock: "SimulatedClock",
        config: Optional[TelemetryConfig] = None,
        metrics: "Optional[MetricsRegistry]" = None,
        bus: "Optional[EventBus]" = None,
        seed: int = 0,
    ) -> None:
        self._clock = clock
        self._config = config or TelemetryConfig()
        self._metrics = metrics
        self._bus = bus
        self._seed = seed
        self._profiles: Dict[str, QueryProfile] = {}
        self._inflight: Dict[int, PendingExecution] = {}
        self._next_token = 0
        self._attribution: List[Tuple[str, str]] = []

    # -- attribution ----------------------------------------------------------

    def push_attribution(self, tenant: str, workload_class: str) -> None:
        """Attribute statements started from here on to a gateway request."""
        self._attribution.append((tenant, workload_class))

    def pop_attribution(self) -> None:
        """End the innermost gateway attribution scope."""
        if self._attribution:
            self._attribution.pop()

    # -- execution lifecycle --------------------------------------------------

    def start(self, text: str, statement_kind: str) -> PendingExecution:
        """Open one in-flight execution record for a parsed statement."""
        normalized = normalize_sql(text)
        query_hash = hashlib.sha256(normalized.encode("utf-8")).hexdigest()[
            :HASH_LENGTH
        ]
        tenant, workload = (
            self._attribution[-1] if self._attribution else ("", "")
        )
        self._next_token += 1
        pending = PendingExecution(
            token=self._next_token,
            text=text,
            statement_kind=statement_kind,
            query_hash=query_hash,
            normalized_text=normalized,
            started_at=self._clock.now,
            bytes_read_before=self._bytes_read(),
            tenant=tenant,
            workload_class=workload,
        )
        self._inflight[pending.token] = pending
        return pending

    def finish(
        self,
        pending: PendingExecution,
        rows: int = 0,
        error: Optional[BaseException] = None,
    ) -> None:
        """Close one in-flight execution and fold it into its profile.

        Never called for a simulated crash — the dead process cannot
        report — so crashed executions stay in-flight until
        :meth:`scavenge` discards them.
        """
        if self._inflight.pop(pending.token, None) is None:
            return  # already scavenged; never double-count
        profile = self._profiles.get(pending.query_hash)
        if profile is None:
            profile = self._profiles[pending.query_hash] = QueryProfile(
                query_hash=pending.query_hash,
                statement_kind=pending.statement_kind,
                normalized_text=pending.normalized_text,
                first_seen=pending.started_at,
                config=self._config,
                seed=self._seed,
            )
        if error is not None:
            profile.fold_error(pending, self._clock.now)
            return
        latency = self._clock.now - pending.started_at
        bytes_read = int(self._bytes_read() - pending.bytes_read_before)
        regressed = profile.fold(pending, latency, rows, max(bytes_read, 0))
        if self._metrics is not None:
            self._metrics.counter(
                "querystore.recorded", kind=pending.statement_kind
            ).inc()
        if regressed:
            self._on_regression(profile)

    def scavenge(self) -> int:
        """Discard every in-flight execution; returns how many were dropped.

        Called by :class:`repro.chaos.RecoveryManager` after a crash: the
        dead process's statements never finished, so their half-measured
        profiles must not survive into the aggregates.
        """
        discarded = len(self._inflight)
        self._inflight.clear()
        return discarded

    @property
    def inflight_count(self) -> int:
        """How many executions are currently in flight."""
        return len(self._inflight)

    def _bytes_read(self) -> float:
        if self._metrics is None:
            return 0.0
        return self._metrics.value("storage.bytes_read")

    def _on_regression(self, profile: QueryProfile) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "querystore.plan_regressions", query_hash=profile.query_hash
            ).inc()
        if self._bus is not None:
            self._bus.publish(
                "querystore.regression",
                query_hash=profile.query_hash,
                recent_p95_s=profile.recent_p95_s(),
                baseline_p95_s=profile.baseline_p95_s,
            )

    # -- reading --------------------------------------------------------------

    def profiles(self) -> List[QueryProfile]:
        """Every profile, ordered by query hash."""
        return [self._profiles[h] for h in sorted(self._profiles)]

    def profile(self, query_hash: str) -> Optional[QueryProfile]:
        """One fingerprint's profile, if any execution has been recorded."""
        return self._profiles.get(query_hash)

    def query_stats_rows(self) -> List[Dict[str, Any]]:
        """``sys.dm_exec_query_stats`` rows, one per fingerprint."""
        rows = []
        limit = self._config.sql_text_limit
        for profile in self.profiles():
            summary = profile.latency.summary()
            tenants = sorted({t for t, _ in profile.attribution if t})
            classes = sorted({w for _, w in profile.attribution if w})
            rows.append(
                {
                    "query_hash": profile.query_hash,
                    "statement_kind": profile.statement_kind,
                    "query_text": profile.normalized_text[:limit],
                    "executions": profile.executions,
                    "errors": profile.errors,
                    "total_rows": profile.total_rows,
                    "total_bytes_read": profile.total_bytes_read,
                    "total_sim_s": summary["sum"],
                    "mean_sim_s": summary["mean"],
                    "p50_s": summary["p50"],
                    "p95_s": summary["p95"],
                    "p99_s": summary["p99"],
                    "recent_p95_s": profile.recent_p95_s(),
                    "baseline_p95_s": profile.baseline_p95_s,
                    "regressions": profile.regressions,
                    "plan_count": len(profile.plans),
                    "tenants": ",".join(tenants),
                    "workload_classes": ",".join(classes),
                    "first_seen": profile.first_seen,
                    "last_seen": profile.last_seen,
                }
            )
        return rows

    def query_plans_rows(self) -> List[Dict[str, Any]]:
        """``sys.dm_exec_query_plans`` rows, one per (fingerprint, plan)."""
        rows = []
        for profile in self.profiles():
            for plan_hash, entry in sorted(profile.plans.items()):
                rows.append(
                    {
                        "query_hash": profile.query_hash,
                        "plan_hash": plan_hash,
                        "executions": entry["executions"],
                        "first_seen": entry["first_seen"],
                        "last_seen": entry["last_seen"],
                        "plan_text": entry["plan_text"],
                    }
                )
        return rows

    def operator_stats_rows(self) -> List[Dict[str, Any]]:
        """``sys.dm_exec_operator_stats`` rows: cardinality feedback.

        ``est_rows``/``actual_rows`` are per-execution means;
        ``misestimate`` is the symmetric ratio between them — the record
        a cost-based optimizer consumes to correct its estimates.
        """
        rows = []
        for profile in self.profiles():
            for op_id, slot in sorted(profile.operators.items()):
                executions = max(slot["executions"], 1)
                est_mean = slot["est_rows_total"] / executions
                actual_mean = slot["actual_rows_total"] / executions
                rows.append(
                    {
                        "query_hash": profile.query_hash,
                        "operator_id": op_id,
                        "operator": slot["operator"],
                        "executions": slot["executions"],
                        "est_rows": est_mean,
                        "actual_rows": actual_mean,
                        "misestimate": misestimate_ratio(est_mean, actual_mean),
                        "sim_time_s": slot["sim_time_s"],
                        "files": slot["files"],
                        "files_pruned": slot["files_pruned"],
                        "row_groups": slot["row_groups"],
                        "row_groups_pruned": slot["row_groups_pruned"],
                    }
                )
        return rows

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic full-store view; byte-identical across same-seed runs
        once serialized with sorted keys."""
        return {
            "fingerprints": [p.snapshot() for p in self.profiles()],
            "inflight": len(self._inflight),
        }

    def export_jsonl(self, path: Optional[str] = None) -> str:
        """One JSON object per fingerprint (written to ``path`` if given)."""
        lines = [
            json.dumps(profile.snapshot(), sort_keys=True)
            for profile in self.profiles()
        ]
        payload = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload)
            return path
        return payload
